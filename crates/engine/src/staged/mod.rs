//! The staged execution engine (paper §4.1.2 and §4.3).
//!
//! Each relational operator runs as a *task* carried by a packet queued at
//! one of the execution-engine stages of Figure 3 — fscan, iscan, sort,
//! join, aggregate, send. Dataflow is page-based: bounded
//! [`ExchangeBuffer`]s of [`TupleBatch`]es connect producers to consumers.
//! Activation is bottom-up: leaf (scan) packets are enqueued when the query
//! arrives; an operator packet enters its stage's queue only when its first
//! input page is ready ("activation occurs in a bottom-up fashion with
//! respect to the operator tree"). A task that cannot make progress —
//! output buffer full or input empty — requeues itself at the back of its
//! stage queue, which is the cooperative yield of §4.3.
//!
//! Scans of the same table are shared across concurrent queries
//! ([`sharing`], paper §5.4): one circular scan drives every subscriber.

pub mod sharing;
mod tasks;

pub use tasks::compile;

use crate::batch::TupleBatch;
use crate::context::ExecContext;
use crate::error::{EngineError, EngineResult};
use crate::expr::{eval, eval_predicate};
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;
use sharing::SharedScanRegistry;
use staged_core::prelude::*;
use staged_planner::PhysicalPlan;
use staged_sql::ast::{BinOp, Expr};
use staged_storage::Tuple;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Live value of the exchange page size — self-tuning knob (c) of §4.4
/// ("the page size for exchanging intermediate results among the execution
/// engine stages"). One handle is shared by the engine and every task
/// emitter, so [`StagedEngine::set_page_size`] takes effect on the very
/// next page each producer seals, even mid-query.
#[derive(Clone, Debug)]
pub struct PageSize(Arc<AtomicUsize>);

impl PageSize {
    /// A handle starting at `n` tuples per page (clamped to ≥ 1).
    pub fn new(n: usize) -> Self {
        Self(Arc::new(AtomicUsize::new(n.max(1))))
    }

    /// Current tuples-per-page value.
    pub fn get(&self) -> usize {
        self.0.load(Ordering::Relaxed).max(1)
    }

    /// Change the page size (clamped to ≥ 1).
    pub fn set(&self, n: usize) {
        self.0.store(n.max(1), Ordering::Relaxed);
    }
}

/// The execution-engine stages of Figure 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StageKind {
    /// Sequential file scans (replicated per table in the paper; one queue
    /// with table-keyed shared-scan groups here).
    FScan,
    /// Index scans.
    IScan,
    /// Sorting.
    Sort,
    /// All three join algorithms.
    Join,
    /// Aggregation (and duplicate elimination).
    Aggr,
    /// Partition-parallel convergence: exchange unions and partial-
    /// aggregate merges (paper §6).
    Merge,
    /// Result delivery to the client.
    Send,
}

impl StageKind {
    /// All engine stages, in pipeline order.
    pub const ALL: [StageKind; 7] = [
        StageKind::FScan,
        StageKind::IScan,
        StageKind::Sort,
        StageKind::Join,
        StageKind::Aggr,
        StageKind::Merge,
        StageKind::Send,
    ];

    /// Stage name used in the runtime.
    pub fn name(&self) -> &'static str {
        match self {
            StageKind::FScan => "fscan",
            StageKind::IScan => "iscan",
            StageKind::Sort => "sort",
            StageKind::Join => "join",
            StageKind::Aggr => "aggr",
            StageKind::Merge => "merge",
            StageKind::Send => "send",
        }
    }
}

/// Outcome of one task quantum.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepResult {
    /// Made progress; more work remains.
    Working,
    /// Could not progress (input empty / output full); retry later.
    Blocked,
    /// Finished; destroy the packet.
    Done,
}

/// One operator's work, carried through stage queues inside a packet.
/// Mirrors the paper's packet: the task *is* the query's backpack for this
/// operator — its state and private data.
pub trait OperatorTask: Send {
    /// Perform up to `quota` tuples worth of work.
    fn step(&mut self, quota: usize) -> EngineResult<StepResult>;
}

/// Bounded single-producer/single-consumer page buffer between stages.
/// Capacity is counted in *pages* (a page's size is the live knob (c)
/// value), while [`ExchangeBuffer::queued_tuples`] keeps the backlog
/// observable in tuples so back-pressure accounting stays denominated in
/// rows regardless of the page size.
pub struct ExchangeBuffer {
    inner: Mutex<VecDeque<TupleBatch>>,
    capacity: usize,
    closed: AtomicBool,
    tuples: AtomicUsize,
}

impl ExchangeBuffer {
    /// A buffer holding at most `capacity` batches.
    pub fn new(capacity: usize) -> Arc<Self> {
        Arc::new(Self {
            inner: Mutex::new(VecDeque::new()),
            capacity: capacity.max(1),
            closed: AtomicBool::new(false),
            tuples: AtomicUsize::new(0),
        })
    }

    /// True when another batch fits.
    pub fn has_space(&self) -> bool {
        self.inner.lock().len() < self.capacity
    }

    /// Non-blocking push; hands the batch back when full.
    pub fn try_push(&self, batch: TupleBatch) -> Result<(), TupleBatch> {
        let mut q = self.inner.lock();
        if q.len() >= self.capacity {
            Err(batch)
        } else {
            self.tuples.fetch_add(batch.len(), Ordering::Relaxed);
            q.push_back(batch);
            Ok(())
        }
    }

    /// Non-blocking pop.
    pub fn try_pop(&self) -> Option<TupleBatch> {
        let popped = self.inner.lock().pop_front();
        if let Some(b) = &popped {
            self.tuples.fetch_sub(b.len(), Ordering::Relaxed);
        }
        popped
    }

    /// Tuples currently queued (across all buffered pages).
    pub fn queued_tuples(&self) -> usize {
        self.tuples.load(Ordering::Relaxed)
    }

    /// Producer signals end of stream.
    pub fn close(&self) {
        self.closed.store(true, Ordering::SeqCst);
    }

    /// No more batches will ever arrive.
    pub fn is_finished(&self) -> bool {
        self.closed.load(Ordering::SeqCst) && self.inner.lock().is_empty()
    }

    /// Producer has closed (batches may still be queued).
    pub fn is_closed(&self) -> bool {
        self.closed.load(Ordering::SeqCst)
    }
}

/// Per-query control block: result sink + cancellation.
pub struct QueryCtl {
    /// Query id (for diagnostics).
    pub query: QueryId,
    sink: Sender<EngineResult<Tuple>>,
    cancelled: AtomicBool,
    /// Live tasks, used to detect stuck queries in tests.
    pub live_tasks: AtomicU64,
}

impl QueryCtl {
    fn new(query: QueryId, sink: Sender<EngineResult<Tuple>>) -> Arc<Self> {
        Arc::new(Self {
            query,
            sink,
            cancelled: AtomicBool::new(false),
            live_tasks: AtomicU64::new(0),
        })
    }

    /// A control block not tied to any client (used by shared-scan drivers,
    /// which outlive individual queries). Emits are discarded.
    pub fn detached() -> Arc<Self> {
        let (tx, _rx) = unbounded();
        Self::new(QueryId(u64::MAX), tx)
    }

    /// Deliver one result tuple.
    pub fn emit(&self, t: Tuple) {
        let _ = self.sink.send(Ok(t));
    }

    /// Abort the query with an error (first error wins).
    pub fn fail(&self, e: EngineError) {
        if !self.cancelled.swap(true, Ordering::SeqCst) {
            let _ = self.sink.send(Err(e));
        }
    }

    /// True once the query is aborted.
    pub fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::SeqCst)
    }
}

/// A packet: one operator task plus its query control block.
pub struct TaskPacket {
    /// Control block.
    pub ctl: Arc<QueryCtl>,
    /// The operator state machine.
    pub task: Box<dyn OperatorTask>,
}

/// Parent-activation cell: the parent's packet parks here until a child
/// produces its first page (bottom-up activation).
pub struct Activator {
    pending: Mutex<Option<(StageId, TaskPacket)>>,
    runtime: StagedRuntime<TaskPacket>,
}

impl Activator {
    fn new(runtime: StagedRuntime<TaskPacket>) -> Arc<Self> {
        Arc::new(Self { pending: Mutex::new(None), runtime })
    }

    fn park(&self, stage: StageId, packet: TaskPacket) {
        *self.pending.lock() = Some((stage, packet));
    }

    /// Enqueue the parked packet, if any (idempotent).
    pub fn activate(&self) {
        if let Some((stage, packet)) = self.pending.lock().take() {
            if self.runtime.enqueue(stage, packet).is_err() {
                // Runtime shut down; the query sink will disconnect.
            }
        }
    }
}

/// A no-op activator for the root task (nothing above Send).
pub struct RootActivator;

/// Tuning of the staged engine.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Initial tuples per exchanged page (knob (c) of §4.4). The live
    /// value is a runtime knob — [`StagedEngine::set_page_size`] — that
    /// every in-flight emitter observes on its next page.
    pub batch_capacity: usize,
    /// Batches each exchange buffer may hold before back-pressure.
    pub buffer_depth: usize,
    /// Tuples processed per task quantum before yielding.
    pub step_quota: usize,
    /// Worker threads per stage.
    pub workers_per_stage: usize,
    /// Task packets an engine-stage worker may serve per queue visit
    /// (cohort scheduling, §4.2; knob (b) of §4.4 — tunable later via
    /// [`StagedRuntime::set_batch`] on [`StagedEngine::runtime`]). Gated
    /// service: a task requeued mid-visit (Working/Blocked yields) goes to
    /// the back of the queue and joins the *next* visit, so a cohort never
    /// spins on its own yields.
    pub cohort: usize,
    /// Enable shared table scans (§5.4).
    pub shared_scans: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            batch_capacity: 256,
            buffer_depth: 4,
            step_quota: 4096,
            workers_per_stage: 1,
            cohort: 8,
            shared_scans: true,
        }
    }
}

/// The staged execution engine: seven stages over a [`StagedRuntime`].
pub struct StagedEngine {
    runtime: StagedRuntime<TaskPacket>,
    stage_ids: Vec<(StageKind, StageId)>,
    /// Shared-scan groups, keyed by table.
    pub registry: Arc<SharedScanRegistry>,
    ctx: ExecContext,
    config: EngineConfig,
    page: PageSize,
    next_query: AtomicU64,
}

impl StagedEngine {
    /// Build the engine and spawn its stage workers.
    pub fn new(ctx: ExecContext, config: EngineConfig) -> Arc<Self> {
        let registry = Arc::new(SharedScanRegistry::new());
        let mut builder = StagedRuntime::<TaskPacket>::builder();
        let mut stage_ids = Vec::new();
        for kind in StageKind::ALL {
            let logic =
                EngineStageLogic { kind, blocked_streak: std::sync::atomic::AtomicUsize::new(0) };
            let id = builder.add_stage(
                StageSpec::new(kind.name(), logic)
                    .with_queue_capacity(4096)
                    .with_workers(config.workers_per_stage)
                    // Gated cohorts (not exhaustive): operator tasks yield
                    // by requeueing themselves to the back, and exhaustive
                    // refills would pull those yields straight back into
                    // the same visit — a busy-spin over blocked tasks.
                    .with_batch(BatchPolicy::DGated)
                    .with_max_cohort(config.cohort),
            );
            stage_ids.push((kind, id));
        }
        let runtime = builder.build();
        let page = PageSize::new(config.batch_capacity);
        Arc::new(Self {
            runtime,
            stage_ids,
            registry,
            ctx,
            config,
            page,
            next_query: AtomicU64::new(0),
        })
    }

    /// Stage id for a kind.
    pub fn stage_id(&self, kind: StageKind) -> StageId {
        self.stage_ids.iter().find(|(k, _)| *k == kind).expect("stage registered").1
    }

    /// The underlying runtime (monitoring, worker tuning).
    pub fn runtime(&self) -> &StagedRuntime<TaskPacket> {
        &self.runtime
    }

    /// The execution context.
    pub fn ctx(&self) -> &ExecContext {
        &self.ctx
    }

    /// The engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Change the exchange page size (knob (c)) at runtime, mirroring the
    /// cohort knob (b) on [`StagedRuntime::set_batch`]. Clamped to ≥ 1;
    /// in-flight queries pick the new size up on their next page.
    pub fn set_page_size(&self, tuples: usize) {
        self.page.set(tuples);
    }

    /// Current exchange page size in tuples.
    pub fn page_size(&self) -> usize {
        self.page.get()
    }

    /// The shared page-size handle (cloned into every emitter).
    pub fn page_handle(&self) -> PageSize {
        self.page.clone()
    }

    /// Package knob (c) for the [`staged_core::tune::AutoTuner`]: a
    /// getter/setter pair over this engine's live page size.
    pub fn page_knob(&self) -> staged_core::tune::PageKnob {
        let get = self.page.clone();
        let set = self.page.clone();
        staged_core::tune::PageKnob {
            get: Arc::new(move || get.get()),
            set: Arc::new(move |n| set.set(n)),
        }
    }

    /// Submit a plan; returns a handle delivering result tuples.
    pub fn execute(self: &Arc<Self>, plan: &PhysicalPlan) -> StagedResult {
        let (tx, rx) = unbounded();
        let query = QueryId(self.next_query.fetch_add(1, Ordering::Relaxed));
        let ctl = QueryCtl::new(query, tx);
        tasks::compile_and_launch(self, plan, ctl);
        StagedResult { rx }
    }

    /// Shut the stage workers down (drains queues first).
    pub fn shutdown(&self) {
        self.runtime.shutdown();
    }

    pub(crate) fn make_activator(&self) -> Arc<Activator> {
        Activator::new(self.runtime.clone())
    }

    pub(crate) fn enqueue(&self, kind: StageKind, packet: TaskPacket) {
        let _ = self.runtime.enqueue(self.stage_id(kind), packet);
    }
}

/// One stage's logic: run a quantum of the dequeued task.
struct EngineStageLogic {
    kind: StageKind,
    /// Consecutive Blocked results across the whole stage; once a full lap
    /// of the queue makes no progress, the worker backs off instead of
    /// spinning through blocked packets at full speed.
    blocked_streak: std::sync::atomic::AtomicUsize,
}

impl StageLogic<TaskPacket> for EngineStageLogic {
    fn process(
        &self,
        mut packet: TaskPacket,
        ctx: &StageCtx<'_, TaskPacket>,
    ) -> Result<(), StageError> {
        if packet.ctl.is_cancelled() {
            return Ok(()); // drop the packet; query aborted
        }
        // Quota is passed through the task; the stage itself is agnostic.
        match packet.task.step(DEFAULT_QUOTA) {
            Ok(StepResult::Done) => {
                self.blocked_streak.store(0, Ordering::Relaxed);
                Ok(())
            }
            Ok(StepResult::Working) => {
                self.blocked_streak.store(0, Ordering::Relaxed);
                ctx.requeue_back(packet).map_err(|_| StageError::new("requeue failed"))?;
                Ok(())
            }
            Ok(StepResult::Blocked) => {
                let streak = self.blocked_streak.fetch_add(1, Ordering::Relaxed) + 1;
                if streak > ctx.queue_depth(ctx.stage_id).max(1) {
                    // A whole lap produced nothing: wait for upstream.
                    std::thread::sleep(Duration::from_micros(100));
                }
                ctx.requeue_back(packet).map_err(|_| StageError::new("requeue failed"))?;
                Ok(())
            }
            Err(e) => {
                packet.ctl.fail(e.clone());
                Err(StageError::new(format!("{} task failed: {e}", self.kind.name())))
            }
        }
    }
}

const DEFAULT_QUOTA: usize = 4096;

/// Handle to a staged query's results.
pub struct StagedResult {
    rx: Receiver<EngineResult<Tuple>>,
}

impl StagedResult {
    /// Block until the query finishes, collecting all tuples.
    pub fn collect(self) -> EngineResult<Vec<Tuple>> {
        let mut out = Vec::new();
        for item in self.rx.iter() {
            out.push(item?);
        }
        Ok(out)
    }

    /// The raw receiver (for streaming consumption).
    pub fn receiver(&self) -> &Receiver<EngineResult<Tuple>> {
        &self.rx
    }
}

/// Per-tuple transforms fused into a producing task (filters, projections
/// and limits do not get their own stage: "we group together operators
/// which use a small portion of the common or shared data and code").
///
/// Transforms are *compiled* when the task is built: expression shapes the
/// batch inner loops hit constantly — constant integer comparisons, plain
/// column projections — are analyzed once per plan and run as direct
/// index/compare code per tuple, falling back to the general expression
/// interpreter (which the Volcano baseline pays on every `next()`) only
/// for shapes the fast paths do not cover.
pub enum Transform {
    /// Drop tuples failing the predicate.
    Filter(Pred),
    /// Re-map through expressions.
    Project(Proj),
    /// Emit at most the shared remaining count (cross-task counter).
    Limit(Arc<AtomicI64>),
}

impl Transform {
    /// Compile a filter predicate.
    pub fn filter(expr: Expr) -> Self {
        Transform::Filter(Pred::compile(expr))
    }

    /// Compile a projection list.
    pub fn project(exprs: Vec<Expr>) -> Self {
        Transform::Project(Proj::compile(exprs))
    }

    /// A projection that gathers raw column indexes — used by the scan
    /// narrowing in the task compiler, where no source expressions exist.
    pub fn project_cols(cols: Vec<usize>) -> Self {
        Transform::Project(Proj { exprs: Vec::new(), cols: Some(cols) })
    }
}

/// A compiled predicate: the generic expression plus an optional fast
/// path. Constant integer comparisons on one column — `c = k`, `c < k`,
/// `c BETWEEN a AND b`, in either orientation — compile to one inclusive
/// interval test `lo <= c <= hi` with no interpreter dispatch and no
/// `Value` clones.
pub struct Pred {
    expr: Expr,
    fast: Option<IntRange>,
}

#[derive(Clone, Copy)]
struct IntRange {
    idx: usize,
    lo: i64,
    hi: i64,
}

/// `(column index, constant)` when `e` is `Column <op> IntLiteral` in the
/// given orientation.
fn col_int(a: &Expr, b: &Expr) -> Option<(usize, i64)> {
    match (a, b) {
        (Expr::Column(c), Expr::Literal(staged_storage::Value::Int(k))) => Some((c.index?, *k)),
        _ => None,
    }
}

impl Pred {
    /// Analyze `expr` once; tuples then take the cheapest path it admits.
    pub fn compile(expr: Expr) -> Self {
        let range =
            |idx: usize, lo: Option<i64>, hi: Option<i64>| Some(IntRange { idx, lo: lo?, hi: hi? });
        // `k <op> column` mirrors to `column <flip(op)> k`.
        let flip = |op: BinOp| match op {
            BinOp::Lt => BinOp::Gt,
            BinOp::LtEq => BinOp::GtEq,
            BinOp::Gt => BinOp::Lt,
            BinOp::GtEq => BinOp::LtEq,
            other => other,
        };
        let fast = match &expr {
            Expr::Binary { left, op, right } => {
                // Normalize to `column <op> constant`.
                let norm = col_int(left, right)
                    .map(|(idx, k)| (idx, k, *op))
                    .or_else(|| col_int(right, left).map(|(idx, k)| (idx, k, flip(*op))));
                norm.and_then(|(idx, k, op)| match op {
                    BinOp::Eq => range(idx, Some(k), Some(k)),
                    BinOp::Lt => range(idx, Some(i64::MIN), k.checked_sub(1)),
                    BinOp::LtEq => range(idx, Some(i64::MIN), Some(k)),
                    BinOp::Gt => range(idx, k.checked_add(1), Some(i64::MAX)),
                    BinOp::GtEq => range(idx, Some(k), Some(i64::MAX)),
                    _ => None,
                })
            }
            Expr::Between { expr: e, lo, hi, negated: false } => match (&**e, &**lo, &**hi) {
                (
                    Expr::Column(c),
                    Expr::Literal(staged_storage::Value::Int(a)),
                    Expr::Literal(staged_storage::Value::Int(b)),
                ) => c.index.and_then(|idx| range(idx, Some(*a), Some(*b))),
                _ => None,
            },
            _ => None,
        };
        Self { expr, fast }
    }

    /// SQL WHERE semantics: NULL is false.
    #[inline]
    pub fn test(&self, t: &Tuple) -> EngineResult<bool> {
        if let Some(r) = self.fast {
            match t.values().get(r.idx) {
                Some(staged_storage::Value::Int(v)) => return Ok(r.lo <= *v && *v <= r.hi),
                Some(staged_storage::Value::Null) => return Ok(false),
                // Non-integer value (numeric coercion): interpreter path.
                _ => {}
            }
        }
        eval_predicate(&self.expr, t)
    }

    /// The single column the fast path reads, when one exists. A `Some`
    /// here guarantees the whole predicate (fast path *and* interpreter
    /// fallback) touches no other column, which is what makes it safe to
    /// prune the rest of the row underneath it.
    pub(crate) fn fast_col(&self) -> Option<usize> {
        self.fast.map(|r| r.idx)
    }

    /// Rewrite column indexes through `pos` (old slot → pruned slot). Only
    /// meaningful when [`fast_col`](Self::fast_col) is `Some`: the
    /// expression then has the comparison/BETWEEN shape the walker below
    /// covers, so the interpreter fallback stays consistent with the
    /// remapped fast path.
    pub(crate) fn remap_columns(&mut self, pos: &dyn Fn(usize) -> usize) {
        debug_assert!(self.fast.is_some(), "remap is only valid on fast predicates");
        if let Some(r) = &mut self.fast {
            r.idx = pos(r.idx);
        }
        fn walk(e: &mut Expr, pos: &dyn Fn(usize) -> usize) {
            match e {
                Expr::Column(c) => {
                    if let Some(i) = c.index {
                        c.index = Some(pos(i));
                    }
                }
                Expr::Binary { left, right, .. } => {
                    walk(left, pos);
                    walk(right, pos);
                }
                Expr::Between { expr, lo, hi, .. } => {
                    walk(expr, pos);
                    walk(lo, pos);
                    walk(hi, pos);
                }
                _ => {}
            }
        }
        walk(&mut self.expr, pos);
    }
}

/// A compiled projection: when every output expression is a plain bound
/// column reference, tuples are re-mapped by direct index gather instead
/// of per-expression interpretation.
pub struct Proj {
    exprs: Vec<Expr>,
    cols: Option<Vec<usize>>,
}

impl Proj {
    /// Analyze the projection list once.
    pub fn compile(exprs: Vec<Expr>) -> Self {
        let cols = exprs
            .iter()
            .map(|e| match e {
                Expr::Column(c) => c.index,
                _ => None,
            })
            .collect::<Option<Vec<usize>>>();
        Self { exprs, cols }
    }

    /// Re-map one tuple.
    #[inline]
    pub fn apply(&self, t: Tuple) -> EngineResult<Tuple> {
        if let Some(cols) = &self.cols {
            let vals = t.values();
            let out = cols
                .iter()
                .map(|&i| {
                    vals.get(i)
                        .cloned()
                        .ok_or_else(|| EngineError::Internal(format!("column {i} out of arity")))
                })
                .collect::<EngineResult<Vec<_>>>()?;
            return Ok(Tuple::new(out));
        }
        let vals = self.exprs.iter().map(|e| eval(e, &t)).collect::<EngineResult<Vec<_>>>()?;
        Ok(Tuple::new(vals))
    }

    /// The gathered column indexes when every output is a plain column.
    pub(crate) fn plain_cols(&self) -> Option<&[usize]> {
        self.cols.as_deref()
    }

    /// Rewrite column indexes through `pos` (old slot → pruned slot). Only
    /// meaningful when [`plain_cols`](Self::plain_cols) is `Some`, so every
    /// expression is a bound column reference.
    pub(crate) fn remap_columns(&mut self, pos: &dyn Fn(usize) -> usize) {
        debug_assert!(self.cols.is_some(), "remap is only valid on plain-column projections");
        if let Some(cols) = &mut self.cols {
            for c in cols.iter_mut() {
                *c = pos(*c);
            }
        }
        for e in &mut self.exprs {
            if let Expr::Column(c) = e {
                if let Some(i) = c.index {
                    c.index = Some(pos(i));
                }
            }
        }
    }
}

/// Column pruning for scan-side transform chains. When the chain starts
/// with fast-path filters (each provably touching one column) and reaches
/// a plain-column projection, the scan only needs to decode the union of
/// the columns that prefix touches — everything else is skipped at the
/// page, unread string columns costing a few branches instead of an
/// allocation (`Tuple::decode_columns`). The prefix is rewritten in place
/// to address the pruned layout; the suffix after the projection sees the
/// projection's output, whose layout is unchanged, so it needs no rewrite.
///
/// Returns the sorted column set the scan must decode, or `None` (chain
/// untouched) when the shape does not admit pruning or when the prefix
/// already needs every one of the table's `arity` columns.
pub(crate) fn prune_scan_columns(ts: &mut Vec<Transform>, arity: usize) -> Option<Vec<usize>> {
    // The prefix may hold fast filters and limits (which read no columns);
    // the first plain-column projection closes it.
    let mut proj_at = None;
    for (i, t) in ts.iter().enumerate() {
        match t {
            Transform::Filter(p) if p.fast_col().is_some() => {}
            Transform::Limit(_) => {}
            Transform::Project(p) if p.plain_cols().is_some() => {
                proj_at = Some(i);
                break;
            }
            _ => return None,
        }
    }
    let proj_at = proj_at?;
    let mut needed: Vec<usize> = ts[..proj_at]
        .iter()
        .filter_map(|t| match t {
            Transform::Filter(p) => p.fast_col(),
            _ => None,
        })
        .collect();
    if let Transform::Project(p) = &ts[proj_at] {
        needed.extend(p.plain_cols().expect("checked above"));
    }
    needed.sort_unstable();
    needed.dedup();
    if needed.len() >= arity {
        return None;
    }
    let pos = |c: usize| needed.binary_search(&c).expect("prefix columns are all in `needed`");
    for t in &mut ts[..proj_at] {
        if let Transform::Filter(p) = t {
            p.remap_columns(&pos);
        }
    }
    let identity = match &mut ts[proj_at] {
        Transform::Project(p) => {
            p.remap_columns(&pos);
            p.plain_cols().expect("still plain").iter().copied().eq(0..needed.len())
        }
        _ => unreachable!("proj_at indexes a projection"),
    };
    if identity {
        // The projection now re-emits the pruned tuple unchanged: drop it.
        ts.remove(proj_at);
    }
    Some(needed)
}

/// Apply a transform chain; `None` means the tuple was filtered out.
pub fn apply_transforms(ts: &[Transform], mut t: Tuple) -> EngineResult<Option<Tuple>> {
    for tr in ts {
        match tr {
            Transform::Filter(p) => {
                if !p.test(&t)? {
                    return Ok(None);
                }
            }
            Transform::Project(proj) => {
                t = proj.apply(t)?;
            }
            Transform::Limit(left) => {
                if left.fetch_sub(1, Ordering::SeqCst) <= 0 {
                    return Ok(None);
                }
            }
        }
    }
    Ok(Some(t))
}

#[cfg(test)]
mod tests {
    use super::*;
    use staged_storage::Value;

    #[test]
    fn exchange_buffer_backpressure_and_close() {
        let b = ExchangeBuffer::new(2);
        assert!(b.try_push(TupleBatch::default()).is_ok());
        assert!(b.try_push(TupleBatch::default()).is_ok());
        assert!(b.try_push(TupleBatch::default()).is_err(), "full at depth 2");
        assert!(!b.is_finished());
        b.close();
        assert!(!b.is_finished(), "still has queued batches");
        b.try_pop().unwrap();
        b.try_pop().unwrap();
        assert!(b.is_finished());
        assert!(b.try_pop().is_none());
    }

    #[test]
    fn exchange_buffer_counts_queued_tuples() {
        let mk = |n: usize| {
            TupleBatch::from_tuples(
                (0..n).map(|i| Tuple::new(vec![Value::Int(i as i64)])).collect(),
            )
        };
        let b = ExchangeBuffer::new(3);
        assert_eq!(b.queued_tuples(), 0);
        b.try_push(mk(5)).unwrap();
        b.try_push(mk(2)).unwrap();
        assert_eq!(b.queued_tuples(), 7, "backlog is denominated in tuples, not pages");
        b.try_pop().unwrap();
        assert_eq!(b.queued_tuples(), 2);
        b.try_pop().unwrap();
        assert_eq!(b.queued_tuples(), 0);
    }

    #[test]
    fn page_size_handle_is_shared_and_clamped() {
        let p = PageSize::new(0);
        assert_eq!(p.get(), 1, "page size clamps to >= 1");
        let p2 = p.clone();
        p.set(512);
        assert_eq!(p2.get(), 512, "clones observe live updates");
        p2.set(0);
        assert_eq!(p.get(), 1);
    }

    #[test]
    fn transforms_compose_in_order() {
        use staged_sql::ast::ColumnRef;
        let col0 = Expr::Column(ColumnRef { table: None, name: "#0".into(), index: Some(0) });
        let ts = vec![
            Transform::filter(Expr::binary(col0.clone(), BinOp::Gt, Expr::int(1))),
            Transform::project(vec![Expr::binary(col0.clone(), BinOp::Mul, Expr::int(10))]),
        ];
        let keep = apply_transforms(&ts, Tuple::new(vec![Value::Int(5)])).unwrap();
        assert_eq!(keep.unwrap().values(), &[Value::Int(50)]);
        let drop = apply_transforms(&ts, Tuple::new(vec![Value::Int(0)])).unwrap();
        assert!(drop.is_none());
    }

    #[test]
    fn compiled_predicates_agree_with_the_interpreter() {
        use staged_sql::ast::ColumnRef;
        let col =
            |i: usize| Expr::Column(ColumnRef { table: None, name: "#0".into(), index: Some(i) });
        let t = |v: Value| Tuple::new(vec![v]);
        let cases: Vec<(Expr, &[(Value, bool)])> = vec![
            (
                Expr::binary(col(0), BinOp::Eq, Expr::int(5)),
                &[(Value::Int(5), true), (Value::Int(4), false), (Value::Null, false)],
            ),
            (
                // Mirrored orientation: `10 > c` is `c < 10`.
                Expr::binary(Expr::int(10), BinOp::Gt, col(0)),
                &[(Value::Int(9), true), (Value::Int(10), false)],
            ),
            (
                Expr::Between {
                    expr: Box::new(col(0)),
                    lo: Box::new(Expr::int(2)),
                    hi: Box::new(Expr::int(4)),
                    negated: false,
                },
                &[(Value::Int(2), true), (Value::Int(4), true), (Value::Int(5), false)],
            ),
        ];
        for (expr, table) in cases {
            let pred = Pred::compile(expr.clone());
            assert!(pred.fast.is_some(), "{expr:?} should compile to an interval");
            for (v, want) in table {
                assert_eq!(pred.test(&t(v.clone())).unwrap(), *want, "{expr:?} on {v:?}");
                // The fast path must agree with the interpreter exactly.
                assert_eq!(
                    pred.test(&t(v.clone())).unwrap(),
                    eval_predicate(&expr, &t(v.clone())).unwrap()
                );
            }
        }
        // Float value through an Int-compiled interval: interpreter path.
        let pred = Pred::compile(Expr::binary(col(0), BinOp::Eq, Expr::int(5)));
        assert!(pred.test(&t(Value::Float(5.0))).unwrap(), "numeric coercion preserved");
    }

    #[test]
    fn compiled_projection_gathers_columns() {
        use staged_sql::ast::ColumnRef;
        let col =
            |i: usize| Expr::Column(ColumnRef { table: None, name: "#0".into(), index: Some(i) });
        let proj = Proj::compile(vec![col(2), col(0)]);
        assert!(proj.cols.is_some(), "plain column list compiles to a gather");
        let out =
            proj.apply(Tuple::new(vec![Value::Int(1), Value::Int(2), Value::Int(3)])).unwrap();
        assert_eq!(out.values(), &[Value::Int(3), Value::Int(1)]);
        let mixed = Proj::compile(vec![Expr::binary(col(0), BinOp::Mul, Expr::int(2))]);
        assert!(mixed.cols.is_none(), "computed expressions stay on the interpreter");
        let out = mixed.apply(Tuple::new(vec![Value::Int(4)])).unwrap();
        assert_eq!(out.values(), &[Value::Int(8)]);
    }

    #[test]
    fn limit_transform_is_shared_across_producers() {
        let left = Arc::new(AtomicI64::new(2));
        let ts = vec![Transform::Limit(Arc::clone(&left))];
        let t = Tuple::new(vec![Value::Int(1)]);
        assert!(apply_transforms(&ts, t.clone()).unwrap().is_some());
        assert!(apply_transforms(&ts, t.clone()).unwrap().is_some());
        assert!(apply_transforms(&ts, t).unwrap().is_none(), "limit exhausted");
    }
}
