//! The staged execution engine (paper §4.1.2 and §4.3).
//!
//! Each relational operator runs as a *task* carried by a packet queued at
//! one of the execution-engine stages of Figure 3 — fscan, iscan, sort,
//! join, aggregate, send. Dataflow is page-based: bounded
//! [`ExchangeBuffer`]s of [`TupleBatch`]es connect producers to consumers.
//! Activation is bottom-up: leaf (scan) packets are enqueued when the query
//! arrives; an operator packet enters its stage's queue only when its first
//! input page is ready ("activation occurs in a bottom-up fashion with
//! respect to the operator tree"). A task that cannot make progress —
//! output buffer full or input empty — requeues itself at the back of its
//! stage queue, which is the cooperative yield of §4.3.
//!
//! Scans of the same table are shared across concurrent queries
//! ([`sharing`], paper §5.4): one circular scan drives every subscriber.

pub mod sharing;
mod tasks;

pub use tasks::compile;

use crate::batch::TupleBatch;
use crate::context::ExecContext;
use crate::error::{EngineError, EngineResult};
use crate::expr::{eval, eval_predicate};
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;
use sharing::SharedScanRegistry;
use staged_core::prelude::*;
use staged_planner::PhysicalPlan;
use staged_sql::ast::Expr;
use staged_storage::Tuple;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// The execution-engine stages of Figure 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StageKind {
    /// Sequential file scans (replicated per table in the paper; one queue
    /// with table-keyed shared-scan groups here).
    FScan,
    /// Index scans.
    IScan,
    /// Sorting.
    Sort,
    /// All three join algorithms.
    Join,
    /// Aggregation (and duplicate elimination).
    Aggr,
    /// Partition-parallel convergence: exchange unions and partial-
    /// aggregate merges (paper §6).
    Merge,
    /// Result delivery to the client.
    Send,
}

impl StageKind {
    /// All engine stages, in pipeline order.
    pub const ALL: [StageKind; 7] = [
        StageKind::FScan,
        StageKind::IScan,
        StageKind::Sort,
        StageKind::Join,
        StageKind::Aggr,
        StageKind::Merge,
        StageKind::Send,
    ];

    /// Stage name used in the runtime.
    pub fn name(&self) -> &'static str {
        match self {
            StageKind::FScan => "fscan",
            StageKind::IScan => "iscan",
            StageKind::Sort => "sort",
            StageKind::Join => "join",
            StageKind::Aggr => "aggr",
            StageKind::Merge => "merge",
            StageKind::Send => "send",
        }
    }
}

/// Outcome of one task quantum.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepResult {
    /// Made progress; more work remains.
    Working,
    /// Could not progress (input empty / output full); retry later.
    Blocked,
    /// Finished; destroy the packet.
    Done,
}

/// One operator's work, carried through stage queues inside a packet.
/// Mirrors the paper's packet: the task *is* the query's backpack for this
/// operator — its state and private data.
pub trait OperatorTask: Send {
    /// Perform up to `quota` tuples worth of work.
    fn step(&mut self, quota: usize) -> EngineResult<StepResult>;
}

/// Bounded single-producer/single-consumer page buffer between stages.
pub struct ExchangeBuffer {
    inner: Mutex<VecDeque<TupleBatch>>,
    capacity: usize,
    closed: AtomicBool,
}

impl ExchangeBuffer {
    /// A buffer holding at most `capacity` batches.
    pub fn new(capacity: usize) -> Arc<Self> {
        Arc::new(Self {
            inner: Mutex::new(VecDeque::new()),
            capacity: capacity.max(1),
            closed: AtomicBool::new(false),
        })
    }

    /// True when another batch fits.
    pub fn has_space(&self) -> bool {
        self.inner.lock().len() < self.capacity
    }

    /// Non-blocking push; hands the batch back when full.
    pub fn try_push(&self, batch: TupleBatch) -> Result<(), TupleBatch> {
        let mut q = self.inner.lock();
        if q.len() >= self.capacity {
            Err(batch)
        } else {
            q.push_back(batch);
            Ok(())
        }
    }

    /// Non-blocking pop.
    pub fn try_pop(&self) -> Option<TupleBatch> {
        self.inner.lock().pop_front()
    }

    /// Producer signals end of stream.
    pub fn close(&self) {
        self.closed.store(true, Ordering::SeqCst);
    }

    /// No more batches will ever arrive.
    pub fn is_finished(&self) -> bool {
        self.closed.load(Ordering::SeqCst) && self.inner.lock().is_empty()
    }

    /// Producer has closed (batches may still be queued).
    pub fn is_closed(&self) -> bool {
        self.closed.load(Ordering::SeqCst)
    }
}

/// Per-query control block: result sink + cancellation.
pub struct QueryCtl {
    /// Query id (for diagnostics).
    pub query: QueryId,
    sink: Sender<EngineResult<Tuple>>,
    cancelled: AtomicBool,
    /// Live tasks, used to detect stuck queries in tests.
    pub live_tasks: AtomicU64,
}

impl QueryCtl {
    fn new(query: QueryId, sink: Sender<EngineResult<Tuple>>) -> Arc<Self> {
        Arc::new(Self {
            query,
            sink,
            cancelled: AtomicBool::new(false),
            live_tasks: AtomicU64::new(0),
        })
    }

    /// A control block not tied to any client (used by shared-scan drivers,
    /// which outlive individual queries). Emits are discarded.
    pub fn detached() -> Arc<Self> {
        let (tx, _rx) = unbounded();
        Self::new(QueryId(u64::MAX), tx)
    }

    /// Deliver one result tuple.
    pub fn emit(&self, t: Tuple) {
        let _ = self.sink.send(Ok(t));
    }

    /// Abort the query with an error (first error wins).
    pub fn fail(&self, e: EngineError) {
        if !self.cancelled.swap(true, Ordering::SeqCst) {
            let _ = self.sink.send(Err(e));
        }
    }

    /// True once the query is aborted.
    pub fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::SeqCst)
    }
}

/// A packet: one operator task plus its query control block.
pub struct TaskPacket {
    /// Control block.
    pub ctl: Arc<QueryCtl>,
    /// The operator state machine.
    pub task: Box<dyn OperatorTask>,
}

/// Parent-activation cell: the parent's packet parks here until a child
/// produces its first page (bottom-up activation).
pub struct Activator {
    pending: Mutex<Option<(StageId, TaskPacket)>>,
    runtime: StagedRuntime<TaskPacket>,
}

impl Activator {
    fn new(runtime: StagedRuntime<TaskPacket>) -> Arc<Self> {
        Arc::new(Self { pending: Mutex::new(None), runtime })
    }

    fn park(&self, stage: StageId, packet: TaskPacket) {
        *self.pending.lock() = Some((stage, packet));
    }

    /// Enqueue the parked packet, if any (idempotent).
    pub fn activate(&self) {
        if let Some((stage, packet)) = self.pending.lock().take() {
            if self.runtime.enqueue(stage, packet).is_err() {
                // Runtime shut down; the query sink will disconnect.
            }
        }
    }
}

/// A no-op activator for the root task (nothing above Send).
pub struct RootActivator;

/// Tuning of the staged engine.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Tuples per exchanged page (knob c of §4.4).
    pub batch_capacity: usize,
    /// Batches each exchange buffer may hold before back-pressure.
    pub buffer_depth: usize,
    /// Tuples processed per task quantum before yielding.
    pub step_quota: usize,
    /// Worker threads per stage.
    pub workers_per_stage: usize,
    /// Task packets an engine-stage worker may serve per queue visit
    /// (cohort scheduling, §4.2; knob (b) of §4.4 — tunable later via
    /// [`StagedRuntime::set_batch`] on [`StagedEngine::runtime`]). Gated
    /// service: a task requeued mid-visit (Working/Blocked yields) goes to
    /// the back of the queue and joins the *next* visit, so a cohort never
    /// spins on its own yields.
    pub cohort: usize,
    /// Enable shared table scans (§5.4).
    pub shared_scans: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            batch_capacity: 256,
            buffer_depth: 4,
            step_quota: 4096,
            workers_per_stage: 1,
            cohort: 8,
            shared_scans: true,
        }
    }
}

/// The staged execution engine: seven stages over a [`StagedRuntime`].
pub struct StagedEngine {
    runtime: StagedRuntime<TaskPacket>,
    stage_ids: Vec<(StageKind, StageId)>,
    /// Shared-scan groups, keyed by table.
    pub registry: Arc<SharedScanRegistry>,
    ctx: ExecContext,
    config: EngineConfig,
    next_query: AtomicU64,
}

impl StagedEngine {
    /// Build the engine and spawn its stage workers.
    pub fn new(ctx: ExecContext, config: EngineConfig) -> Arc<Self> {
        let registry = Arc::new(SharedScanRegistry::new());
        let mut builder = StagedRuntime::<TaskPacket>::builder();
        let mut stage_ids = Vec::new();
        for kind in StageKind::ALL {
            let logic =
                EngineStageLogic { kind, blocked_streak: std::sync::atomic::AtomicUsize::new(0) };
            let id = builder.add_stage(
                StageSpec::new(kind.name(), logic)
                    .with_queue_capacity(4096)
                    .with_workers(config.workers_per_stage)
                    // Gated cohorts (not exhaustive): operator tasks yield
                    // by requeueing themselves to the back, and exhaustive
                    // refills would pull those yields straight back into
                    // the same visit — a busy-spin over blocked tasks.
                    .with_batch(BatchPolicy::DGated)
                    .with_max_cohort(config.cohort),
            );
            stage_ids.push((kind, id));
        }
        let runtime = builder.build();
        Arc::new(Self { runtime, stage_ids, registry, ctx, config, next_query: AtomicU64::new(0) })
    }

    /// Stage id for a kind.
    pub fn stage_id(&self, kind: StageKind) -> StageId {
        self.stage_ids.iter().find(|(k, _)| *k == kind).expect("stage registered").1
    }

    /// The underlying runtime (monitoring, worker tuning).
    pub fn runtime(&self) -> &StagedRuntime<TaskPacket> {
        &self.runtime
    }

    /// The execution context.
    pub fn ctx(&self) -> &ExecContext {
        &self.ctx
    }

    /// The engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Submit a plan; returns a handle delivering result tuples.
    pub fn execute(self: &Arc<Self>, plan: &PhysicalPlan) -> StagedResult {
        let (tx, rx) = unbounded();
        let query = QueryId(self.next_query.fetch_add(1, Ordering::Relaxed));
        let ctl = QueryCtl::new(query, tx);
        tasks::compile_and_launch(self, plan, ctl);
        StagedResult { rx }
    }

    /// Shut the stage workers down (drains queues first).
    pub fn shutdown(&self) {
        self.runtime.shutdown();
    }

    pub(crate) fn make_activator(&self) -> Arc<Activator> {
        Activator::new(self.runtime.clone())
    }

    pub(crate) fn enqueue(&self, kind: StageKind, packet: TaskPacket) {
        let _ = self.runtime.enqueue(self.stage_id(kind), packet);
    }
}

/// One stage's logic: run a quantum of the dequeued task.
struct EngineStageLogic {
    kind: StageKind,
    /// Consecutive Blocked results across the whole stage; once a full lap
    /// of the queue makes no progress, the worker backs off instead of
    /// spinning through blocked packets at full speed.
    blocked_streak: std::sync::atomic::AtomicUsize,
}

impl StageLogic<TaskPacket> for EngineStageLogic {
    fn process(
        &self,
        mut packet: TaskPacket,
        ctx: &StageCtx<'_, TaskPacket>,
    ) -> Result<(), StageError> {
        if packet.ctl.is_cancelled() {
            return Ok(()); // drop the packet; query aborted
        }
        // Quota is passed through the task; the stage itself is agnostic.
        match packet.task.step(DEFAULT_QUOTA) {
            Ok(StepResult::Done) => {
                self.blocked_streak.store(0, Ordering::Relaxed);
                Ok(())
            }
            Ok(StepResult::Working) => {
                self.blocked_streak.store(0, Ordering::Relaxed);
                ctx.requeue_back(packet).map_err(|_| StageError::new("requeue failed"))?;
                Ok(())
            }
            Ok(StepResult::Blocked) => {
                let streak = self.blocked_streak.fetch_add(1, Ordering::Relaxed) + 1;
                if streak > ctx.queue_depth(ctx.stage_id).max(1) {
                    // A whole lap produced nothing: wait for upstream.
                    std::thread::sleep(Duration::from_micros(100));
                }
                ctx.requeue_back(packet).map_err(|_| StageError::new("requeue failed"))?;
                Ok(())
            }
            Err(e) => {
                packet.ctl.fail(e.clone());
                Err(StageError::new(format!("{} task failed: {e}", self.kind.name())))
            }
        }
    }
}

const DEFAULT_QUOTA: usize = 4096;

/// Handle to a staged query's results.
pub struct StagedResult {
    rx: Receiver<EngineResult<Tuple>>,
}

impl StagedResult {
    /// Block until the query finishes, collecting all tuples.
    pub fn collect(self) -> EngineResult<Vec<Tuple>> {
        let mut out = Vec::new();
        for item in self.rx.iter() {
            out.push(item?);
        }
        Ok(out)
    }

    /// The raw receiver (for streaming consumption).
    pub fn receiver(&self) -> &Receiver<EngineResult<Tuple>> {
        &self.rx
    }
}

/// Per-tuple transforms fused into a producing task (filters, projections
/// and limits do not get their own stage: "we group together operators
/// which use a small portion of the common or shared data and code").
pub enum Transform {
    /// Drop tuples failing the predicate.
    Filter(Expr),
    /// Re-map through expressions.
    Project(Vec<Expr>),
    /// Emit at most the shared remaining count (cross-task counter).
    Limit(Arc<AtomicI64>),
}

/// Apply a transform chain; `None` means the tuple was filtered out.
pub fn apply_transforms(ts: &[Transform], mut t: Tuple) -> EngineResult<Option<Tuple>> {
    for tr in ts {
        match tr {
            Transform::Filter(p) => {
                if !eval_predicate(p, &t)? {
                    return Ok(None);
                }
            }
            Transform::Project(exprs) => {
                let vals = exprs.iter().map(|e| eval(e, &t)).collect::<EngineResult<Vec<_>>>()?;
                t = Tuple::new(vals);
            }
            Transform::Limit(left) => {
                if left.fetch_sub(1, Ordering::SeqCst) <= 0 {
                    return Ok(None);
                }
            }
        }
    }
    Ok(Some(t))
}

#[cfg(test)]
mod tests {
    use super::*;
    use staged_storage::Value;

    #[test]
    fn exchange_buffer_backpressure_and_close() {
        let b = ExchangeBuffer::new(2);
        assert!(b.try_push(TupleBatch::default()).is_ok());
        assert!(b.try_push(TupleBatch::default()).is_ok());
        assert!(b.try_push(TupleBatch::default()).is_err(), "full at depth 2");
        assert!(!b.is_finished());
        b.close();
        assert!(!b.is_finished(), "still has queued batches");
        b.try_pop().unwrap();
        b.try_pop().unwrap();
        assert!(b.is_finished());
        assert!(b.try_pop().is_none());
    }

    #[test]
    fn transforms_compose_in_order() {
        use staged_sql::ast::{BinOp, ColumnRef};
        let col0 = Expr::Column(ColumnRef { table: None, name: "#0".into(), index: Some(0) });
        let ts = vec![
            Transform::Filter(Expr::binary(col0.clone(), BinOp::Gt, Expr::int(1))),
            Transform::Project(vec![Expr::binary(col0.clone(), BinOp::Mul, Expr::int(10))]),
        ];
        let keep = apply_transforms(&ts, Tuple::new(vec![Value::Int(5)])).unwrap();
        assert_eq!(keep.unwrap().values(), &[Value::Int(50)]);
        let drop = apply_transforms(&ts, Tuple::new(vec![Value::Int(0)])).unwrap();
        assert!(drop.is_none());
    }

    #[test]
    fn limit_transform_is_shared_across_producers() {
        let left = Arc::new(AtomicI64::new(2));
        let ts = vec![Transform::Limit(Arc::clone(&left))];
        let t = Tuple::new(vec![Value::Int(1)]);
        assert!(apply_transforms(&ts, t.clone()).unwrap().is_some());
        assert!(apply_transforms(&ts, t.clone()).unwrap().is_some());
        assert!(apply_transforms(&ts, t).unwrap().is_none(), "limit exhausted");
    }
}
