//! Operator tasks for the staged engine and the plan → task compiler.

use super::sharing::{self, Subscriber};
use super::{
    apply_transforms, prune_scan_columns, Activator, EngineConfig, ExchangeBuffer, OperatorTask,
    PageSize, QueryCtl, StageKind, StagedEngine, StepResult, TaskPacket, Transform, TupleBatch,
};
use crate::agg::AggMerger;
use crate::context::ExecContext;
use crate::error::{EngineError, EngineResult};
use crate::expr::{eval, eval_predicate};
use crate::volcano::sort_tuples;
use staged_planner::{AggSpec, PhysicalPlan};
use staged_sql::ast::Expr;
use staged_storage::catalog::{IndexInfo, TableInfo};
use staged_storage::{Rid, StorageResult, Tuple, Value};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::AtomicI64;
use std::sync::Arc;

/// Batch-building output side of a task: stages tuples, flushes pages into
/// the exchange buffer, activates the parent bottom-up. The page size is
/// read live from the engine's shared [`PageSize`] handle (knob (c)), so a
/// `set_page_size` call changes the next page every in-flight emitter
/// seals. All accounting — [`Emitter::backlog`], [`Emitter::ready`] — is
/// denominated in *tuples*, never pages, so back-pressure thresholds mean
/// the same thing at page size 1 and page size 4096.
pub struct Emitter {
    out: Arc<ExchangeBuffer>,
    parent: Arc<Activator>,
    page: PageSize,
    staging: Vec<Tuple>,
    closed: bool,
}

impl Emitter {
    /// Create an emitter sealing pages of the handle's live size.
    pub fn new(out: Arc<ExchangeBuffer>, parent: Arc<Activator>, page: PageSize) -> Self {
        Self { out, parent, page, staging: Vec::new(), closed: false }
    }

    /// The live tuples-per-page bound (knob (c)).
    pub fn page_cap(&self) -> usize {
        self.page.get()
    }

    /// Queue a tuple and flush full pages opportunistically.
    pub fn emit(&mut self, t: Tuple) {
        self.staging.push(t);
        if self.staging.len() >= self.page_cap() {
            self.pump();
        }
    }

    /// Queue a whole run of tuples, then flush full pages. This is the
    /// batch fast path: one length check and at most a few buffer locks
    /// for the entire run, instead of per-tuple bookkeeping.
    pub fn emit_all<I: IntoIterator<Item = Tuple>>(&mut self, tuples: I) {
        self.staging.extend(tuples);
        if self.staging.len() >= self.page_cap() {
            self.pump();
        }
    }

    /// Tuples staged but not yet flushed.
    pub fn backlog(&self) -> usize {
        self.staging.len()
    }

    /// Producer-side readiness: stop producing once the backlog exceeds one
    /// page worth of tuples and the consumer is not draining.
    pub fn ready(&self) -> bool {
        self.staging.len() < self.page_cap() || self.out.has_space()
    }

    fn flush_one(&mut self, force_partial: bool) -> bool {
        let cap = self.page_cap();
        if self.staging.is_empty() || (!force_partial && self.staging.len() < cap) {
            return true;
        }
        let n = self.staging.len().min(cap);
        let batch = TupleBatch::from_tuples(self.staging.drain(..n).collect());
        match self.out.try_push(batch) {
            Ok(()) => {
                self.parent.activate();
                true
            }
            Err(b) => {
                self.staging.splice(0..0, b.into_tuples());
                false
            }
        }
    }

    /// Flush as many full pages as the buffer accepts.
    pub fn pump(&mut self) {
        while self.staging.len() >= self.page_cap() {
            if !self.flush_one(false) {
                return;
            }
        }
    }

    /// Flush everything and close the stream; `false` if the buffer is
    /// still full (retry next quantum).
    pub fn finish(&mut self) -> bool {
        while !self.staging.is_empty() {
            if !self.flush_one(true) {
                return false;
            }
        }
        if !self.closed {
            self.out.close();
            self.parent.activate();
            self.closed = true;
        }
        true
    }
}

/// Input side of a task: pulls whole pages off the exchange buffer —
/// one lock per page, never one per tuple. Consumers run tight inner
/// loops over the returned run.
pub struct Intake {
    buf: Arc<ExchangeBuffer>,
}

impl Intake {
    /// Wrap a buffer.
    pub fn new(buf: Arc<ExchangeBuffer>) -> Self {
        Self { buf }
    }

    /// Next available page of tuples, if any.
    pub fn next_batch(&mut self) -> Option<Vec<Tuple>> {
        self.buf.try_pop().map(TupleBatch::into_tuples)
    }

    /// True when the producer closed and everything was consumed.
    pub fn finished(&self) -> bool {
        self.buf.is_finished()
    }
}

/// Compile a plan into tasks and enqueue the leaves (bottom-up activation
/// for everything else).
pub fn compile_and_launch(engine: &Arc<StagedEngine>, plan: &PhysicalPlan, ctl: Arc<QueryCtl>) {
    let cfg = engine.config().clone();
    let root_buf = ExchangeBuffer::new(cfg.buffer_depth);
    let send_act = engine.make_activator();
    send_act.park(
        engine.stage_id(StageKind::Send),
        TaskPacket {
            ctl: Arc::clone(&ctl),
            task: Box::new(SendTask {
                input: Intake::new(Arc::clone(&root_buf)),
                ctl: Arc::clone(&ctl),
            }),
        },
    );
    build(engine, plan, root_buf, Vec::new(), send_act, ctl, &cfg);
}

/// The public compiler entry point: build the task graph for `plan` and
/// launch its leaves (an alias of the crate-private `compile_and_launch`).
pub fn compile(engine: &Arc<StagedEngine>, plan: &PhysicalPlan, ctl: Arc<QueryCtl>) {
    compile_and_launch(engine, plan, ctl)
}

#[allow(clippy::too_many_arguments)]
fn build(
    engine: &Arc<StagedEngine>,
    plan: &PhysicalPlan,
    out: Arc<ExchangeBuffer>,
    transforms: Vec<Transform>,
    parent: Arc<Activator>,
    ctl: Arc<QueryCtl>,
    cfg: &EngineConfig,
) {
    let ctx = engine.ctx().clone();
    match plan {
        // Fused per-tuple operators: no stage of their own.
        PhysicalPlan::Filter { input, predicate } => {
            let mut ts = vec![Transform::filter(predicate.clone())];
            ts.extend(transforms);
            build(engine, input, out, ts, parent, ctl, cfg);
        }
        PhysicalPlan::Project { input, exprs, .. } => {
            let mut ts = vec![Transform::project(exprs.clone())];
            ts.extend(transforms);
            build(engine, input, out, ts, parent, ctl, cfg);
        }
        PhysicalPlan::Limit { input, n } => {
            let mut ts = vec![Transform::Limit(Arc::new(AtomicI64::new(*n as i64)))];
            ts.extend(transforms);
            build(engine, input, out, ts, parent, ctl, cfg);
        }
        PhysicalPlan::SeqScan { table, predicate, snapshot } => {
            let mut ts = Vec::new();
            if let Some(p) = predicate {
                ts.push(Transform::filter(p.clone()));
            }
            ts.extend(transforms);
            let emitter = Emitter::new(out, parent, engine.page_handle());
            // Snapshot scans never share a driver: each reader filters
            // pages against its own view, so piggybacking subscribers with
            // different views on one scan would cross-contaminate results.
            if cfg.shared_scans && snapshot.is_none() {
                // A shared driver serves every subscriber, so it must
                // decode full rows; per-subscriber pruning does not apply.
                let sub = Subscriber::new(emitter, ts, Arc::clone(&ctl));
                sharing::subscribe(engine, table, sub);
            } else {
                let mut ts = ts;
                let mut scan = match prune_scan_columns(&mut ts, table.schema.len()) {
                    Some(cols) => table.heap.scan_pages().with_columns(cols),
                    None => table.heap.scan_pages(),
                };
                if let Some(view) = snapshot {
                    scan = scan.with_snapshot(Arc::clone(&table.versions), *view);
                }
                let task = ScanTask { ctx, scan, transforms: ts, emitter, input_done: false };
                engine.enqueue(StageKind::FScan, TaskPacket { ctl, task: Box::new(task) });
            }
        }
        PhysicalPlan::PartitionScan { table, partition, predicate, snapshot } => {
            // A partial scan: one partition, one fscan packet. Partition
            // pipelines are never shared — each belongs to exactly one
            // Exchange (or is already pruned to a single partition).
            let mut ts = Vec::new();
            if let Some(p) = predicate {
                ts.push(Transform::filter(p.clone()));
            }
            ts.extend(transforms);
            let mut scan = match prune_scan_columns(&mut ts, table.schema.len()) {
                Some(cols) => table.heap.scan_partition_pages(*partition).with_columns(cols),
                None => table.heap.scan_partition_pages(*partition),
            };
            if let Some(view) = snapshot {
                scan = scan.with_snapshot(Arc::clone(&table.versions), *view);
            }
            let task = ScanTask {
                ctx,
                scan,
                transforms: ts,
                emitter: Emitter::new(out, parent, engine.page_handle()),
                input_done: false,
            };
            engine.enqueue(StageKind::FScan, TaskPacket { ctl, task: Box::new(task) });
        }
        PhysicalPlan::Exchange { inputs } => {
            // N independent partial pipelines converge at one union task on
            // the merge stage; the first page from any child activates it.
            fan_in(engine, inputs, out, parent, ctl, cfg, |intakes, emitter| {
                Box::new(UnionTask { inputs: intakes, transforms, emitter })
            });
        }
        PhysicalPlan::MergeAggregate { inputs, group_by_len, aggs } => {
            // Partial-aggregate pipelines (each a full fscan→filter→agg
            // chain) converge at the combining task on the merge stage.
            fan_in(engine, inputs, out, parent, ctl, cfg, |intakes, emitter| {
                Box::new(MergeAggTask {
                    inputs: intakes,
                    merger: Some(AggMerger::new(*group_by_len, aggs.clone())),
                    results: None,
                    pos: 0,
                    transforms,
                    emitter,
                })
            });
        }
        PhysicalPlan::IndexScan { table, index, lo, hi, predicate, .. } => {
            let mut ts = Vec::new();
            if let Some(p) = predicate {
                ts.push(Transform::filter(p.clone()));
            }
            ts.extend(transforms);
            let task = IndexScanTask {
                ctx,
                table: Arc::clone(table),
                index: Arc::clone(index),
                lo: *lo,
                hi: *hi,
                rids: None,
                pos: 0,
                transforms: ts,
                emitter: Emitter::new(out, parent, engine.page_handle()),
            };
            engine.enqueue(StageKind::IScan, TaskPacket { ctl, task: Box::new(task) });
        }
        PhysicalPlan::Sort { input, keys } => {
            let in_buf = ExchangeBuffer::new(cfg.buffer_depth);
            let act = engine.make_activator();
            let task = SortTask {
                input: Intake::new(Arc::clone(&in_buf)),
                keys: keys.clone(),
                rows: Vec::new(),
                sorted: false,
                pos: 0,
                transforms,
                emitter: Emitter::new(out, parent, engine.page_handle()),
            };
            act.park(
                engine.stage_id(StageKind::Sort),
                TaskPacket { ctl: Arc::clone(&ctl), task: Box::new(task) },
            );
            build(engine, input, in_buf, Vec::new(), act, ctl, cfg);
        }
        PhysicalPlan::HashAggregate { input, group_by, aggs } => {
            // When the aggregate sits directly on a prunable scan and reads
            // only plain columns, project the scan down to exactly those
            // columns and remap the aggregate; `prune_scan_columns` then
            // stops the scan decoding the rest of the row at the page.
            let prunable = match &**input {
                PhysicalPlan::SeqScan { .. } => !cfg.shared_scans,
                PhysicalPlan::PartitionScan { .. } => true,
                _ => false,
            };
            let narrowed = if prunable { narrow_agg_input(group_by, aggs) } else { None };
            let (scan_ts, group_by, aggs) = match narrowed {
                Some((proj, g, a)) => (vec![proj], g, a),
                None => (Vec::new(), group_by.clone(), aggs.clone()),
            };
            let in_buf = ExchangeBuffer::new(cfg.buffer_depth);
            let act = engine.make_activator();
            let task = AggTask::new(
                Intake::new(Arc::clone(&in_buf)),
                group_by,
                aggs,
                transforms,
                Emitter::new(out, parent, engine.page_handle()),
            );
            act.park(
                engine.stage_id(StageKind::Aggr),
                TaskPacket { ctl: Arc::clone(&ctl), task: Box::new(task) },
            );
            build(engine, input, in_buf, scan_ts, act, ctl, cfg);
        }
        PhysicalPlan::Distinct { input } => {
            let in_buf = ExchangeBuffer::new(cfg.buffer_depth);
            let act = engine.make_activator();
            let task = DistinctTask {
                input: Intake::new(Arc::clone(&in_buf)),
                seen: HashSet::new(),
                transforms,
                emitter: Emitter::new(out, parent, engine.page_handle()),
            };
            act.park(
                engine.stage_id(StageKind::Aggr),
                TaskPacket { ctl: Arc::clone(&ctl), task: Box::new(task) },
            );
            build(engine, input, in_buf, Vec::new(), act, ctl, cfg);
        }
        PhysicalPlan::HashJoin { left, right, keys, residual } => {
            let build_buf = ExchangeBuffer::new(cfg.buffer_depth);
            let probe_buf = ExchangeBuffer::new(cfg.buffer_depth);
            let act = engine.make_activator();
            let task = HashJoinTask {
                build: Intake::new(Arc::clone(&build_buf)),
                probe: Intake::new(Arc::clone(&probe_buf)),
                building: true,
                keys: keys.clone(),
                residual: residual.clone(),
                table: HashMap::new(),
                transforms,
                emitter: Emitter::new(out, parent, engine.page_handle()),
            };
            act.park(
                engine.stage_id(StageKind::Join),
                TaskPacket { ctl: Arc::clone(&ctl), task: Box::new(task) },
            );
            build(engine, left, build_buf, Vec::new(), Arc::clone(&act), Arc::clone(&ctl), cfg);
            build(engine, right, probe_buf, Vec::new(), act, ctl, cfg);
        }
        PhysicalPlan::MergeJoin { left, right, keys, residual } => {
            let lbuf = ExchangeBuffer::new(cfg.buffer_depth);
            let rbuf = ExchangeBuffer::new(cfg.buffer_depth);
            let act = engine.make_activator();
            let task = MergeJoinTask {
                left: Intake::new(Arc::clone(&lbuf)),
                right: Intake::new(Arc::clone(&rbuf)),
                keys: keys.clone(),
                residual: residual.clone(),
                lrows: Vec::new(),
                rrows: Vec::new(),
                output: None,
                pos: 0,
                transforms,
                emitter: Emitter::new(out, parent, engine.page_handle()),
            };
            act.park(
                engine.stage_id(StageKind::Join),
                TaskPacket { ctl: Arc::clone(&ctl), task: Box::new(task) },
            );
            build(engine, left, lbuf, Vec::new(), Arc::clone(&act), Arc::clone(&ctl), cfg);
            build(engine, right, rbuf, Vec::new(), act, ctl, cfg);
        }
        PhysicalPlan::NestedLoopJoin { left, right, predicate } => {
            let lbuf = ExchangeBuffer::new(cfg.buffer_depth);
            let rbuf = ExchangeBuffer::new(cfg.buffer_depth);
            let act = engine.make_activator();
            let task = NestedLoopTask {
                left: Intake::new(Arc::clone(&lbuf)),
                right: Intake::new(Arc::clone(&rbuf)),
                predicate: predicate.clone(),
                lrows: Vec::new(),
                rrows: Vec::new(),
                gathered: false,
                i: 0,
                j: 0,
                transforms,
                emitter: Emitter::new(out, parent, engine.page_handle()),
            };
            act.park(
                engine.stage_id(StageKind::Join),
                TaskPacket { ctl: Arc::clone(&ctl), task: Box::new(task) },
            );
            build(engine, left, lbuf, Vec::new(), Arc::clone(&act), Arc::clone(&ctl), cfg);
            build(engine, right, rbuf, Vec::new(), act, ctl, cfg);
        }
    }
}

/// When every grouping expression and aggregate argument is a bound column
/// reference, compute the column set the aggregate reads and return (a) a
/// plain-column projection narrowing its input to exactly that set and (b)
/// the group/agg lists rewritten against the narrowed layout. `None` when
/// any expression needs the full row. A `COUNT(*)` with no grouping
/// narrows to the empty projection: the scan then decodes nothing at all.
fn narrow_agg_input(
    group_by: &[Expr],
    aggs: &[AggSpec],
) -> Option<(Transform, Vec<Expr>, Vec<AggSpec>)> {
    let mut cols: Vec<usize> = Vec::new();
    for e in group_by {
        match e {
            Expr::Column(c) => cols.push(c.index?),
            _ => return None,
        }
    }
    for s in aggs {
        match &s.arg {
            None => {}
            Some(Expr::Column(c)) => cols.push(c.index?),
            Some(_) => return None,
        }
    }
    cols.sort_unstable();
    cols.dedup();
    let remap = |e: &Expr| match e {
        Expr::Column(c) => {
            let mut c = c.clone();
            let idx = c.index.expect("collected above");
            c.index = Some(cols.binary_search(&idx).expect("collected above"));
            Expr::Column(c)
        }
        _ => unreachable!("only plain columns reach here"),
    };
    let group_by = group_by.iter().map(remap).collect();
    let aggs = aggs
        .iter()
        .map(|s| AggSpec { func: s.func, arg: s.arg.as_ref().map(remap), distinct: s.distinct })
        .collect();
    Some((Transform::project_cols(cols), group_by, aggs))
}

/// Shared fan-in wiring for the merge-stage tasks: one exchange buffer +
/// intake per partial pipeline, the convergence task parked on the merge
/// stage behind a single activator (first page from any child wakes it),
/// then every child pipeline built against its buffer.
fn fan_in(
    engine: &Arc<StagedEngine>,
    inputs: &[PhysicalPlan],
    out: Arc<ExchangeBuffer>,
    parent: Arc<Activator>,
    ctl: Arc<QueryCtl>,
    cfg: &EngineConfig,
    make_task: impl FnOnce(Vec<Intake>, Emitter) -> Box<dyn OperatorTask>,
) {
    let act = engine.make_activator();
    let mut intakes = Vec::with_capacity(inputs.len());
    let mut bufs = Vec::with_capacity(inputs.len());
    for _ in inputs {
        let b = ExchangeBuffer::new(cfg.buffer_depth);
        intakes.push(Intake::new(Arc::clone(&b)));
        bufs.push(b);
    }
    let task = make_task(intakes, Emitter::new(out, parent, engine.page_handle()));
    act.park(engine.stage_id(StageKind::Merge), TaskPacket { ctl: Arc::clone(&ctl), task });
    for (input, buf) in inputs.iter().zip(bufs) {
        build(engine, input, buf, Vec::new(), Arc::clone(&act), Arc::clone(&ctl), cfg);
    }
}

/// Emit through the transform chain; returns `Ok(true)` if a tuple reached
/// the emitter.
fn emit_transformed(
    emitter: &mut Emitter,
    transforms: &[Transform],
    t: Tuple,
) -> EngineResult<bool> {
    match apply_transforms(transforms, t)? {
        Some(t) => {
            emitter.emit(t);
            Ok(true)
        }
        None => Ok(false),
    }
}

/// Emit a whole run of tuples through the transform chain: the batch inner
/// loop every producing task shares. With no transforms the run lands in
/// the staging page as one `extend`; with transforms each survivor is
/// appended and pages are sealed at the end of the run.
fn emit_batch_transformed<I: IntoIterator<Item = Tuple>>(
    emitter: &mut Emitter,
    transforms: &[Transform],
    tuples: I,
) -> EngineResult<()> {
    if transforms.is_empty() {
        emitter.emit_all(tuples);
        return Ok(());
    }
    for t in tuples {
        if let Some(t) = apply_transforms(transforms, t)? {
            emitter.emit(t);
        }
    }
    emitter.pump();
    Ok(())
}

// ---------------------------------------------------------------- scans --

/// Sequential scan task, generic over the *page* source so it serves both
/// whole-table scans ([`staged_storage::partition::PartitionedPageScan`])
/// and single-partition partial scans
/// ([`staged_storage::heap::HeapPageScan`]). Each iteration moves one heap
/// page of tuples straight into the exchange layer — the storage page is
/// the unit of production, the exchange page the unit of shipment.
pub(super) struct ScanTask<S> {
    pub ctx: ExecContext,
    pub scan: S,
    pub transforms: Vec<Transform>,
    pub emitter: Emitter,
    pub input_done: bool,
}

impl<S: Iterator<Item = StorageResult<Vec<(Rid, Tuple)>>> + Send> OperatorTask for ScanTask<S> {
    fn step(&mut self, quota: usize) -> EngineResult<StepResult> {
        let mut produced = 0usize;
        while produced < quota {
            if self.input_done {
                return if self.emitter.finish() {
                    Ok(StepResult::Done)
                } else {
                    Ok(StepResult::Blocked)
                };
            }
            if !self.emitter.ready() {
                return Ok(if produced > 0 { StepResult::Working } else { StepResult::Blocked });
            }
            match self.scan.next() {
                Some(page) => {
                    let page = page?;
                    self.ctx.note_page_ref();
                    produced += page.len().max(1);
                    emit_batch_transformed(
                        &mut self.emitter,
                        &self.transforms,
                        page.into_iter().map(|(_, t)| t),
                    )?;
                }
                None => self.input_done = true,
            }
        }
        Ok(StepResult::Working)
    }
}

pub(super) struct IndexScanTask {
    pub ctx: ExecContext,
    pub table: Arc<TableInfo>,
    pub index: Arc<IndexInfo>,
    pub lo: Option<i64>,
    pub hi: Option<i64>,
    pub rids: Option<Vec<staged_storage::Rid>>,
    pub pos: usize,
    pub transforms: Vec<Transform>,
    pub emitter: Emitter,
}

impl OperatorTask for IndexScanTask {
    fn step(&mut self, quota: usize) -> EngineResult<StepResult> {
        if self.rids.is_none() {
            // A probe pinning the hash-key column only needs that
            // partition's tree.
            let pruned = self.table.pruned_partition(self.index.column, self.lo, self.hi);
            let pairs = self.index.range_in(pruned, self.lo, self.hi)?;
            self.ctx.note_page_ref();
            self.rids = Some(pairs.into_iter().map(|(_, r)| r).collect());
        }
        let rids = self.rids.as_ref().expect("materialized above");
        let mut produced = 0usize;
        while produced < quota {
            if self.pos >= rids.len() {
                return if self.emitter.finish() {
                    Ok(StepResult::Done)
                } else {
                    Ok(StepResult::Blocked)
                };
            }
            if !self.emitter.ready() {
                return Ok(if produced > 0 { StepResult::Working } else { StepResult::Blocked });
            }
            // Look up one exchange page worth of rids per readiness check.
            let n = (rids.len() - self.pos).min(quota - produced).min(self.emitter.page_cap());
            let mut page = Vec::with_capacity(n);
            for rid in &rids[self.pos..self.pos + n] {
                page.push(self.table.heap.get(*rid)?);
                self.ctx.note_page_ref();
            }
            self.pos += n;
            produced += n;
            emit_batch_transformed(&mut self.emitter, &self.transforms, page)?;
        }
        Ok(StepResult::Working)
    }
}

// ----------------------------------------------------------------- sort --

pub(super) struct SortTask {
    pub input: Intake,
    pub keys: Vec<(Expr, bool)>,
    pub rows: Vec<Tuple>,
    pub sorted: bool,
    pub pos: usize,
    pub transforms: Vec<Transform>,
    pub emitter: Emitter,
}

impl OperatorTask for SortTask {
    fn step(&mut self, quota: usize) -> EngineResult<StepResult> {
        if !self.sorted {
            let mut consumed = 0usize;
            while consumed < quota {
                match self.input.next_batch() {
                    Some(batch) => {
                        consumed += batch.len().max(1);
                        self.rows.extend(batch);
                    }
                    None if self.input.finished() => {
                        sort_tuples(&mut self.rows, &self.keys)?;
                        self.sorted = true;
                        break;
                    }
                    None => {
                        return Ok(if consumed > 0 {
                            StepResult::Working
                        } else {
                            StepResult::Blocked
                        })
                    }
                }
            }
            if !self.sorted {
                return Ok(StepResult::Working);
            }
        }
        drain_materialized(&mut self.pos, &self.rows, &self.transforms, &mut self.emitter, quota)
    }
}

/// Shared drain phase: emit `rows[pos..]` through transforms, one exchange
/// page per readiness check.
fn drain_materialized(
    pos: &mut usize,
    rows: &[Tuple],
    transforms: &[Transform],
    emitter: &mut Emitter,
    quota: usize,
) -> EngineResult<StepResult> {
    let mut produced = 0usize;
    while produced < quota {
        if *pos >= rows.len() {
            return if emitter.finish() { Ok(StepResult::Done) } else { Ok(StepResult::Blocked) };
        }
        if !emitter.ready() {
            return Ok(if produced > 0 { StepResult::Working } else { StepResult::Blocked });
        }
        let n = (rows.len() - *pos).min(quota - produced).min(emitter.page_cap());
        emit_batch_transformed(emitter, transforms, rows[*pos..*pos + n].iter().cloned())?;
        *pos += n;
        produced += n;
    }
    Ok(StepResult::Working)
}

// ---------------------------------------------------------------- merge --

/// Bag union of N partial pipelines (the staged `Exchange`): forwards
/// whatever any input has ready, so fast partitions never wait for slow
/// ones.
pub(super) struct UnionTask {
    pub inputs: Vec<Intake>,
    pub transforms: Vec<Transform>,
    pub emitter: Emitter,
}

impl OperatorTask for UnionTask {
    fn step(&mut self, quota: usize) -> EngineResult<StepResult> {
        let mut moved = 0usize;
        loop {
            let mut any = false;
            for i in 0..self.inputs.len() {
                loop {
                    if moved >= quota {
                        return Ok(StepResult::Working);
                    }
                    if !self.emitter.ready() {
                        return Ok(if moved > 0 {
                            StepResult::Working
                        } else {
                            StepResult::Blocked
                        });
                    }
                    match self.inputs[i].next_batch() {
                        Some(batch) => {
                            moved += batch.len().max(1);
                            emit_batch_transformed(&mut self.emitter, &self.transforms, batch)?;
                            any = true;
                        }
                        None => break,
                    }
                }
            }
            if !any {
                if self.inputs.iter().all(Intake::finished) {
                    return if self.emitter.finish() {
                        Ok(StepResult::Done)
                    } else {
                        Ok(StepResult::Blocked)
                    };
                }
                return Ok(if moved > 0 { StepResult::Working } else { StepResult::Blocked });
            }
        }
    }
}

/// Combine N partial-aggregation pipelines into final aggregate rows (the
/// staged `MergeAggregate`): absorbs partial rows as they arrive from any
/// partition, finishes once every input closes.
pub(super) struct MergeAggTask {
    pub inputs: Vec<Intake>,
    pub merger: Option<AggMerger>,
    pub results: Option<Vec<Tuple>>,
    pub pos: usize,
    pub transforms: Vec<Transform>,
    pub emitter: Emitter,
}

impl OperatorTask for MergeAggTask {
    fn step(&mut self, quota: usize) -> EngineResult<StepResult> {
        if self.results.is_none() {
            let merger = self.merger.as_mut().expect("merger present until finish");
            let mut consumed = 0usize;
            loop {
                let mut any = false;
                for i in 0..self.inputs.len() {
                    loop {
                        if consumed >= quota {
                            return Ok(StepResult::Working);
                        }
                        match self.inputs[i].next_batch() {
                            Some(batch) => {
                                consumed += batch.len().max(1);
                                for t in &batch {
                                    merger.absorb(t)?;
                                }
                                any = true;
                            }
                            None => break,
                        }
                    }
                }
                if !any {
                    if self.inputs.iter().all(Intake::finished) {
                        break;
                    }
                    return Ok(if consumed > 0 {
                        StepResult::Working
                    } else {
                        StepResult::Blocked
                    });
                }
            }
            let merger = self.merger.take().expect("merger present until finish");
            self.results = Some(merger.finish());
        }
        let rows = self.results.as_ref().expect("computed above");
        drain_materialized(&mut self.pos, rows, &self.transforms, &mut self.emitter, quota)
    }
}

// ------------------------------------------------------------ aggregate --

/// One aggregate's argument, resolved once when the task is built so the
/// per-tuple loop skips the expression interpreter for plain columns.
enum ArgSource {
    /// `COUNT(*)`.
    Star,
    /// A bound column reference: update straight off the tuple slot.
    Col(usize),
    /// Anything else: interpret per tuple.
    Expr(Expr),
}

pub(super) struct AggTask {
    input: Intake,
    group_by: Vec<Expr>,
    aggs: Vec<AggSpec>,
    /// Fast path: every group expression is a plain bound column, so group
    /// keys encode straight off tuple slots into a reused scratch buffer —
    /// no per-tuple allocations, values cloned only when a group is first
    /// seen.
    group_cols: Option<Vec<usize>>,
    args: Vec<ArgSource>,
    key_scratch: Vec<u8>,
    groups: Vec<(Vec<Value>, Vec<crate::agg::Accumulator>)>,
    index: HashMap<Vec<u8>, usize>,
    saw_row: bool,
    results: Option<Vec<Tuple>>,
    pos: usize,
    transforms: Vec<Transform>,
    emitter: Emitter,
}

impl AggTask {
    pub(super) fn new(
        input: Intake,
        group_by: Vec<Expr>,
        aggs: Vec<AggSpec>,
        transforms: Vec<Transform>,
        emitter: Emitter,
    ) -> Self {
        let group_cols = group_by
            .iter()
            .map(|e| match e {
                Expr::Column(c) => c.index,
                _ => None,
            })
            .collect::<Option<Vec<usize>>>();
        let args = aggs
            .iter()
            .map(|s| match &s.arg {
                None => ArgSource::Star,
                Some(Expr::Column(c)) if c.index.is_some() => {
                    ArgSource::Col(c.index.expect("checked"))
                }
                Some(e) => ArgSource::Expr(e.clone()),
            })
            .collect();
        Self {
            input,
            group_by,
            aggs,
            group_cols,
            args,
            key_scratch: Vec::new(),
            groups: Vec::new(),
            index: HashMap::new(),
            saw_row: false,
            results: None,
            pos: 0,
            transforms,
            emitter,
        }
    }

    fn absorb(&mut self, t: &Tuple) -> EngineResult<()> {
        self.saw_row = true;
        let slot = if let Some(cols) = &self.group_cols {
            self.key_scratch.clear();
            for &i in cols {
                t.values()
                    .get(i)
                    .ok_or_else(|| EngineError::Internal(format!("column {i} out of arity")))?
                    .encode(&mut self.key_scratch);
            }
            match self.index.get(self.key_scratch.as_slice()) {
                Some(&s) => s,
                None => {
                    let key_vals = cols.iter().map(|&i| t.values()[i].clone()).collect();
                    let accs = self.aggs.iter().map(crate::agg::Accumulator::new).collect();
                    self.groups.push((key_vals, accs));
                    self.index.insert(self.key_scratch.clone(), self.groups.len() - 1);
                    self.groups.len() - 1
                }
            }
        } else {
            let mut key_bytes = Vec::new();
            let mut key_vals = Vec::with_capacity(self.group_by.len());
            for g in &self.group_by {
                let v = eval(g, t)?;
                v.encode(&mut key_bytes);
                key_vals.push(v);
            }
            match self.index.get(&key_bytes) {
                Some(&s) => s,
                None => {
                    let accs = self.aggs.iter().map(crate::agg::Accumulator::new).collect();
                    self.groups.push((key_vals, accs));
                    self.index.insert(key_bytes, self.groups.len() - 1);
                    self.groups.len() - 1
                }
            }
        };
        for (k, src) in self.args.iter().enumerate() {
            let acc = &mut self.groups[slot].1[k];
            match src {
                ArgSource::Star => acc.update_star(),
                ArgSource::Col(i) => {
                    acc.update(t.values().get(*i).ok_or_else(|| {
                        EngineError::Internal(format!("column {i} out of arity"))
                    })?)?
                }
                ArgSource::Expr(e) => acc.update(&eval(e, t)?)?,
            }
        }
        Ok(())
    }
}

impl OperatorTask for AggTask {
    fn step(&mut self, quota: usize) -> EngineResult<StepResult> {
        if self.results.is_none() {
            let mut consumed = 0usize;
            loop {
                if consumed >= quota {
                    return Ok(StepResult::Working);
                }
                match self.input.next_batch() {
                    Some(batch) => {
                        consumed += batch.len().max(1);
                        for t in &batch {
                            self.absorb(t)?;
                        }
                    }
                    None if self.input.finished() => break,
                    None => {
                        return Ok(if consumed > 0 {
                            StepResult::Working
                        } else {
                            StepResult::Blocked
                        })
                    }
                }
            }
            if !self.saw_row && self.group_by.is_empty() {
                let accs: Vec<crate::agg::Accumulator> =
                    self.aggs.iter().map(crate::agg::Accumulator::new).collect();
                self.groups.push((Vec::new(), accs));
            }
            let results = std::mem::take(&mut self.groups)
                .into_iter()
                .map(|(mut vals, accs)| {
                    vals.extend(accs.iter().map(crate::agg::Accumulator::finish));
                    Tuple::new(vals)
                })
                .collect();
            self.results = Some(results);
        }
        let rows = self.results.as_ref().expect("computed above");
        drain_materialized(&mut self.pos, rows, &self.transforms, &mut self.emitter, quota)
    }
}

pub(super) struct DistinctTask {
    pub input: Intake,
    pub seen: HashSet<Vec<u8>>,
    pub transforms: Vec<Transform>,
    pub emitter: Emitter,
}

impl OperatorTask for DistinctTask {
    fn step(&mut self, quota: usize) -> EngineResult<StepResult> {
        let mut moved = 0usize;
        while moved < quota {
            if !self.emitter.ready() {
                return Ok(if moved > 0 { StepResult::Working } else { StepResult::Blocked });
            }
            match self.input.next_batch() {
                Some(batch) => {
                    moved += batch.len().max(1);
                    for t in batch {
                        if self.seen.insert(t.encode()) {
                            emit_transformed(&mut self.emitter, &self.transforms, t)?;
                        }
                    }
                    self.emitter.pump();
                }
                None if self.input.finished() => {
                    return if self.emitter.finish() {
                        Ok(StepResult::Done)
                    } else {
                        Ok(StepResult::Blocked)
                    };
                }
                None => {
                    return Ok(if moved > 0 { StepResult::Working } else { StepResult::Blocked })
                }
            }
        }
        Ok(StepResult::Working)
    }
}

// ---------------------------------------------------------------- joins --

fn encode_key(exprs: &[&Expr], tuple: &Tuple) -> EngineResult<Option<Vec<u8>>> {
    let mut out = Vec::new();
    for e in exprs {
        let v = eval(e, tuple)?;
        if v.is_null() {
            return Ok(None);
        }
        match v {
            Value::Int(i) => Value::Float(i as f64).encode(&mut out),
            other => other.encode(&mut out),
        }
    }
    Ok(Some(out))
}

pub(super) struct HashJoinTask {
    pub build: Intake,
    pub probe: Intake,
    pub building: bool,
    pub keys: Vec<(Expr, Expr)>,
    pub residual: Option<Expr>,
    pub table: HashMap<Vec<u8>, Vec<Tuple>>,
    pub transforms: Vec<Transform>,
    pub emitter: Emitter,
}

impl OperatorTask for HashJoinTask {
    fn step(&mut self, quota: usize) -> EngineResult<StepResult> {
        let mut work = 0usize;
        if self.building {
            let key_exprs: Vec<&Expr> = self.keys.iter().map(|(l, _)| l).collect();
            loop {
                if work >= quota {
                    return Ok(StepResult::Working);
                }
                match self.build.next_batch() {
                    Some(batch) => {
                        work += batch.len().max(1);
                        for t in batch {
                            if let Some(k) = encode_key(&key_exprs, &t)? {
                                self.table.entry(k).or_default().push(t);
                            }
                        }
                    }
                    None if self.build.finished() => {
                        self.building = false;
                        break;
                    }
                    None => {
                        return Ok(if work > 0 { StepResult::Working } else { StepResult::Blocked })
                    }
                }
            }
        }
        // Probe phase: one probe page per readiness check; every match the
        // page produces goes straight out through the transform chain (the
        // page is the granularity of back-pressure, so the staging run may
        // overshoot by one page's join fan-out before the task yields).
        let key_exprs: Vec<&Expr> = self.keys.iter().map(|(_, r)| r).collect();
        while work < quota {
            if !self.emitter.ready() {
                return Ok(if work > 0 { StepResult::Working } else { StepResult::Blocked });
            }
            match self.probe.next_batch() {
                Some(batch) => {
                    work += batch.len().max(1);
                    for probe in batch {
                        let Some(k) = encode_key(&key_exprs, &probe)? else { continue };
                        if let Some(matches) = self.table.get(&k) {
                            for m in matches {
                                let joined = m.concat(&probe);
                                match &self.residual {
                                    Some(p) if !eval_predicate(p, &joined)? => continue,
                                    _ => {
                                        emit_transformed(
                                            &mut self.emitter,
                                            &self.transforms,
                                            joined,
                                        )?;
                                    }
                                }
                            }
                        }
                    }
                    self.emitter.pump();
                }
                None if self.probe.finished() => {
                    return if self.emitter.finish() {
                        Ok(StepResult::Done)
                    } else {
                        Ok(StepResult::Blocked)
                    };
                }
                None => {
                    return Ok(if work > 0 { StepResult::Working } else { StepResult::Blocked })
                }
            }
        }
        Ok(StepResult::Working)
    }
}

pub(super) struct MergeJoinTask {
    pub left: Intake,
    pub right: Intake,
    pub keys: (Expr, Expr),
    pub residual: Option<Expr>,
    pub lrows: Vec<Tuple>,
    pub rrows: Vec<Tuple>,
    pub output: Option<Vec<Tuple>>,
    pub pos: usize,
    pub transforms: Vec<Transform>,
    pub emitter: Emitter,
}

impl OperatorTask for MergeJoinTask {
    fn step(&mut self, quota: usize) -> EngineResult<StepResult> {
        if self.output.is_none() {
            let mut moved = 0usize;
            while moved < quota {
                if let Some(batch) = self.left.next_batch() {
                    moved += batch.len().max(1);
                    self.lrows.extend(batch);
                    continue;
                }
                if let Some(batch) = self.right.next_batch() {
                    moved += batch.len().max(1);
                    self.rrows.extend(batch);
                    continue;
                }
                if self.left.finished() && self.right.finished() {
                    break;
                }
                return Ok(if moved > 0 { StepResult::Working } else { StepResult::Blocked });
            }
            if !(self.left.finished() && self.right.finished()) {
                return Ok(StepResult::Working);
            }
            self.output = Some(merge_join(
                std::mem::take(&mut self.lrows),
                std::mem::take(&mut self.rrows),
                &self.keys,
                &self.residual,
            )?);
        }
        let rows = self.output.as_ref().expect("computed above");
        drain_materialized(&mut self.pos, rows, &self.transforms, &mut self.emitter, quota)
    }
}

/// Sort-merge two materialized inputs (shared with the Volcano semantics).
fn merge_join(
    lrows: Vec<Tuple>,
    rrows: Vec<Tuple>,
    keys: &(Expr, Expr),
    residual: &Option<Expr>,
) -> EngineResult<Vec<Tuple>> {
    let mut l: Vec<(Value, Tuple)> = Vec::with_capacity(lrows.len());
    for t in lrows {
        let k = eval(&keys.0, &t)?;
        if !k.is_null() {
            l.push((k, t));
        }
    }
    let mut r: Vec<(Value, Tuple)> = Vec::with_capacity(rrows.len());
    for t in rrows {
        let k = eval(&keys.1, &t)?;
        if !k.is_null() {
            r.push((k, t));
        }
    }
    l.sort_by(|a, b| a.0.total_cmp(&b.0));
    r.sort_by(|a, b| a.0.total_cmp(&b.0));
    let mut out = Vec::new();
    let (mut i, mut j) = (0, 0);
    while i < l.len() && j < r.len() {
        match l[i].0.sql_cmp(&r[j].0) {
            Some(std::cmp::Ordering::Less) => i += 1,
            Some(std::cmp::Ordering::Greater) => j += 1,
            Some(std::cmp::Ordering::Equal) => {
                let key = l[i].0.clone();
                let i0 = i;
                while i < l.len() && l[i].0.sql_cmp(&key) == Some(std::cmp::Ordering::Equal) {
                    i += 1;
                }
                let j0 = j;
                while j < r.len() && r[j].0.sql_cmp(&key) == Some(std::cmp::Ordering::Equal) {
                    j += 1;
                }
                for (_, lt) in &l[i0..i] {
                    for (_, rt) in &r[j0..j] {
                        let joined = lt.concat(rt);
                        match residual {
                            Some(p) if !eval_predicate(p, &joined)? => continue,
                            _ => out.push(joined),
                        }
                    }
                }
            }
            None => return Err(EngineError::Eval("incomparable merge-join keys".into())),
        }
    }
    Ok(out)
}

pub(super) struct NestedLoopTask {
    pub left: Intake,
    pub right: Intake,
    pub predicate: Option<Expr>,
    pub lrows: Vec<Tuple>,
    pub rrows: Vec<Tuple>,
    pub gathered: bool,
    pub i: usize,
    pub j: usize,
    pub transforms: Vec<Transform>,
    pub emitter: Emitter,
}

impl OperatorTask for NestedLoopTask {
    fn step(&mut self, quota: usize) -> EngineResult<StepResult> {
        if !self.gathered {
            let mut moved = 0usize;
            while moved < quota {
                if let Some(batch) = self.left.next_batch() {
                    moved += batch.len().max(1);
                    self.lrows.extend(batch);
                    continue;
                }
                if let Some(batch) = self.right.next_batch() {
                    moved += batch.len().max(1);
                    self.rrows.extend(batch);
                    continue;
                }
                if self.left.finished() && self.right.finished() {
                    self.gathered = true;
                    break;
                }
                return Ok(if moved > 0 { StepResult::Working } else { StepResult::Blocked });
            }
            if !self.gathered {
                return Ok(StepResult::Working);
            }
        }
        if self.rrows.is_empty() {
            // Inner relation empty: no output at all.
            self.i = self.lrows.len();
        }
        let mut produced = 0usize;
        while produced < quota {
            if self.i >= self.lrows.len() {
                return if self.emitter.finish() {
                    Ok(StepResult::Done)
                } else {
                    Ok(StepResult::Blocked)
                };
            }
            if !self.emitter.ready() {
                return Ok(if produced > 0 { StepResult::Working } else { StepResult::Blocked });
            }
            let joined = self.lrows[self.i].concat(&self.rrows[self.j]);
            // Advance the (i, j) cursor.
            self.j += 1;
            if self.j >= self.rrows.len() {
                self.j = 0;
                self.i += 1;
            }
            produced += 1;
            match &self.predicate {
                Some(p) if !eval_predicate(p, &joined)? => continue,
                _ => {
                    emit_transformed(&mut self.emitter, &self.transforms, joined)?;
                }
            }
        }
        Ok(StepResult::Working)
    }
}

// ----------------------------------------------------------------- send --

pub(super) struct SendTask {
    pub input: Intake,
    pub ctl: Arc<QueryCtl>,
}

impl OperatorTask for SendTask {
    fn step(&mut self, quota: usize) -> EngineResult<StepResult> {
        let mut moved = 0usize;
        while moved < quota {
            match self.input.next_batch() {
                Some(batch) => {
                    moved += batch.len().max(1);
                    for t in batch {
                        self.ctl.emit(t);
                    }
                }
                None if self.input.finished() => return Ok(StepResult::Done),
                None => {
                    return Ok(if moved > 0 { StepResult::Working } else { StepResult::Blocked })
                }
            }
        }
        Ok(StepResult::Working)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use staged_storage::{BufferPool, Catalog, MemDisk};

    fn tuple(i: i64) -> Tuple {
        Tuple::new(vec![Value::Int(i)])
    }

    fn test_engine() -> Arc<StagedEngine> {
        let cat = Arc::new(Catalog::new(BufferPool::new(Arc::new(MemDisk::new()), 64)));
        StagedEngine::new(ExecContext::new(cat), EngineConfig::default())
    }

    #[test]
    fn emitter_backpressure_is_tuple_denominated_and_stalls_producer() {
        // Regression for the batch refactor: with pages of 4 tuples and a
        // downstream buffer of 1 page, the producer must stall once the
        // buffer is full AND a full page is staged — and both backlog and
        // the stall threshold must count tuples, not pages.
        let engine = test_engine();
        let buf = ExchangeBuffer::new(1);
        let mut e = Emitter::new(Arc::clone(&buf), engine.make_activator(), PageSize::new(4));
        for i in 0..4 {
            assert!(e.ready());
            e.emit(tuple(i));
        }
        assert_eq!(e.backlog(), 0, "a full page flushed into the free buffer");
        assert_eq!(buf.queued_tuples(), 4);
        for i in 4..8 {
            e.emit(tuple(i));
        }
        assert_eq!(e.backlog(), 4, "backlog reports staged tuples, not batches");
        assert!(!e.ready(), "full downstream buffer must stall the producer");
        assert!(!e.finish(), "cannot close while a page is stuck behind the buffer");
        // The consumer drains one page; the producer unblocks and drains.
        let page = buf.try_pop().expect("one page queued");
        assert_eq!(page.len(), 4);
        assert!(e.ready());
        assert!(e.finish());
        assert_eq!(buf.queued_tuples(), 4);
        assert!(buf.is_closed());
        engine.shutdown();
    }

    #[test]
    fn emitter_observes_live_page_size_changes() {
        // Knob (c) applies to the next page an in-flight emitter seals.
        let engine = test_engine();
        let buf = ExchangeBuffer::new(8);
        let page = PageSize::new(2);
        let mut e = Emitter::new(Arc::clone(&buf), engine.make_activator(), page.clone());
        e.emit_all((0..2).map(tuple));
        assert_eq!(buf.try_pop().unwrap().len(), 2);
        page.set(3);
        e.emit_all((0..7).map(tuple));
        assert_eq!(buf.try_pop().unwrap().len(), 3, "new page size in effect");
        assert_eq!(buf.try_pop().unwrap().len(), 3);
        assert_eq!(e.backlog(), 1, "partial page stays staged until finish");
        assert!(e.finish());
        assert_eq!(buf.try_pop().unwrap().len(), 1);
        engine.shutdown();
    }
}
