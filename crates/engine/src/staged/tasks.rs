//! Operator tasks for the staged engine and the plan → task compiler.

use super::sharing::{self, Subscriber};
use super::{
    apply_transforms, Activator, EngineConfig, ExchangeBuffer, OperatorTask, QueryCtl, StageKind,
    StagedEngine, StepResult, TaskPacket, Transform, TupleBatch,
};
use crate::agg::AggMerger;
use crate::context::ExecContext;
use crate::error::{EngineError, EngineResult};
use crate::expr::{eval, eval_predicate};
use crate::volcano::sort_tuples;
use staged_planner::{AggSpec, PhysicalPlan};
use staged_sql::ast::Expr;
use staged_storage::catalog::{IndexInfo, TableInfo};
use staged_storage::{Rid, StorageResult, Tuple, Value};
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::atomic::AtomicI64;
use std::sync::Arc;

/// Batch-building output side of a task: stages tuples, flushes pages into
/// the exchange buffer, activates the parent bottom-up.
pub struct Emitter {
    out: Arc<ExchangeBuffer>,
    parent: Arc<Activator>,
    cap: usize,
    staging: VecDeque<Tuple>,
    closed: bool,
}

impl Emitter {
    /// Create an emitter.
    pub fn new(out: Arc<ExchangeBuffer>, parent: Arc<Activator>, cap: usize) -> Self {
        Self { out, parent, cap: cap.max(1), staging: VecDeque::new(), closed: false }
    }

    /// Queue a tuple and flush full pages opportunistically.
    pub fn emit(&mut self, t: Tuple) {
        self.staging.push_back(t);
        self.pump();
    }

    /// Tuples staged but not yet flushed.
    pub fn backlog(&self) -> usize {
        self.staging.len()
    }

    /// Producer-side readiness: stop producing once the backlog exceeds one
    /// page and the consumer is not draining.
    pub fn ready(&self) -> bool {
        self.staging.len() < self.cap || self.out.has_space()
    }

    fn flush_one(&mut self, force_partial: bool) -> bool {
        if self.staging.is_empty() || (!force_partial && self.staging.len() < self.cap) {
            return true;
        }
        let n = self.staging.len().min(self.cap);
        let batch = TupleBatch::from_tuples(self.staging.drain(..n).collect());
        match self.out.try_push(batch) {
            Ok(()) => {
                self.parent.activate();
                true
            }
            Err(b) => {
                for t in b.into_tuples().into_iter().rev() {
                    self.staging.push_front(t);
                }
                false
            }
        }
    }

    /// Flush as many full pages as the buffer accepts.
    pub fn pump(&mut self) {
        while self.staging.len() >= self.cap {
            if !self.flush_one(false) {
                return;
            }
        }
    }

    /// Flush everything and close the stream; `false` if the buffer is
    /// still full (retry next quantum).
    pub fn finish(&mut self) -> bool {
        while !self.staging.is_empty() {
            if !self.flush_one(true) {
                return false;
            }
        }
        if !self.closed {
            self.out.close();
            self.parent.activate();
            self.closed = true;
        }
        true
    }
}

/// Input side of a task.
pub struct Intake {
    buf: Arc<ExchangeBuffer>,
    current: VecDeque<Tuple>,
}

impl Intake {
    /// Wrap a buffer.
    pub fn new(buf: Arc<ExchangeBuffer>) -> Self {
        Self { buf, current: VecDeque::new() }
    }

    /// Next available tuple, if any.
    pub fn next(&mut self) -> Option<Tuple> {
        loop {
            if let Some(t) = self.current.pop_front() {
                return Some(t);
            }
            match self.buf.try_pop() {
                Some(b) => self.current = b.into_tuples().into(),
                None => return None,
            }
        }
    }

    /// True when the producer closed and everything was consumed.
    pub fn finished(&self) -> bool {
        self.current.is_empty() && self.buf.is_finished()
    }
}

/// Compile a plan into tasks and enqueue the leaves (bottom-up activation
/// for everything else).
pub fn compile_and_launch(engine: &Arc<StagedEngine>, plan: &PhysicalPlan, ctl: Arc<QueryCtl>) {
    let cfg = engine.config().clone();
    let root_buf = ExchangeBuffer::new(cfg.buffer_depth);
    let send_act = engine.make_activator();
    send_act.park(
        engine.stage_id(StageKind::Send),
        TaskPacket {
            ctl: Arc::clone(&ctl),
            task: Box::new(SendTask {
                input: Intake::new(Arc::clone(&root_buf)),
                ctl: Arc::clone(&ctl),
            }),
        },
    );
    build(engine, plan, root_buf, Vec::new(), send_act, ctl, &cfg);
}

/// The public compiler entry point: build the task graph for `plan` and
/// launch its leaves (an alias of the crate-private `compile_and_launch`).
pub fn compile(engine: &Arc<StagedEngine>, plan: &PhysicalPlan, ctl: Arc<QueryCtl>) {
    compile_and_launch(engine, plan, ctl)
}

#[allow(clippy::too_many_arguments)]
fn build(
    engine: &Arc<StagedEngine>,
    plan: &PhysicalPlan,
    out: Arc<ExchangeBuffer>,
    transforms: Vec<Transform>,
    parent: Arc<Activator>,
    ctl: Arc<QueryCtl>,
    cfg: &EngineConfig,
) {
    let ctx = engine.ctx().clone();
    match plan {
        // Fused per-tuple operators: no stage of their own.
        PhysicalPlan::Filter { input, predicate } => {
            let mut ts = vec![Transform::Filter(predicate.clone())];
            ts.extend(transforms);
            build(engine, input, out, ts, parent, ctl, cfg);
        }
        PhysicalPlan::Project { input, exprs, .. } => {
            let mut ts = vec![Transform::Project(exprs.clone())];
            ts.extend(transforms);
            build(engine, input, out, ts, parent, ctl, cfg);
        }
        PhysicalPlan::Limit { input, n } => {
            let mut ts = vec![Transform::Limit(Arc::new(AtomicI64::new(*n as i64)))];
            ts.extend(transforms);
            build(engine, input, out, ts, parent, ctl, cfg);
        }
        PhysicalPlan::SeqScan { table, predicate } => {
            let mut ts = Vec::new();
            if let Some(p) = predicate {
                ts.push(Transform::Filter(p.clone()));
            }
            ts.extend(transforms);
            let emitter = Emitter::new(out, parent, cfg.batch_capacity);
            if cfg.shared_scans {
                let sub = Subscriber::new(emitter, ts, Arc::clone(&ctl));
                sharing::subscribe(engine, table, sub);
            } else {
                let task = ScanTask {
                    ctx,
                    scan: table.heap.scan(),
                    transforms: ts,
                    emitter,
                    input_done: false,
                };
                engine.enqueue(StageKind::FScan, TaskPacket { ctl, task: Box::new(task) });
            }
        }
        PhysicalPlan::PartitionScan { table, partition, predicate } => {
            // A partial scan: one partition, one fscan packet. Partition
            // pipelines are never shared — each belongs to exactly one
            // Exchange (or is already pruned to a single partition).
            let mut ts = Vec::new();
            if let Some(p) = predicate {
                ts.push(Transform::Filter(p.clone()));
            }
            ts.extend(transforms);
            let task = ScanTask {
                ctx,
                scan: table.heap.scan_partition(*partition),
                transforms: ts,
                emitter: Emitter::new(out, parent, cfg.batch_capacity),
                input_done: false,
            };
            engine.enqueue(StageKind::FScan, TaskPacket { ctl, task: Box::new(task) });
        }
        PhysicalPlan::Exchange { inputs } => {
            // N independent partial pipelines converge at one union task on
            // the merge stage; the first page from any child activates it.
            fan_in(engine, inputs, out, parent, ctl, cfg, |intakes, emitter| {
                Box::new(UnionTask { inputs: intakes, transforms, emitter })
            });
        }
        PhysicalPlan::MergeAggregate { inputs, group_by_len, aggs } => {
            // Partial-aggregate pipelines (each a full fscan→filter→agg
            // chain) converge at the combining task on the merge stage.
            fan_in(engine, inputs, out, parent, ctl, cfg, |intakes, emitter| {
                Box::new(MergeAggTask {
                    inputs: intakes,
                    merger: Some(AggMerger::new(*group_by_len, aggs.clone())),
                    results: None,
                    pos: 0,
                    transforms,
                    emitter,
                })
            });
        }
        PhysicalPlan::IndexScan { table, index, lo, hi, predicate } => {
            let mut ts = Vec::new();
            if let Some(p) = predicate {
                ts.push(Transform::Filter(p.clone()));
            }
            ts.extend(transforms);
            let task = IndexScanTask {
                ctx,
                table: Arc::clone(table),
                index: Arc::clone(index),
                lo: *lo,
                hi: *hi,
                rids: None,
                pos: 0,
                transforms: ts,
                emitter: Emitter::new(out, parent, cfg.batch_capacity),
            };
            engine.enqueue(StageKind::IScan, TaskPacket { ctl, task: Box::new(task) });
        }
        PhysicalPlan::Sort { input, keys } => {
            let in_buf = ExchangeBuffer::new(cfg.buffer_depth);
            let act = engine.make_activator();
            let task = SortTask {
                input: Intake::new(Arc::clone(&in_buf)),
                keys: keys.clone(),
                rows: Vec::new(),
                sorted: false,
                pos: 0,
                transforms,
                emitter: Emitter::new(out, parent, cfg.batch_capacity),
            };
            act.park(
                engine.stage_id(StageKind::Sort),
                TaskPacket { ctl: Arc::clone(&ctl), task: Box::new(task) },
            );
            build(engine, input, in_buf, Vec::new(), act, ctl, cfg);
        }
        PhysicalPlan::HashAggregate { input, group_by, aggs } => {
            let in_buf = ExchangeBuffer::new(cfg.buffer_depth);
            let act = engine.make_activator();
            let task = AggTask {
                input: Intake::new(Arc::clone(&in_buf)),
                group_by: group_by.clone(),
                aggs: aggs.clone(),
                groups: Vec::new(),
                index: HashMap::new(),
                saw_row: false,
                results: None,
                pos: 0,
                transforms,
                emitter: Emitter::new(out, parent, cfg.batch_capacity),
            };
            act.park(
                engine.stage_id(StageKind::Aggr),
                TaskPacket { ctl: Arc::clone(&ctl), task: Box::new(task) },
            );
            build(engine, input, in_buf, Vec::new(), act, ctl, cfg);
        }
        PhysicalPlan::Distinct { input } => {
            let in_buf = ExchangeBuffer::new(cfg.buffer_depth);
            let act = engine.make_activator();
            let task = DistinctTask {
                input: Intake::new(Arc::clone(&in_buf)),
                seen: HashSet::new(),
                transforms,
                emitter: Emitter::new(out, parent, cfg.batch_capacity),
            };
            act.park(
                engine.stage_id(StageKind::Aggr),
                TaskPacket { ctl: Arc::clone(&ctl), task: Box::new(task) },
            );
            build(engine, input, in_buf, Vec::new(), act, ctl, cfg);
        }
        PhysicalPlan::HashJoin { left, right, keys, residual } => {
            let build_buf = ExchangeBuffer::new(cfg.buffer_depth);
            let probe_buf = ExchangeBuffer::new(cfg.buffer_depth);
            let act = engine.make_activator();
            let task = HashJoinTask {
                build: Intake::new(Arc::clone(&build_buf)),
                probe: Intake::new(Arc::clone(&probe_buf)),
                building: true,
                keys: keys.clone(),
                residual: residual.clone(),
                table: HashMap::new(),
                pending: VecDeque::new(),
                transforms,
                emitter: Emitter::new(out, parent, cfg.batch_capacity),
            };
            act.park(
                engine.stage_id(StageKind::Join),
                TaskPacket { ctl: Arc::clone(&ctl), task: Box::new(task) },
            );
            build(engine, left, build_buf, Vec::new(), Arc::clone(&act), Arc::clone(&ctl), cfg);
            build(engine, right, probe_buf, Vec::new(), act, ctl, cfg);
        }
        PhysicalPlan::MergeJoin { left, right, keys, residual } => {
            let lbuf = ExchangeBuffer::new(cfg.buffer_depth);
            let rbuf = ExchangeBuffer::new(cfg.buffer_depth);
            let act = engine.make_activator();
            let task = MergeJoinTask {
                left: Intake::new(Arc::clone(&lbuf)),
                right: Intake::new(Arc::clone(&rbuf)),
                keys: keys.clone(),
                residual: residual.clone(),
                lrows: Vec::new(),
                rrows: Vec::new(),
                output: None,
                pos: 0,
                transforms,
                emitter: Emitter::new(out, parent, cfg.batch_capacity),
            };
            act.park(
                engine.stage_id(StageKind::Join),
                TaskPacket { ctl: Arc::clone(&ctl), task: Box::new(task) },
            );
            build(engine, left, lbuf, Vec::new(), Arc::clone(&act), Arc::clone(&ctl), cfg);
            build(engine, right, rbuf, Vec::new(), act, ctl, cfg);
        }
        PhysicalPlan::NestedLoopJoin { left, right, predicate } => {
            let lbuf = ExchangeBuffer::new(cfg.buffer_depth);
            let rbuf = ExchangeBuffer::new(cfg.buffer_depth);
            let act = engine.make_activator();
            let task = NestedLoopTask {
                left: Intake::new(Arc::clone(&lbuf)),
                right: Intake::new(Arc::clone(&rbuf)),
                predicate: predicate.clone(),
                lrows: Vec::new(),
                rrows: Vec::new(),
                gathered: false,
                i: 0,
                j: 0,
                transforms,
                emitter: Emitter::new(out, parent, cfg.batch_capacity),
            };
            act.park(
                engine.stage_id(StageKind::Join),
                TaskPacket { ctl: Arc::clone(&ctl), task: Box::new(task) },
            );
            build(engine, left, lbuf, Vec::new(), Arc::clone(&act), Arc::clone(&ctl), cfg);
            build(engine, right, rbuf, Vec::new(), act, ctl, cfg);
        }
    }
}

/// Shared fan-in wiring for the merge-stage tasks: one exchange buffer +
/// intake per partial pipeline, the convergence task parked on the merge
/// stage behind a single activator (first page from any child wakes it),
/// then every child pipeline built against its buffer.
fn fan_in(
    engine: &Arc<StagedEngine>,
    inputs: &[PhysicalPlan],
    out: Arc<ExchangeBuffer>,
    parent: Arc<Activator>,
    ctl: Arc<QueryCtl>,
    cfg: &EngineConfig,
    make_task: impl FnOnce(Vec<Intake>, Emitter) -> Box<dyn OperatorTask>,
) {
    let act = engine.make_activator();
    let mut intakes = Vec::with_capacity(inputs.len());
    let mut bufs = Vec::with_capacity(inputs.len());
    for _ in inputs {
        let b = ExchangeBuffer::new(cfg.buffer_depth);
        intakes.push(Intake::new(Arc::clone(&b)));
        bufs.push(b);
    }
    let task = make_task(intakes, Emitter::new(out, parent, cfg.batch_capacity));
    act.park(engine.stage_id(StageKind::Merge), TaskPacket { ctl: Arc::clone(&ctl), task });
    for (input, buf) in inputs.iter().zip(bufs) {
        build(engine, input, buf, Vec::new(), Arc::clone(&act), Arc::clone(&ctl), cfg);
    }
}

/// Emit through the transform chain; returns `Ok(true)` if a tuple reached
/// the emitter.
fn emit_transformed(
    emitter: &mut Emitter,
    transforms: &[Transform],
    t: Tuple,
) -> EngineResult<bool> {
    match apply_transforms(transforms, t)? {
        Some(t) => {
            emitter.emit(t);
            Ok(true)
        }
        None => Ok(false),
    }
}

// ---------------------------------------------------------------- scans --

/// Sequential scan task, generic over the row source so it serves both
/// whole-table scans ([`staged_storage::partition::PartitionedScan`]) and
/// single-partition partial scans ([`staged_storage::heap::HeapScan`]).
pub(super) struct ScanTask<S> {
    pub ctx: ExecContext,
    pub scan: S,
    pub transforms: Vec<Transform>,
    pub emitter: Emitter,
    pub input_done: bool,
}

impl<S: Iterator<Item = StorageResult<(Rid, Tuple)>> + Send> OperatorTask for ScanTask<S> {
    fn step(&mut self, quota: usize) -> EngineResult<StepResult> {
        let mut produced = 0usize;
        while produced < quota {
            if self.input_done {
                return if self.emitter.finish() {
                    Ok(StepResult::Done)
                } else {
                    Ok(StepResult::Blocked)
                };
            }
            if !self.emitter.ready() {
                return Ok(if produced > 0 { StepResult::Working } else { StepResult::Blocked });
            }
            match self.scan.next() {
                Some(item) => {
                    let (_, t) = item?;
                    self.ctx.note_page_ref();
                    emit_transformed(&mut self.emitter, &self.transforms, t)?;
                    produced += 1;
                }
                None => self.input_done = true,
            }
        }
        Ok(StepResult::Working)
    }
}

pub(super) struct IndexScanTask {
    pub ctx: ExecContext,
    pub table: Arc<TableInfo>,
    pub index: Arc<IndexInfo>,
    pub lo: Option<i64>,
    pub hi: Option<i64>,
    pub rids: Option<Vec<staged_storage::Rid>>,
    pub pos: usize,
    pub transforms: Vec<Transform>,
    pub emitter: Emitter,
}

impl OperatorTask for IndexScanTask {
    fn step(&mut self, quota: usize) -> EngineResult<StepResult> {
        if self.rids.is_none() {
            // A probe pinning the hash-key column only needs that
            // partition's tree.
            let pruned = self.table.pruned_partition(self.index.column, self.lo, self.hi);
            let pairs = self.index.range_in(pruned, self.lo, self.hi)?;
            self.ctx.note_page_ref();
            self.rids = Some(pairs.into_iter().map(|(_, r)| r).collect());
        }
        let rids = self.rids.as_ref().expect("materialized above");
        let mut produced = 0usize;
        while produced < quota {
            if self.pos >= rids.len() {
                return if self.emitter.finish() {
                    Ok(StepResult::Done)
                } else {
                    Ok(StepResult::Blocked)
                };
            }
            if !self.emitter.ready() {
                return Ok(if produced > 0 { StepResult::Working } else { StepResult::Blocked });
            }
            let t = self.table.heap.get(rids[self.pos])?;
            self.ctx.note_page_ref();
            self.pos += 1;
            emit_transformed(&mut self.emitter, &self.transforms, t)?;
            produced += 1;
        }
        Ok(StepResult::Working)
    }
}

// ----------------------------------------------------------------- sort --

pub(super) struct SortTask {
    pub input: Intake,
    pub keys: Vec<(Expr, bool)>,
    pub rows: Vec<Tuple>,
    pub sorted: bool,
    pub pos: usize,
    pub transforms: Vec<Transform>,
    pub emitter: Emitter,
}

impl OperatorTask for SortTask {
    fn step(&mut self, quota: usize) -> EngineResult<StepResult> {
        if !self.sorted {
            let mut consumed = 0usize;
            while consumed < quota {
                match self.input.next() {
                    Some(t) => {
                        self.rows.push(t);
                        consumed += 1;
                    }
                    None if self.input.finished() => {
                        sort_tuples(&mut self.rows, &self.keys)?;
                        self.sorted = true;
                        break;
                    }
                    None => {
                        return Ok(if consumed > 0 {
                            StepResult::Working
                        } else {
                            StepResult::Blocked
                        })
                    }
                }
            }
            if !self.sorted {
                return Ok(StepResult::Working);
            }
        }
        drain_materialized(&mut self.pos, &self.rows, &self.transforms, &mut self.emitter, quota)
    }
}

/// Shared drain phase: emit `rows[pos..]` through transforms.
fn drain_materialized(
    pos: &mut usize,
    rows: &[Tuple],
    transforms: &[Transform],
    emitter: &mut Emitter,
    quota: usize,
) -> EngineResult<StepResult> {
    let mut produced = 0usize;
    while produced < quota {
        if *pos >= rows.len() {
            return if emitter.finish() { Ok(StepResult::Done) } else { Ok(StepResult::Blocked) };
        }
        if !emitter.ready() {
            return Ok(if produced > 0 { StepResult::Working } else { StepResult::Blocked });
        }
        emit_transformed(emitter, transforms, rows[*pos].clone())?;
        *pos += 1;
        produced += 1;
    }
    Ok(StepResult::Working)
}

// ---------------------------------------------------------------- merge --

/// Bag union of N partial pipelines (the staged `Exchange`): forwards
/// whatever any input has ready, so fast partitions never wait for slow
/// ones.
pub(super) struct UnionTask {
    pub inputs: Vec<Intake>,
    pub transforms: Vec<Transform>,
    pub emitter: Emitter,
}

impl OperatorTask for UnionTask {
    fn step(&mut self, quota: usize) -> EngineResult<StepResult> {
        let mut moved = 0usize;
        loop {
            let mut any = false;
            for i in 0..self.inputs.len() {
                loop {
                    if moved >= quota {
                        return Ok(StepResult::Working);
                    }
                    if !self.emitter.ready() {
                        return Ok(if moved > 0 {
                            StepResult::Working
                        } else {
                            StepResult::Blocked
                        });
                    }
                    match self.inputs[i].next() {
                        Some(t) => {
                            emit_transformed(&mut self.emitter, &self.transforms, t)?;
                            moved += 1;
                            any = true;
                        }
                        None => break,
                    }
                }
            }
            if !any {
                if self.inputs.iter().all(Intake::finished) {
                    return if self.emitter.finish() {
                        Ok(StepResult::Done)
                    } else {
                        Ok(StepResult::Blocked)
                    };
                }
                return Ok(if moved > 0 { StepResult::Working } else { StepResult::Blocked });
            }
        }
    }
}

/// Combine N partial-aggregation pipelines into final aggregate rows (the
/// staged `MergeAggregate`): absorbs partial rows as they arrive from any
/// partition, finishes once every input closes.
pub(super) struct MergeAggTask {
    pub inputs: Vec<Intake>,
    pub merger: Option<AggMerger>,
    pub results: Option<Vec<Tuple>>,
    pub pos: usize,
    pub transforms: Vec<Transform>,
    pub emitter: Emitter,
}

impl OperatorTask for MergeAggTask {
    fn step(&mut self, quota: usize) -> EngineResult<StepResult> {
        if self.results.is_none() {
            let merger = self.merger.as_mut().expect("merger present until finish");
            let mut consumed = 0usize;
            loop {
                let mut any = false;
                for i in 0..self.inputs.len() {
                    loop {
                        if consumed >= quota {
                            return Ok(StepResult::Working);
                        }
                        match self.inputs[i].next() {
                            Some(t) => {
                                merger.absorb(&t)?;
                                consumed += 1;
                                any = true;
                            }
                            None => break,
                        }
                    }
                }
                if !any {
                    if self.inputs.iter().all(Intake::finished) {
                        break;
                    }
                    return Ok(if consumed > 0 {
                        StepResult::Working
                    } else {
                        StepResult::Blocked
                    });
                }
            }
            let merger = self.merger.take().expect("merger present until finish");
            self.results = Some(merger.finish());
        }
        let rows = self.results.as_ref().expect("computed above");
        drain_materialized(&mut self.pos, rows, &self.transforms, &mut self.emitter, quota)
    }
}

// ------------------------------------------------------------ aggregate --

pub(super) struct AggTask {
    pub input: Intake,
    pub group_by: Vec<Expr>,
    pub aggs: Vec<AggSpec>,
    pub groups: Vec<(Vec<Value>, Vec<crate::agg::Accumulator>)>,
    pub index: HashMap<Vec<u8>, usize>,
    pub saw_row: bool,
    pub results: Option<Vec<Tuple>>,
    pub pos: usize,
    pub transforms: Vec<Transform>,
    pub emitter: Emitter,
}

impl AggTask {
    fn absorb(&mut self, t: &Tuple) -> EngineResult<()> {
        self.saw_row = true;
        let mut key_bytes = Vec::new();
        let mut key_vals = Vec::with_capacity(self.group_by.len());
        for g in &self.group_by {
            let v = eval(g, t)?;
            v.encode(&mut key_bytes);
            key_vals.push(v);
        }
        let slot = match self.index.get(&key_bytes) {
            Some(&s) => s,
            None => {
                let accs = self.aggs.iter().map(crate::agg::Accumulator::new).collect();
                self.groups.push((key_vals, accs));
                self.index.insert(key_bytes, self.groups.len() - 1);
                self.groups.len() - 1
            }
        };
        for (k, spec) in self.aggs.iter().enumerate() {
            let acc = &mut self.groups[slot].1[k];
            match &spec.arg {
                Some(a) => acc.update(&eval(a, t)?)?,
                None => acc.update_star(),
            }
        }
        Ok(())
    }
}

impl OperatorTask for AggTask {
    fn step(&mut self, quota: usize) -> EngineResult<StepResult> {
        if self.results.is_none() {
            let mut consumed = 0usize;
            loop {
                if consumed >= quota {
                    return Ok(StepResult::Working);
                }
                match self.input.next() {
                    Some(t) => {
                        self.absorb(&t)?;
                        consumed += 1;
                    }
                    None if self.input.finished() => break,
                    None => {
                        return Ok(if consumed > 0 {
                            StepResult::Working
                        } else {
                            StepResult::Blocked
                        })
                    }
                }
            }
            if !self.saw_row && self.group_by.is_empty() {
                let accs: Vec<crate::agg::Accumulator> =
                    self.aggs.iter().map(crate::agg::Accumulator::new).collect();
                self.groups.push((Vec::new(), accs));
            }
            let results = std::mem::take(&mut self.groups)
                .into_iter()
                .map(|(mut vals, accs)| {
                    vals.extend(accs.iter().map(crate::agg::Accumulator::finish));
                    Tuple::new(vals)
                })
                .collect();
            self.results = Some(results);
        }
        let rows = self.results.as_ref().expect("computed above");
        drain_materialized(&mut self.pos, rows, &self.transforms, &mut self.emitter, quota)
    }
}

pub(super) struct DistinctTask {
    pub input: Intake,
    pub seen: HashSet<Vec<u8>>,
    pub transforms: Vec<Transform>,
    pub emitter: Emitter,
}

impl OperatorTask for DistinctTask {
    fn step(&mut self, quota: usize) -> EngineResult<StepResult> {
        let mut moved = 0usize;
        while moved < quota {
            if !self.emitter.ready() {
                return Ok(if moved > 0 { StepResult::Working } else { StepResult::Blocked });
            }
            match self.input.next() {
                Some(t) => {
                    moved += 1;
                    if self.seen.insert(t.encode()) {
                        emit_transformed(&mut self.emitter, &self.transforms, t)?;
                    }
                }
                None if self.input.finished() => {
                    return if self.emitter.finish() {
                        Ok(StepResult::Done)
                    } else {
                        Ok(StepResult::Blocked)
                    };
                }
                None => {
                    return Ok(if moved > 0 { StepResult::Working } else { StepResult::Blocked })
                }
            }
        }
        Ok(StepResult::Working)
    }
}

// ---------------------------------------------------------------- joins --

fn encode_key(exprs: &[&Expr], tuple: &Tuple) -> EngineResult<Option<Vec<u8>>> {
    let mut out = Vec::new();
    for e in exprs {
        let v = eval(e, tuple)?;
        if v.is_null() {
            return Ok(None);
        }
        match v {
            Value::Int(i) => Value::Float(i as f64).encode(&mut out),
            other => other.encode(&mut out),
        }
    }
    Ok(Some(out))
}

pub(super) struct HashJoinTask {
    pub build: Intake,
    pub probe: Intake,
    pub building: bool,
    pub keys: Vec<(Expr, Expr)>,
    pub residual: Option<Expr>,
    pub table: HashMap<Vec<u8>, Vec<Tuple>>,
    pub pending: VecDeque<Tuple>,
    pub transforms: Vec<Transform>,
    pub emitter: Emitter,
}

impl OperatorTask for HashJoinTask {
    fn step(&mut self, quota: usize) -> EngineResult<StepResult> {
        let mut work = 0usize;
        if self.building {
            let key_exprs: Vec<&Expr> = self.keys.iter().map(|(l, _)| l).collect();
            loop {
                if work >= quota {
                    return Ok(StepResult::Working);
                }
                match self.build.next() {
                    Some(t) => {
                        work += 1;
                        if let Some(k) = encode_key(&key_exprs, &t)? {
                            self.table.entry(k).or_default().push(t);
                        }
                    }
                    None if self.build.finished() => {
                        self.building = false;
                        break;
                    }
                    None => {
                        return Ok(if work > 0 { StepResult::Working } else { StepResult::Blocked })
                    }
                }
            }
        }
        // Probe phase.
        let key_exprs: Vec<Expr> = self.keys.iter().map(|(_, r)| r.clone()).collect();
        while work < quota {
            if !self.emitter.ready() {
                return Ok(if work > 0 { StepResult::Working } else { StepResult::Blocked });
            }
            if let Some(j) = self.pending.pop_front() {
                emit_transformed(&mut self.emitter, &self.transforms, j)?;
                work += 1;
                continue;
            }
            match self.probe.next() {
                Some(probe) => {
                    work += 1;
                    let refs: Vec<&Expr> = key_exprs.iter().collect();
                    let Some(k) = encode_key(&refs, &probe)? else { continue };
                    if let Some(matches) = self.table.get(&k) {
                        for m in matches {
                            let joined = m.concat(&probe);
                            match &self.residual {
                                Some(p) if !eval_predicate(p, &joined)? => continue,
                                _ => self.pending.push_back(joined),
                            }
                        }
                    }
                }
                None if self.probe.finished() => {
                    return if self.emitter.finish() {
                        Ok(StepResult::Done)
                    } else {
                        Ok(StepResult::Blocked)
                    };
                }
                None => {
                    return Ok(if work > 0 { StepResult::Working } else { StepResult::Blocked })
                }
            }
        }
        Ok(StepResult::Working)
    }
}

pub(super) struct MergeJoinTask {
    pub left: Intake,
    pub right: Intake,
    pub keys: (Expr, Expr),
    pub residual: Option<Expr>,
    pub lrows: Vec<Tuple>,
    pub rrows: Vec<Tuple>,
    pub output: Option<Vec<Tuple>>,
    pub pos: usize,
    pub transforms: Vec<Transform>,
    pub emitter: Emitter,
}

impl OperatorTask for MergeJoinTask {
    fn step(&mut self, quota: usize) -> EngineResult<StepResult> {
        if self.output.is_none() {
            let mut moved = 0usize;
            while moved < quota {
                if let Some(t) = self.left.next() {
                    self.lrows.push(t);
                    moved += 1;
                    continue;
                }
                if let Some(t) = self.right.next() {
                    self.rrows.push(t);
                    moved += 1;
                    continue;
                }
                if self.left.finished() && self.right.finished() {
                    break;
                }
                return Ok(if moved > 0 { StepResult::Working } else { StepResult::Blocked });
            }
            if !(self.left.finished() && self.right.finished()) {
                return Ok(StepResult::Working);
            }
            self.output = Some(merge_join(
                std::mem::take(&mut self.lrows),
                std::mem::take(&mut self.rrows),
                &self.keys,
                &self.residual,
            )?);
        }
        let rows = self.output.as_ref().expect("computed above");
        drain_materialized(&mut self.pos, rows, &self.transforms, &mut self.emitter, quota)
    }
}

/// Sort-merge two materialized inputs (shared with the Volcano semantics).
fn merge_join(
    lrows: Vec<Tuple>,
    rrows: Vec<Tuple>,
    keys: &(Expr, Expr),
    residual: &Option<Expr>,
) -> EngineResult<Vec<Tuple>> {
    let mut l: Vec<(Value, Tuple)> = Vec::with_capacity(lrows.len());
    for t in lrows {
        let k = eval(&keys.0, &t)?;
        if !k.is_null() {
            l.push((k, t));
        }
    }
    let mut r: Vec<(Value, Tuple)> = Vec::with_capacity(rrows.len());
    for t in rrows {
        let k = eval(&keys.1, &t)?;
        if !k.is_null() {
            r.push((k, t));
        }
    }
    l.sort_by(|a, b| a.0.total_cmp(&b.0));
    r.sort_by(|a, b| a.0.total_cmp(&b.0));
    let mut out = Vec::new();
    let (mut i, mut j) = (0, 0);
    while i < l.len() && j < r.len() {
        match l[i].0.sql_cmp(&r[j].0) {
            Some(std::cmp::Ordering::Less) => i += 1,
            Some(std::cmp::Ordering::Greater) => j += 1,
            Some(std::cmp::Ordering::Equal) => {
                let key = l[i].0.clone();
                let i0 = i;
                while i < l.len() && l[i].0.sql_cmp(&key) == Some(std::cmp::Ordering::Equal) {
                    i += 1;
                }
                let j0 = j;
                while j < r.len() && r[j].0.sql_cmp(&key) == Some(std::cmp::Ordering::Equal) {
                    j += 1;
                }
                for (_, lt) in &l[i0..i] {
                    for (_, rt) in &r[j0..j] {
                        let joined = lt.concat(rt);
                        match residual {
                            Some(p) if !eval_predicate(p, &joined)? => continue,
                            _ => out.push(joined),
                        }
                    }
                }
            }
            None => return Err(EngineError::Eval("incomparable merge-join keys".into())),
        }
    }
    Ok(out)
}

pub(super) struct NestedLoopTask {
    pub left: Intake,
    pub right: Intake,
    pub predicate: Option<Expr>,
    pub lrows: Vec<Tuple>,
    pub rrows: Vec<Tuple>,
    pub gathered: bool,
    pub i: usize,
    pub j: usize,
    pub transforms: Vec<Transform>,
    pub emitter: Emitter,
}

impl OperatorTask for NestedLoopTask {
    fn step(&mut self, quota: usize) -> EngineResult<StepResult> {
        if !self.gathered {
            let mut moved = 0usize;
            while moved < quota {
                if let Some(t) = self.left.next() {
                    self.lrows.push(t);
                    moved += 1;
                    continue;
                }
                if let Some(t) = self.right.next() {
                    self.rrows.push(t);
                    moved += 1;
                    continue;
                }
                if self.left.finished() && self.right.finished() {
                    self.gathered = true;
                    break;
                }
                return Ok(if moved > 0 { StepResult::Working } else { StepResult::Blocked });
            }
            if !self.gathered {
                return Ok(StepResult::Working);
            }
        }
        if self.rrows.is_empty() {
            // Inner relation empty: no output at all.
            self.i = self.lrows.len();
        }
        let mut produced = 0usize;
        while produced < quota {
            if self.i >= self.lrows.len() {
                return if self.emitter.finish() {
                    Ok(StepResult::Done)
                } else {
                    Ok(StepResult::Blocked)
                };
            }
            if !self.emitter.ready() {
                return Ok(if produced > 0 { StepResult::Working } else { StepResult::Blocked });
            }
            let joined = self.lrows[self.i].concat(&self.rrows[self.j]);
            // Advance the (i, j) cursor.
            self.j += 1;
            if self.j >= self.rrows.len() {
                self.j = 0;
                self.i += 1;
            }
            produced += 1;
            match &self.predicate {
                Some(p) if !eval_predicate(p, &joined)? => continue,
                _ => {
                    emit_transformed(&mut self.emitter, &self.transforms, joined)?;
                }
            }
        }
        Ok(StepResult::Working)
    }
}

// ----------------------------------------------------------------- send --

pub(super) struct SendTask {
    pub input: Intake,
    pub ctl: Arc<QueryCtl>,
}

impl OperatorTask for SendTask {
    fn step(&mut self, quota: usize) -> EngineResult<StepResult> {
        let mut moved = 0usize;
        while moved < quota {
            match self.input.next() {
                Some(t) => {
                    self.ctl.emit(t);
                    moved += 1;
                }
                None if self.input.finished() => return Ok(StepResult::Done),
                None => {
                    return Ok(if moved > 0 { StepResult::Working } else { StepResult::Blocked })
                }
            }
        }
        Ok(StepResult::Working)
    }
}
