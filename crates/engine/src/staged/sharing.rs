//! Shared (cooperative) table scans — run-time multi-query optimization.
//!
//! Paper §5.4: "A query that arrives at a stage and finds an ongoing
//! computation of a common subexpression, can reuse those results." The
//! fscan stage keeps a registry of in-progress table scans; a newly
//! arriving scan *attaches* to the ongoing one instead of starting its own.
//! The driver reads pages **circularly**: a subscriber that attaches
//! mid-scan receives pages from the current position to the end and then
//! wraps around, so every subscriber sees every page exactly once while the
//! table is read from disk once per convoy.

use super::tasks::Emitter;
use super::{OperatorTask, QueryCtl, StageKind, StagedEngine, StepResult, TaskPacket, Transform};
use crate::context::ExecContext;
use crate::error::EngineResult;
use parking_lot::Mutex;
use staged_storage::catalog::TableInfo;
use staged_storage::page::SlottedPage;
use staged_storage::{PageId, Tuple};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Counters for the shared-scan ablation (A4).
#[derive(Debug, Default)]
pub struct SharingStats {
    /// Scan convoys started (each reads the table once per lap).
    pub groups_started: AtomicU64,
    /// Scans that attached to an in-progress convoy.
    pub attaches: AtomicU64,
    /// Pages physically read by drivers.
    pub pages_read: AtomicU64,
}

/// One query's membership in a scan convoy.
pub struct Subscriber {
    emitter: Emitter,
    transforms: Vec<Transform>,
    ctl: Arc<QueryCtl>,
    /// Pages accepted so far.
    accepted: usize,
    /// Delivery sequence at which this subscriber joined.
    joined_seq: u64,
    /// All pages delivered; flushing the tail of the emitter remains.
    completing: bool,
}

impl Subscriber {
    /// Package a query's scan into a convoy subscription.
    pub fn new(emitter: Emitter, transforms: Vec<Transform>, ctl: Arc<QueryCtl>) -> Self {
        Self { emitter, transforms, ctl, accepted: 0, joined_seq: 0, completing: false }
    }
}

struct GroupInner {
    pages: Vec<PageId>,
    /// Monotonic delivery counter; page index = seq % pages.len().
    seq: u64,
    subs: Vec<Subscriber>,
}

/// An in-progress shared scan of one table.
pub struct ScanGroup {
    table: Arc<TableInfo>,
    inner: Mutex<GroupInner>,
}

/// Registry of active scan convoys, owned by the engine.
pub struct SharedScanRegistry {
    groups: Mutex<HashMap<u32, Arc<ScanGroup>>>,
    /// Counters.
    pub stats: SharingStats,
}

impl SharedScanRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self { groups: Mutex::new(HashMap::new()), stats: SharingStats::default() }
    }
}

impl Default for SharedScanRegistry {
    fn default() -> Self {
        Self::new()
    }
}

/// Attach `sub` to the table's convoy, starting a driver task if none runs.
pub fn subscribe(engine: &Arc<StagedEngine>, table: &Arc<TableInfo>, mut sub: Subscriber) {
    let registry = Arc::clone(&engine.registry);
    let mut groups = registry.groups.lock();
    if let Some(group) = groups.get(&table.id.0) {
        let mut inner = group.inner.lock();
        sub.joined_seq = inner.seq;
        if inner.pages.is_empty() {
            sub.completing = true;
        }
        inner.subs.push(sub);
        registry.stats.attaches.fetch_add(1, Ordering::Relaxed);
        return;
    }
    // New convoy: this query's scan drives it.
    let pages = table.heap.page_ids();
    if pages.is_empty() {
        sub.completing = true;
    }
    let group = Arc::new(ScanGroup {
        table: Arc::clone(table),
        inner: Mutex::new(GroupInner { pages, seq: 0, subs: vec![sub] }),
    });
    groups.insert(table.id.0, Arc::clone(&group));
    registry.stats.groups_started.fetch_add(1, Ordering::Relaxed);
    drop(groups);
    let driver = DriverTask { group, registry: Arc::clone(&registry), ctx: engine.ctx().clone() };
    engine.enqueue(StageKind::FScan, TaskPacket { ctl: detached_ctl(), task: Box::new(driver) });
}

/// A control block that never cancels: the driver outlives any single
/// query (it serves whoever is subscribed).
fn detached_ctl() -> Arc<QueryCtl> {
    QueryCtl::detached()
}

struct DriverTask {
    group: Arc<ScanGroup>,
    registry: Arc<SharedScanRegistry>,
    ctx: ExecContext,
}

impl DriverTask {
    /// Deliver one page to all eligible subscribers; returns false if any
    /// subscriber is congested (caller should yield).
    fn deliver_one_page(&self) -> EngineResult<DriverProgress> {
        let mut inner = self.group.inner.lock();
        // Drop cancelled queries and finished subscribers.
        inner.subs.retain_mut(|s| {
            if s.ctl.is_cancelled() {
                return false;
            }
            if s.completing {
                // Keep pumping the tail out; drop once fully flushed.
                return !s.emitter.finish();
            }
            true
        });
        if inner.subs.is_empty() {
            // Tear-down must take the locks in the same order as
            // `subscribe` (registry → group) or the two deadlock; release
            // the group lock, reacquire in order, and re-check for a racing
            // late subscriber.
            drop(inner);
            let mut groups = self.registry.groups.lock();
            let inner = self.group.inner.lock();
            return if inner.subs.is_empty() {
                groups.remove(&self.group.table.id.0);
                Ok(DriverProgress::Finished)
            } else {
                Ok(DriverProgress::Delivered) // a subscriber just attached
            };
        }
        let npages = inner.pages.len();
        if npages == 0 {
            // Empty table: all subscribers complete immediately (handled by
            // the retain above on the next call).
            for s in inner.subs.iter_mut() {
                s.completing = true;
            }
            return Ok(DriverProgress::Delivered);
        }
        // All active subscribers must have room for another page of tuples.
        if inner.subs.iter().any(|s| !s.completing && !s.emitter.ready()) {
            return Ok(DriverProgress::Congested);
        }
        let seq = inner.seq;
        let page_id = inner.pages[(seq % npages as u64) as usize];
        inner.seq += 1;
        // Fetch and decode outside the subscriber loop (one physical read).
        let pool = self.ctx.catalog.pool();
        let guard = pool.fetch(page_id)?;
        self.ctx.note_page_ref();
        self.registry.stats.pages_read.fetch_add(1, Ordering::Relaxed);
        let mut tuples: Vec<Tuple> = Vec::new();
        guard.read(|d| -> EngineResult<()> {
            for (_, bytes) in SlottedPage::iter(d) {
                tuples.push(Tuple::decode(bytes)?);
            }
            Ok(())
        })?;
        drop(guard);
        for s in inner.subs.iter_mut() {
            if s.completing || seq < s.joined_seq {
                continue;
            }
            // Batch delivery: an unfiltered subscriber takes the whole
            // page in one extend; a filtering one still seals its staging
            // page once per delivered heap page, not per tuple.
            if s.transforms.is_empty() {
                s.emitter.emit_all(tuples.iter().cloned());
            } else {
                for t in &tuples {
                    match super::apply_transforms(&s.transforms, t.clone()) {
                        Ok(Some(out)) => s.emitter.emit(out),
                        Ok(None) => {}
                        Err(e) => {
                            s.ctl.fail(e);
                            s.completing = true;
                            break;
                        }
                    }
                }
                if !s.completing {
                    s.emitter.pump();
                }
            }
            s.accepted += 1;
            if s.accepted >= npages {
                s.completing = true;
                let _ = s.emitter.finish();
            }
        }
        Ok(DriverProgress::Delivered)
    }
}

enum DriverProgress {
    Delivered,
    Congested,
    Finished,
}

impl OperatorTask for DriverTask {
    fn step(&mut self, quota: usize) -> EngineResult<StepResult> {
        let pages_per_step = (quota / 256).max(1);
        let mut delivered = 0usize;
        for _ in 0..pages_per_step {
            match self.deliver_one_page()? {
                DriverProgress::Finished => return Ok(StepResult::Done),
                DriverProgress::Congested => {
                    return Ok(if delivered > 0 {
                        StepResult::Working
                    } else {
                        StepResult::Blocked
                    })
                }
                DriverProgress::Delivered => delivered += 1,
            }
        }
        Ok(StepResult::Working)
    }
}
