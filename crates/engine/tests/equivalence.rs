//! Differential tests: the staged page-push engine must produce exactly the
//! same rows as the Volcano baseline for every supported query shape.

use staged_engine::context::ExecContext;
use staged_engine::staged::{EngineConfig, StagedEngine};
use staged_engine::volcano;
use staged_planner::{plan_select, PlannerConfig};
use staged_sql::binder::{BindContext, Binder};
use staged_sql::parser::parse_statement;
use staged_sql::Statement;
use staged_storage::{BufferPool, Catalog, Column, DataType, MemDisk, Schema, Tuple, Value};
use std::sync::Arc;

fn setup() -> Arc<Catalog> {
    let pool = BufferPool::new(Arc::new(MemDisk::new()), 1024);
    let cat = Arc::new(Catalog::new(pool));
    let t = cat
        .create_table(
            "t",
            Schema::new(vec![
                Column::new("a", DataType::Int),
                Column::new("grp", DataType::Int),
                Column::new("s", DataType::Str),
                Column::new("v", DataType::Float).nullable(),
            ]),
        )
        .unwrap();
    for i in 0..500i64 {
        let v = if i % 11 == 0 { Value::Null } else { Value::Float((i % 50) as f64 / 2.0) };
        t.heap
            .insert(&Tuple::new(vec![
                Value::Int(i),
                Value::Int(i % 7),
                Value::Str(format!("str{}", i % 23)),
                v,
            ]))
            .unwrap();
    }
    let u = cat
        .create_table(
            "u",
            Schema::new(vec![Column::new("a", DataType::Int), Column::new("w", DataType::Int)]),
        )
        .unwrap();
    for i in 0..80i64 {
        u.heap.insert(&Tuple::new(vec![Value::Int(i * 5), Value::Int(i % 3)])).unwrap();
    }
    cat.create_index("t_a", "t", "a").unwrap();
    cat.analyze_table("t").unwrap();
    cat.analyze_table("u").unwrap();
    cat
}

fn run_both(cat: &Arc<Catalog>, sql: &str, cfg: &EngineConfig) -> (Vec<Tuple>, Vec<Tuple>) {
    let Statement::Select(sel) = parse_statement(sql).unwrap() else { panic!("not a select") };
    let bound = Binder::new(BindContext::new(cat)).bind_select(sel).unwrap();
    let plan = plan_select(&bound, cat, &PlannerConfig::default()).unwrap();
    let ctx = ExecContext::new(Arc::clone(cat));
    let volcano_rows = volcano::run(&plan, &ctx).unwrap();
    let engine = StagedEngine::new(ctx, cfg.clone());
    let staged_rows = engine.execute(&plan).collect().unwrap();
    engine.shutdown();
    (volcano_rows, staged_rows)
}

fn canonical(mut rows: Vec<Tuple>) -> Vec<String> {
    let mut s: Vec<String> = rows.drain(..).map(|t| format!("{t}")).collect();
    s.sort();
    s
}

fn assert_equivalent(sql: &str) {
    let cat = setup();
    let (v, s) = run_both(&cat, sql, &EngineConfig::default());
    let (vn, sn) = (v.len(), s.len());
    assert_eq!(canonical(v), canonical(s), "row mismatch for {sql}");
    assert_eq!(vn, sn);
}

#[test]
fn full_scan() {
    assert_equivalent("SELECT * FROM t");
}

#[test]
fn filtered_scan_and_projection() {
    assert_equivalent("SELECT a, a * 2 FROM t WHERE grp = 3 AND a < 100");
}

#[test]
fn index_point_and_range() {
    assert_equivalent("SELECT * FROM t WHERE a = 123");
    assert_equivalent("SELECT s FROM t WHERE a BETWEEN 10 AND 40");
}

#[test]
fn hash_join_matches() {
    assert_equivalent("SELECT t.a, u.w FROM t, u WHERE t.a = u.a");
}

#[test]
fn non_equi_nested_loop_join() {
    assert_equivalent("SELECT t.a, u.a FROM t, u WHERE t.a < u.a AND u.a < 30 AND t.a > 20");
}

#[test]
fn aggregation_with_group_and_having() {
    assert_equivalent(
        "SELECT grp, COUNT(*), SUM(a), AVG(v), MIN(s), MAX(a) FROM t GROUP BY grp HAVING COUNT(*) > 10",
    );
}

#[test]
fn global_aggregate_without_groups() {
    assert_equivalent("SELECT COUNT(*), SUM(a) FROM t WHERE a < 0");
    assert_equivalent("SELECT COUNT(*), AVG(a) FROM t");
}

#[test]
fn distinct_and_limit() {
    assert_equivalent("SELECT DISTINCT grp FROM t");
    let cat = setup();
    let (v, s) = run_both(&cat, "SELECT a FROM t LIMIT 17", &EngineConfig::default());
    assert_eq!(v.len(), 17);
    assert_eq!(s.len(), 17);
}

#[test]
fn order_by_is_respected_by_both() {
    let cat = setup();
    let (v, s) = run_both(
        &cat,
        "SELECT a FROM t WHERE grp = 1 ORDER BY a DESC LIMIT 5",
        &EngineConfig::default(),
    );
    assert_eq!(canonical(v.clone()), canonical(s.clone()));
    // Exact order (not just multiset) must match for ORDER BY queries.
    let vs: Vec<String> = v.iter().map(|t| t.to_string()).collect();
    let ss: Vec<String> = s.iter().map(|t| t.to_string()).collect();
    assert_eq!(vs, ss);
}

#[test]
fn merge_join_forced_by_config() {
    let cat = setup();
    let Statement::Select(sel) =
        parse_statement("SELECT t.a, u.w FROM t, u WHERE t.a = u.a").unwrap()
    else {
        panic!()
    };
    let bound = Binder::new(BindContext::new(&cat)).bind_select(sel).unwrap();
    let pcfg = PlannerConfig { enable_hash_join: false, ..Default::default() };
    let plan = plan_select(&bound, &cat, &pcfg).unwrap();
    assert!(plan.to_string().contains("MergeJoin"));
    let ctx = ExecContext::new(Arc::clone(&cat));
    let v = volcano::run(&plan, &ctx).unwrap();
    let engine = StagedEngine::new(ctx, EngineConfig::default());
    let s = engine.execute(&plan).collect().unwrap();
    engine.shutdown();
    assert_eq!(canonical(v), canonical(s));
}

#[test]
fn small_exchange_pages_still_correct() {
    let cat = setup();
    let cfg = EngineConfig { batch_capacity: 3, buffer_depth: 2, ..Default::default() };
    let (v, s) = run_both(&cat, "SELECT t.a, u.w FROM t, u WHERE t.a = u.a AND t.grp < 5", &cfg);
    assert_eq!(canonical(v), canonical(s));
}

#[test]
fn shared_scans_disabled_still_correct() {
    let cat = setup();
    let cfg = EngineConfig { shared_scans: false, ..Default::default() };
    let (v, s) = run_both(&cat, "SELECT COUNT(*) FROM t WHERE grp = 2", &cfg);
    assert_eq!(canonical(v), canonical(s));
}

#[test]
fn concurrent_queries_share_one_engine() {
    let cat = setup();
    let ctx = ExecContext::new(Arc::clone(&cat));
    let engine = StagedEngine::new(ctx.clone(), EngineConfig::default());
    let mk_plan = |sql: &str| {
        let Statement::Select(sel) = parse_statement(sql).unwrap() else { panic!() };
        let bound = Binder::new(BindContext::new(&cat)).bind_select(sel).unwrap();
        plan_select(&bound, &cat, &PlannerConfig::default()).unwrap()
    };
    let queries = [
        "SELECT COUNT(*) FROM t",
        "SELECT grp, COUNT(*) FROM t GROUP BY grp",
        "SELECT t.a FROM t, u WHERE t.a = u.a",
        "SELECT MAX(a) FROM t WHERE grp = 4",
    ];
    // Launch all queries concurrently against the same stage set.
    let handles: Vec<_> = queries.iter().map(|q| engine.execute(&mk_plan(q))).collect();
    let expected: Vec<Vec<String>> =
        queries.iter().map(|q| canonical(volcano::run(&mk_plan(q), &ctx).unwrap())).collect();
    for (h, exp) in handles.into_iter().zip(expected) {
        let rows = h.collect().unwrap();
        assert_eq!(canonical(rows), exp);
    }
    // Shared scans should have kicked in for the t-scans.
    assert!(engine.registry.stats.groups_started.load(std::sync::atomic::Ordering::Relaxed) >= 1);
    engine.shutdown();
}

// ------------------------------------------------------- partitioned --
//
// The partition-parallel differential suite: the same Wisconsin-style data
// loaded at 1, 2, 4 and 8 partitions must return identical (sorted) result
// sets from both engines, for every supported query shape. The staged
// engine runs the partial pipelines on real worker threads, so this also
// exercises the merge stage under genuine interleaving.

const WIS_ROWS: i64 = 2000;

/// Deterministic Wisconsin-style rows (no RNG available here):
/// `unique1` = a bijective permutation of 0..n (271 is prime and coprime to
/// the row count), plus the usual small-domain selector columns.
fn wisconsin_like_row(i: i64) -> Tuple {
    let u1 = (i * 271) % WIS_ROWS;
    Tuple::new(vec![
        Value::Int(u1),
        Value::Int(i),
        Value::Int(u1 % 2),
        Value::Int(u1 % 10),
        Value::Int(u1 % 20),
        Value::Str(format!("s{}", u1 % 4)),
    ])
}

fn setup_partitioned(parts: usize, with_index: bool) -> Arc<Catalog> {
    let pool = BufferPool::new(Arc::new(MemDisk::new()), 2048);
    let cat = Arc::new(Catalog::new(pool));
    let w = cat
        .create_table_partitioned(
            "w",
            Schema::new(vec![
                Column::new("unique1", DataType::Int),
                Column::new("unique2", DataType::Int),
                Column::new("two", DataType::Int),
                Column::new("ten", DataType::Int),
                Column::new("twenty", DataType::Int),
                Column::new("s4", DataType::Str),
            ]),
            parts,
            0,
        )
        .unwrap();
    for i in 0..WIS_ROWS {
        w.heap.insert(&wisconsin_like_row(i)).unwrap();
    }
    let x = cat
        .create_table_partitioned(
            "x",
            Schema::new(vec![Column::new("k", DataType::Int), Column::new("g", DataType::Int)]),
            parts,
            0,
        )
        .unwrap();
    for i in 0..90i64 {
        x.heap.insert(&Tuple::new(vec![Value::Int(i * 7), Value::Int(i % 4)])).unwrap();
    }
    if with_index {
        cat.create_index("w_u1", "w", "unique1").unwrap();
    }
    cat.analyze_table("w").unwrap();
    cat.analyze_table("x").unwrap();
    cat
}

/// The differential query shapes: scans, point lookups (partition-pruned),
/// joins, and every aggregate combination the merge stage must combine.
const PARTITIONED_SHAPES: &[&str] = &[
    "SELECT * FROM w",
    "SELECT unique2, s4 FROM w WHERE unique1 = 123",
    "SELECT w.unique1, x.g FROM w, x WHERE w.unique1 = x.k",
    "SELECT ten, COUNT(*), SUM(unique2), MIN(unique1), MAX(unique2), AVG(unique1) \
     FROM w GROUP BY ten",
    "SELECT COUNT(*), AVG(unique2) FROM w WHERE two = 0",
    "SELECT COUNT(*), SUM(unique1) FROM w WHERE unique1 < 0",
    "SELECT DISTINCT twenty FROM w ORDER BY twenty DESC LIMIT 7",
    "SELECT x.g, COUNT(*), AVG(w.unique2) FROM w, x WHERE w.unique1 = x.k GROUP BY x.g",
];

fn run_volcano_on(cat: &Arc<Catalog>, sql: &str) -> Vec<Tuple> {
    let Statement::Select(sel) = parse_statement(sql).unwrap() else { panic!("not a select") };
    let bound = Binder::new(BindContext::new(cat)).bind_select(sel).unwrap();
    let plan = plan_select(&bound, cat, &PlannerConfig::default()).unwrap();
    volcano::run(&plan, &ExecContext::new(Arc::clone(cat))).unwrap()
}

fn run_both_on(cat: &Arc<Catalog>, sql: &str, cfg: &EngineConfig) -> (Vec<Tuple>, Vec<Tuple>) {
    let Statement::Select(sel) = parse_statement(sql).unwrap() else { panic!("not a select") };
    let bound = Binder::new(BindContext::new(cat)).bind_select(sel).unwrap();
    let plan = plan_select(&bound, cat, &PlannerConfig::default()).unwrap();
    let ctx = ExecContext::new(Arc::clone(cat));
    let volcano_rows = volcano::run(&plan, &ctx).unwrap();
    let engine = StagedEngine::new(ctx, cfg.clone());
    let staged_rows = engine.execute(&plan).collect().unwrap();
    engine.shutdown();
    (volcano_rows, staged_rows)
}

#[test]
fn partitioned_differential_suite_matches_volcano_at_every_partition_count() {
    // Reference: the unpartitioned catalog through Volcano only.
    let reference: Vec<Vec<String>> = {
        let cat = setup_partitioned(1, false);
        PARTITIONED_SHAPES.iter().map(|sql| canonical(run_volcano_on(&cat, sql))).collect()
    };
    for parts in [1usize, 2, 4, 8] {
        let cat = setup_partitioned(parts, false);
        let cfg = EngineConfig { workers_per_stage: 2, ..Default::default() };
        for (sql, expect) in PARTITIONED_SHAPES.iter().zip(&reference) {
            let (v, s) = run_both_on(&cat, sql, &cfg);
            let (vc, sc) = (canonical(v), canonical(s));
            assert_eq!(vc, *expect, "volcano drifted at {parts} partitions for {sql}");
            assert_eq!(sc, *expect, "staged drifted at {parts} partitions for {sql}");
        }
    }
}

#[test]
fn differential_suite_matches_volcano_at_every_cohort_size() {
    // Cohort scheduling (paper §4.2) batches engine-stage queue visits;
    // the batch knob must never change results. Sweep the cohort bound
    // over 1 (the pre-cohort semantics), 4 and 16 and diff a mixed query
    // set against Volcano, with enough stage workers that cohorts and
    // worker parallelism interleave.
    let shapes = [
        "SELECT * FROM t WHERE grp = 2",
        "SELECT t.a, u.w FROM t, u WHERE t.a = u.a",
        "SELECT grp, COUNT(*), SUM(a), AVG(v) FROM t GROUP BY grp",
        "SELECT DISTINCT grp FROM t ORDER BY grp",
        "SELECT s FROM t WHERE a BETWEEN 10 AND 40",
    ];
    let cat = setup();
    let reference: Vec<Vec<String>> =
        shapes.iter().map(|sql| canonical(run_volcano_on(&cat, sql))).collect();
    for cohort in [1usize, 4, 16] {
        let cfg = EngineConfig { cohort, workers_per_stage: 2, ..Default::default() };
        for (sql, expect) in shapes.iter().zip(&reference) {
            let (v, s) = run_both(&cat, sql, &cfg);
            assert_eq!(canonical(v), *expect, "volcano drifted at cohort {cohort} for {sql}");
            assert_eq!(canonical(s), *expect, "staged drifted at cohort {cohort} for {sql}");
        }
    }
}

#[test]
fn differential_suite_matches_volcano_at_every_page_size() {
    // The exchange page size (paper §4.3 / §4.4 knob (c)) is the unit of
    // data exchange between engine stages. Sweep it from the degenerate
    // page of one tuple — which must reproduce the per-tuple semantics the
    // batch-first refactor replaced — up to pages far larger than any
    // buffer's tuple budget, and diff joins, sorts, DISTINCT and
    // aggregation against Volcano at every size.
    let shapes = [
        "SELECT t.a, u.w FROM t, u WHERE t.a = u.a",
        "SELECT t.a, u.a FROM t, u WHERE t.a < u.a AND u.a < 30 AND t.a > 20",
        "SELECT a, s FROM t WHERE grp = 1 ORDER BY a DESC",
        "SELECT DISTINCT grp FROM t ORDER BY grp",
        "SELECT grp, COUNT(*), SUM(a), AVG(v), MIN(s), MAX(a) FROM t GROUP BY grp",
        "SELECT s FROM t WHERE a BETWEEN 10 AND 40",
    ];
    let cat = setup();
    let reference: Vec<Vec<String>> =
        shapes.iter().map(|sql| canonical(run_volcano_on(&cat, sql))).collect();
    for page in [1usize, 8, 256, 4096] {
        let cfg = EngineConfig { batch_capacity: page, workers_per_stage: 2, ..Default::default() };
        for (sql, expect) in shapes.iter().zip(&reference) {
            let (v, s) = run_both(&cat, sql, &cfg);
            assert_eq!(canonical(v), *expect, "volcano drifted at page {page} for {sql}");
            assert_eq!(canonical(s), *expect, "staged drifted at page {page} for {sql}");
        }
    }
}

#[test]
fn partitioned_two_phase_aggregation_matches_at_every_page_size() {
    // Two-phase aggregation (partial Aggr per partition, combined by the
    // Merge stage) exercises every batch edge: scan → aggr partials →
    // merge → send. The page size must never change the combined result.
    let shapes = [
        "SELECT ten, COUNT(*), SUM(unique2), MIN(unique1), MAX(unique2), AVG(unique1) \
         FROM w GROUP BY ten",
        "SELECT COUNT(*), AVG(unique2) FROM w WHERE two = 0",
        "SELECT x.g, COUNT(*), AVG(w.unique2) FROM w, x WHERE w.unique1 = x.k GROUP BY x.g",
    ];
    let cat = setup_partitioned(4, false);
    let reference: Vec<Vec<String>> =
        shapes.iter().map(|sql| canonical(run_volcano_on(&cat, sql))).collect();
    for page in [1usize, 8, 256, 4096] {
        let cfg = EngineConfig { batch_capacity: page, workers_per_stage: 2, ..Default::default() };
        for (sql, expect) in shapes.iter().zip(&reference) {
            let (v, s) = run_both_on(&cat, sql, &cfg);
            assert_eq!(canonical(v), *expect, "volcano drifted at page {page} for {sql}");
            assert_eq!(canonical(s), *expect, "staged drifted at page {page} for {sql}");
        }
    }
}

#[test]
fn page_size_is_adjustable_on_a_live_engine() {
    // Knob (c) is a run-time knob: retuning the page size on a running
    // engine must apply to subsequent queries without affecting results.
    let cat = setup();
    let ctx = ExecContext::new(Arc::clone(&cat));
    let engine = StagedEngine::new(ctx.clone(), EngineConfig::default());
    let mk_plan = |sql: &str| {
        let Statement::Select(sel) = parse_statement(sql).unwrap() else { panic!() };
        let bound = Binder::new(BindContext::new(&cat)).bind_select(sel).unwrap();
        plan_select(&bound, &cat, &PlannerConfig::default()).unwrap()
    };
    let sql = "SELECT grp, COUNT(*), SUM(a) FROM t GROUP BY grp";
    let expect = canonical(volcano::run(&mk_plan(sql), &ctx).unwrap());
    for page in [4096usize, 1, 64] {
        engine.set_page_size(page);
        assert_eq!(engine.page_size(), page);
        let rows = engine.execute(&mk_plan(sql)).collect().unwrap();
        assert_eq!(canonical(rows), expect, "retuned page {page} changed results");
    }
    engine.shutdown();
}

#[test]
fn partitioned_index_scans_merge_per_partition_btrees() {
    for parts in [1usize, 4] {
        let cat = setup_partitioned(parts, true);
        let sqls = [
            "SELECT * FROM w WHERE unique1 = 77",
            "SELECT unique1, unique2 FROM w WHERE unique1 BETWEEN 100 AND 105",
        ];
        for sql in sqls {
            let Statement::Select(sel) = parse_statement(sql).unwrap() else { panic!() };
            let bound = Binder::new(BindContext::new(&cat)).bind_select(sel).unwrap();
            let plan = plan_select(&bound, &cat, &PlannerConfig::default()).unwrap();
            assert!(plan.to_string().contains("IndexScan"), "{plan}");
            let ctx = ExecContext::new(Arc::clone(&cat));
            let v = volcano::run(&plan, &ctx).unwrap();
            let engine = StagedEngine::new(ctx, EngineConfig::default());
            let s = engine.execute(&plan).collect().unwrap();
            engine.shutdown();
            assert_eq!(canonical(v.clone()), canonical(s), "{sql} at {parts} partitions");
            if sql.contains("BETWEEN") {
                assert_eq!(v.len(), 6, "index range must see every partition");
            }
        }
    }
}

#[test]
fn partitioned_point_lookup_is_pruned_and_complete() {
    let cat = setup_partitioned(8, false);
    // Every key must still be found after pruning to one partition.
    for k in (0..WIS_ROWS).step_by(53) {
        let sql = format!("SELECT unique1 FROM w WHERE unique1 = {k}");
        let Statement::Select(sel) = parse_statement(&sql).unwrap() else { panic!() };
        let bound = Binder::new(BindContext::new(&cat)).bind_select(sel).unwrap();
        let plan = plan_select(&bound, &cat, &PlannerConfig::default()).unwrap();
        let text = plan.to_string();
        assert!(text.contains("PartitionScan") && !text.contains("Exchange"), "{text}");
        let ctx = ExecContext::new(Arc::clone(&cat));
        let rows = volcano::run(&plan, &ctx).unwrap();
        assert_eq!(rows.len(), 1, "key {k} lost by pruning");
        assert_eq!(rows[0].get(0), &Value::Int(k));
    }
}

#[test]
fn error_in_task_reaches_the_client() {
    let cat = setup();
    // Division by zero at run time (not foldable: depends on a column).
    let sql = "SELECT 10 / (a - a) FROM t LIMIT 1";
    let Statement::Select(sel) = parse_statement(sql).unwrap() else { panic!() };
    let bound = Binder::new(BindContext::new(&cat)).bind_select(sel).unwrap();
    let plan = plan_select(&bound, &cat, &PlannerConfig::default()).unwrap();
    let ctx = ExecContext::new(Arc::clone(&cat));
    assert!(volcano::run(&plan, &ctx).is_err());
    let engine = StagedEngine::new(ctx, EngineConfig::default());
    let res = engine.execute(&plan).collect();
    assert!(res.is_err(), "staged engine must surface the evaluation error");
    engine.shutdown();
}
