//! Page-backed B+tree index: `i64` key → [`Rid`], duplicates allowed.
//!
//! Nodes are materialized from pages for manipulation and written back —
//! with ~450 entries per node the copy is cheap and keeps the split logic
//! straightforward. Deletes remove leaf entries without rebalancing
//! (standard simplification; the tree stays correct, merely non-minimal —
//! the paper's workloads are read-mostly). Concurrency is a tree-level
//! reader/writer latch; finer latch crabbing is orthogonal to the staging
//! architecture under study.
//!
//! Node layout (little-endian):
//!
//! ```text
//! byte 0      node type: 1 = leaf, 2 = internal
//! bytes 2..4  entry count: u16
//! bytes 8..16 leaf: next-leaf page id (u64::MAX = none)
//!             internal: leftmost child page id
//! bytes 16..  leaf:     (key i64, rid.page u64, rid.slot u16) × count
//!             internal: (key i64, child u64) × count
//! ```

use crate::buffer::BufferPool;
use crate::error::{StorageError, StorageResult};
use crate::page::{
    read_i64, read_u16, read_u64, write_i64, write_u16, write_u64, PageId, PAGE_SIZE,
};
use crate::tuple::Rid;
use parking_lot::RwLock;
use std::sync::Arc;

const TYPE_LEAF: u8 = 1;
const TYPE_INTERNAL: u8 = 2;
const HEADER: usize = 16;
const LEAF_ENTRY: usize = 18;
const INT_ENTRY: usize = 16;
const NO_PAGE: u64 = u64::MAX;

/// Maximum entries per leaf node.
pub const LEAF_CAP: usize = (PAGE_SIZE - HEADER) / LEAF_ENTRY;
/// Maximum keys per internal node.
pub const INTERNAL_CAP: usize = (PAGE_SIZE - HEADER) / INT_ENTRY;

#[derive(Debug, Clone)]
enum Node {
    Leaf { keys: Vec<i64>, rids: Vec<Rid>, next: Option<PageId> },
    Internal { keys: Vec<i64>, children: Vec<PageId> },
}

/// A B+tree index over a buffer pool.
pub struct BTree {
    pool: Arc<BufferPool>,
    root: RwLock<PageId>,
}

impl BTree {
    /// Create an empty tree (a single empty leaf).
    pub fn create(pool: Arc<BufferPool>) -> StorageResult<Self> {
        let root = {
            let guard = pool.new_page()?;
            let node = Node::Leaf { keys: vec![], rids: vec![], next: None };
            guard.write(|d| encode_node(&node, d));
            guard.page_id()
        };
        Ok(Self { pool, root: RwLock::new(root) })
    }

    /// Page id of the root (for diagnostics).
    pub fn root_page(&self) -> PageId {
        *self.root.read()
    }

    /// Insert a `(key, rid)` pair; duplicate keys are allowed.
    pub fn insert(&self, key: i64, rid: Rid) -> StorageResult<()> {
        let mut root = self.root.write();
        if let Some((sep, right)) = self.insert_rec(*root, key, rid)? {
            // Root split: grow the tree by one level.
            let new_root = self.pool.new_page()?;
            let node = Node::Internal { keys: vec![sep], children: vec![*root, right] };
            new_root.write(|d| encode_node(&node, d));
            *root = new_root.page_id();
        }
        Ok(())
    }

    fn insert_rec(&self, page: PageId, key: i64, rid: Rid) -> StorageResult<Option<(i64, PageId)>> {
        let mut node = self.read_node(page)?;
        match &mut node {
            Node::Leaf { keys, rids, next } => {
                let pos = keys.partition_point(|&k| k <= key);
                keys.insert(pos, key);
                rids.insert(pos, rid);
                if keys.len() <= LEAF_CAP {
                    self.write_node(page, &node)?;
                    return Ok(None);
                }
                // Split the overflowing leaf.
                let mid = keys.len() / 2;
                let right_keys = keys.split_off(mid);
                let right_rids = rids.split_off(mid);
                let sep = right_keys[0];
                let right_guard = self.pool.new_page()?;
                let right_id = right_guard.page_id();
                let right = Node::Leaf { keys: right_keys, rids: right_rids, next: *next };
                right_guard.write(|d| encode_node(&right, d));
                *next = Some(right_id);
                self.write_node(page, &node)?;
                Ok(Some((sep, right_id)))
            }
            Node::Internal { keys, children } => {
                let d = keys.partition_point(|&k| k <= key);
                let child = children[d];
                let Some((sep, new_child)) = self.insert_rec(child, key, rid)? else {
                    return Ok(None);
                };
                keys.insert(d, sep);
                children.insert(d + 1, new_child);
                if keys.len() <= INTERNAL_CAP {
                    self.write_node(page, &node)?;
                    return Ok(None);
                }
                // Split the internal node; the middle key moves up.
                let mid = keys.len() / 2;
                let promoted = keys[mid];
                let right_keys = keys.split_off(mid + 1);
                keys.pop(); // drop the promoted key from the left node
                let right_children = children.split_off(mid + 1);
                let right_guard = self.pool.new_page()?;
                let right_id = right_guard.page_id();
                let right = Node::Internal { keys: right_keys, children: right_children };
                right_guard.write(|d| encode_node(&right, d));
                self.write_node(page, &node)?;
                Ok(Some((promoted, right_id)))
            }
        }
    }

    /// All rids stored under `key`.
    pub fn search(&self, key: i64) -> StorageResult<Vec<Rid>> {
        Ok(self.range(Some(key), Some(key))?.into_iter().map(|(_, r)| r).collect())
    }

    /// All `(key, rid)` pairs with `lo ≤ key ≤ hi` (either bound optional),
    /// in key order.
    pub fn range(&self, lo: Option<i64>, hi: Option<i64>) -> StorageResult<Vec<(i64, Rid)>> {
        let root = self.root.read();
        let mut page = self.leaf_for(*root, lo.unwrap_or(i64::MIN))?;
        let mut out = Vec::new();
        loop {
            let node = self.read_node(page)?;
            let Node::Leaf { keys, rids, next } = node else {
                return Err(StorageError::Corrupt("leaf_for returned internal node".into()));
            };
            for (k, r) in keys.iter().zip(&rids) {
                if let Some(lo) = lo {
                    if *k < lo {
                        continue;
                    }
                }
                if let Some(hi) = hi {
                    if *k > hi {
                        return Ok(out);
                    }
                }
                out.push((*k, *r));
            }
            match next {
                Some(n) => page = n,
                None => return Ok(out),
            }
        }
    }

    /// Remove one `(key, rid)` pair; returns whether it was present.
    pub fn delete(&self, key: i64, rid: Rid) -> StorageResult<bool> {
        let root = self.root.write();
        let page = self.leaf_for(*root, key)?;
        // The matching entry may live in a chain of leaves when duplicates
        // span splits.
        let mut cur = page;
        loop {
            let mut node = self.read_node(cur)?;
            let Node::Leaf { keys, rids, next } = &mut node else {
                return Err(StorageError::Corrupt("leaf_for returned internal node".into()));
            };
            if keys.first().is_some_and(|&k| k > key) {
                return Ok(false);
            }
            if let Some(pos) =
                keys.iter().zip(rids.iter()).position(|(&k, r)| k == key && *r == rid)
            {
                keys.remove(pos);
                rids.remove(pos);
                self.write_node(cur, &node)?;
                return Ok(true);
            }
            if keys.last().is_some_and(|&k| k > key) {
                return Ok(false);
            }
            match next {
                Some(n) => cur = *n,
                None => return Ok(false),
            }
        }
    }

    /// Total number of entries (walks all leaves).
    pub fn len(&self) -> StorageResult<usize> {
        Ok(self.range(None, None)?.len())
    }

    /// True when the tree holds no entries.
    pub fn is_empty(&self) -> StorageResult<bool> {
        Ok(self.len()? == 0)
    }

    /// Tree height (1 = just a leaf root).
    pub fn height(&self) -> StorageResult<usize> {
        let mut page = *self.root.read();
        let mut h = 1;
        loop {
            match self.read_node(page)? {
                Node::Leaf { .. } => return Ok(h),
                Node::Internal { children, .. } => {
                    page = children[0];
                    h += 1;
                }
            }
        }
    }

    /// Descend from `page` to the *leftmost* leaf that may contain `key`.
    ///
    /// Uses a strict comparison against separators: a separator equal to
    /// `key` can have duplicates of `key` on both sides of the split, so
    /// lookups must start left of it and walk the leaf chain rightwards.
    fn leaf_for(&self, page: PageId, key: i64) -> StorageResult<PageId> {
        let mut cur = page;
        loop {
            match self.read_node(cur)? {
                Node::Leaf { .. } => return Ok(cur),
                Node::Internal { keys, children } => {
                    let d = keys.partition_point(|&k| k < key);
                    cur = children[d];
                }
            }
        }
    }

    fn read_node(&self, page: PageId) -> StorageResult<Node> {
        let guard = self.pool.fetch(page)?;
        guard.read(decode_node)
    }

    fn write_node(&self, page: PageId, node: &Node) -> StorageResult<()> {
        let guard = self.pool.fetch(page)?;
        guard.write(|d| encode_node(node, d));
        Ok(())
    }
}

fn encode_node(node: &Node, d: &mut [u8]) {
    match node {
        Node::Leaf { keys, rids, next } => {
            d[0] = TYPE_LEAF;
            write_u16(d, 2, keys.len() as u16);
            write_u64(d, 8, next.map_or(NO_PAGE, |p| p.0));
            let mut off = HEADER;
            for (k, r) in keys.iter().zip(rids) {
                write_i64(d, off, *k);
                write_u64(d, off + 8, r.page.0);
                write_u16(d, off + 16, r.slot);
                off += LEAF_ENTRY;
            }
        }
        Node::Internal { keys, children } => {
            debug_assert_eq!(children.len(), keys.len() + 1);
            d[0] = TYPE_INTERNAL;
            write_u16(d, 2, keys.len() as u16);
            write_u64(d, 8, children[0].0);
            let mut off = HEADER;
            for (k, c) in keys.iter().zip(&children[1..]) {
                write_i64(d, off, *k);
                write_u64(d, off + 8, c.0);
                off += INT_ENTRY;
            }
        }
    }
}

fn decode_node(d: &[u8]) -> StorageResult<Node> {
    let count = read_u16(d, 2) as usize;
    match d[0] {
        TYPE_LEAF => {
            if count > LEAF_CAP + 1 {
                return Err(StorageError::Corrupt(format!("leaf count {count}")));
            }
            let raw_next = read_u64(d, 8);
            let next = if raw_next == NO_PAGE { None } else { Some(PageId(raw_next)) };
            let mut keys = Vec::with_capacity(count);
            let mut rids = Vec::with_capacity(count);
            let mut off = HEADER;
            for _ in 0..count {
                keys.push(read_i64(d, off));
                rids.push(Rid::new(PageId(read_u64(d, off + 8)), read_u16(d, off + 16)));
                off += LEAF_ENTRY;
            }
            Ok(Node::Leaf { keys, rids, next })
        }
        TYPE_INTERNAL => {
            if count > INTERNAL_CAP + 1 {
                return Err(StorageError::Corrupt(format!("internal count {count}")));
            }
            let mut keys = Vec::with_capacity(count);
            let mut children = Vec::with_capacity(count + 1);
            children.push(PageId(read_u64(d, 8)));
            let mut off = HEADER;
            for _ in 0..count {
                keys.push(read_i64(d, off));
                children.push(PageId(read_u64(d, off + 8)));
                off += INT_ENTRY;
            }
            Ok(Node::Internal { keys, children })
        }
        t => Err(StorageError::Corrupt(format!("unknown btree node type {t}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::MemDisk;

    fn tree() -> BTree {
        BTree::create(BufferPool::new(Arc::new(MemDisk::new()), 256)).unwrap()
    }

    fn rid(i: i64) -> Rid {
        Rid::new(PageId(i as u64 / 100), (i % 100) as u16)
    }

    #[test]
    fn insert_and_point_lookup() {
        let t = tree();
        for i in 0..100 {
            t.insert(i, rid(i)).unwrap();
        }
        assert_eq!(t.search(42).unwrap(), vec![rid(42)]);
        assert_eq!(t.search(1000).unwrap(), Vec::<Rid>::new());
    }

    #[test]
    fn splits_preserve_order_and_content() {
        let t = tree();
        let n = 3 * LEAF_CAP as i64; // force multiple leaf splits
        for i in (0..n).rev() {
            t.insert(i, rid(i)).unwrap();
        }
        assert!(t.height().unwrap() >= 2);
        let all = t.range(None, None).unwrap();
        assert_eq!(all.len(), n as usize);
        for (i, (k, r)) in all.iter().enumerate() {
            assert_eq!(*k, i as i64);
            assert_eq!(*r, rid(i as i64));
        }
    }

    #[test]
    fn range_scan_bounds_are_inclusive() {
        let t = tree();
        for i in 0..50 {
            t.insert(i * 2, rid(i)).unwrap(); // even keys 0..98
        }
        let r = t.range(Some(10), Some(20)).unwrap();
        let keys: Vec<i64> = r.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, vec![10, 12, 14, 16, 18, 20]);
        let below = t.range(None, Some(4)).unwrap();
        assert_eq!(below.len(), 3); // 0, 2, 4
        let above = t.range(Some(96), None).unwrap();
        assert_eq!(above.len(), 2); // 96, 98
    }

    #[test]
    fn duplicates_are_kept_and_individually_deletable() {
        let t = tree();
        t.insert(7, rid(1)).unwrap();
        t.insert(7, rid(2)).unwrap();
        t.insert(7, rid(3)).unwrap();
        assert_eq!(t.search(7).unwrap().len(), 3);
        assert!(t.delete(7, rid(2)).unwrap());
        let left = t.search(7).unwrap();
        assert_eq!(left.len(), 2);
        assert!(!left.contains(&rid(2)));
        assert!(!t.delete(7, rid(2)).unwrap(), "double delete returns false");
    }

    #[test]
    fn delete_missing_key_returns_false() {
        let t = tree();
        t.insert(1, rid(1)).unwrap();
        assert!(!t.delete(2, rid(2)).unwrap());
    }

    #[test]
    fn deep_tree_from_random_order_stays_sorted() {
        let t = tree();
        // Pseudo-random permutation without rand: multiplicative hash.
        let n: i64 = 2 * LEAF_CAP as i64 + 37;
        for i in 0..n {
            let k = (i * 2654435761) % 10_007;
            t.insert(k, rid(i)).unwrap();
        }
        let all = t.range(None, None).unwrap();
        assert_eq!(all.len(), n as usize);
        assert!(all.windows(2).all(|w| w[0].0 <= w[1].0), "keys must be sorted");
    }

    #[test]
    fn empty_tree_behaves() {
        let t = tree();
        assert!(t.is_empty().unwrap());
        assert_eq!(t.height().unwrap(), 1);
        assert_eq!(t.range(None, None).unwrap(), vec![]);
        assert!(!t.delete(0, rid(0)).unwrap());
    }

    #[test]
    fn many_duplicates_across_leaf_splits_are_found() {
        let t = tree();
        let dups = LEAF_CAP + 50; // same key spanning more than one leaf
        for i in 0..dups {
            t.insert(99, rid(i as i64)).unwrap();
        }
        t.insert(98, rid(-1)).unwrap();
        t.insert(100, rid(-2)).unwrap();
        assert_eq!(t.search(99).unwrap().len(), dups);
        // Delete one duplicate that lives in a later leaf.
        assert!(t.delete(99, rid((dups - 1) as i64)).unwrap());
        assert_eq!(t.search(99).unwrap().len(), dups - 1);
    }
}
