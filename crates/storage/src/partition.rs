//! Hash-partitioned heap storage — the shared-nothing data layout behind
//! partition-parallel execution (paper §6: "data can be partitioned … so
//! that one query fans out across many stage instances").
//!
//! A [`PartitionedHeap`] is N independent [`HeapFile`]s over one shared
//! buffer pool. Every tuple is routed to exactly one partition by hashing
//! its *partition key* column; scans can read one partition or all of them.
//! A single-partition heap degenerates to the old behaviour, so the rest of
//! the system treats every table as partitioned (usually with N = 1).

use crate::buffer::BufferPool;
use crate::error::StorageResult;
use crate::heap::{HeapFile, HeapPageScan, HeapScan};
use crate::mvcc::{ReadView, VersionStore};
use crate::page::PageId;
use crate::tuple::{Rid, Tuple};
use crate::value::Value;
use std::sync::Arc;

/// Deterministic partition of a key value: FNV-1a over the value's storage
/// encoding, reduced mod `partitions`. Both DML routing and planner
/// partition pruning go through this single function, so a pruned scan can
/// never disagree with the insert path about where a row lives.
pub fn partition_of_value(v: &Value, partitions: usize) -> usize {
    if partitions <= 1 {
        return 0;
    }
    let mut bytes = Vec::with_capacity(v.encoded_len());
    v.encode(&mut bytes);
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in &bytes {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (h % partitions as u64) as usize
}

/// N heap files behind one table, with hash routing on a key column.
pub struct PartitionedHeap {
    parts: Vec<Arc<HeapFile>>,
    key: usize,
}

impl PartitionedHeap {
    /// An empty partitioned heap: `partitions` heap files over `pool`,
    /// routing on column `key`.
    pub fn create(pool: Arc<BufferPool>, partitions: usize, key: usize) -> Self {
        let n = partitions.max(1);
        let parts = (0..n).map(|_| Arc::new(HeapFile::create(Arc::clone(&pool)))).collect();
        Self { parts, key }
    }

    /// Number of partitions (≥ 1).
    pub fn partitions(&self) -> usize {
        self.parts.len()
    }

    /// The hash-key column index.
    pub fn key_column(&self) -> usize {
        self.key
    }

    /// The heap file backing partition `p`.
    pub fn partition(&self, p: usize) -> &Arc<HeapFile> {
        &self.parts[p]
    }

    /// Which partition a tuple routes to.
    pub fn partition_of(&self, tuple: &Tuple) -> usize {
        match tuple.values().get(self.key) {
            Some(v) => partition_of_value(v, self.parts.len()),
            None => 0,
        }
    }

    /// Insert a tuple into its hash partition, returning its rid.
    pub fn insert(&self, tuple: &Tuple) -> StorageResult<Rid> {
        self.insert_routed(tuple).map(|(_, rid)| rid)
    }

    /// Insert a tuple, returning `(partition, rid)` so callers maintaining
    /// per-partition indexes know where it landed.
    pub fn insert_routed(&self, tuple: &Tuple) -> StorageResult<(usize, Rid)> {
        self.insert_routed_with(tuple, |_| {})
    }

    /// [`Self::insert_routed`] with an MVCC registration hook: `note` runs
    /// with the assigned rid from inside the page write latch (see
    /// [`HeapFile::insert_with`]).
    pub fn insert_routed_with<F: FnOnce(Rid)>(
        &self,
        tuple: &Tuple,
        note: F,
    ) -> StorageResult<(usize, Rid)> {
        let p = self.partition_of(tuple);
        let rid = self.parts[p].insert_with(tuple, note)?;
        Ok((p, rid))
    }

    /// Read the tuple at `rid` (rids are global page addresses, so any
    /// partition can resolve them).
    pub fn get(&self, rid: Rid) -> StorageResult<Tuple> {
        self.parts[0].get(rid)
    }

    /// Delete the tuple at `rid`.
    pub fn delete(&self, rid: Rid) -> StorageResult<()> {
        self.parts[0].delete(rid)
    }

    /// Replace the tuple at `rid`; the new rid may land in a different
    /// partition when the key column changed.
    pub fn update(&self, rid: Rid, tuple: &Tuple) -> StorageResult<Rid> {
        self.delete(rid)?;
        self.insert(tuple)
    }

    /// Full scan over every partition, in partition order.
    pub fn scan(&self) -> PartitionedScan {
        PartitionedScan { parts: self.parts.clone(), next: 0, current: None, mvcc: None }
    }

    /// Scan of one partition only.
    pub fn scan_partition(&self, p: usize) -> HeapScan {
        self.parts[p].scan()
    }

    /// Page-granular scan over every partition, in partition order.
    pub fn scan_pages(&self) -> PartitionedPageScan {
        PartitionedPageScan {
            parts: self.parts.clone(),
            next: 0,
            current: None,
            cols: None,
            mvcc: None,
        }
    }

    /// Page-granular scan of one partition only.
    pub fn scan_partition_pages(&self, p: usize) -> HeapPageScan {
        self.parts[p].scan_pages()
    }

    /// Total pages across partitions.
    pub fn num_pages(&self) -> usize {
        self.parts.iter().map(|h| h.num_pages()).sum()
    }

    /// Page ids of every partition, concatenated in partition order.
    pub fn page_ids(&self) -> Vec<PageId> {
        self.parts.iter().flat_map(|h| h.page_ids()).collect()
    }

    /// Exact count of live tuples across all partitions.
    pub fn count(&self) -> StorageResult<usize> {
        let mut n = 0;
        for h in &self.parts {
            n += h.count()?;
        }
        Ok(n)
    }
}

/// Streaming scan chaining each partition's [`HeapScan`].
pub struct PartitionedScan {
    parts: Vec<Arc<HeapFile>>,
    next: usize,
    current: Option<HeapScan>,
    mvcc: Option<(Arc<VersionStore>, ReadView)>,
}

impl PartitionedScan {
    /// Pages this scan will visit (for I/O accounting).
    pub fn num_pages(&self) -> usize {
        self.parts.iter().map(|h| h.num_pages()).sum()
    }

    /// Snapshot-filter every partition's scan (see
    /// [`HeapScan::with_snapshot`]).
    pub fn with_snapshot(mut self, store: Arc<VersionStore>, view: ReadView) -> Self {
        self.mvcc = Some((store, view));
        self
    }
}

impl Iterator for PartitionedScan {
    type Item = StorageResult<(Rid, Tuple)>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if let Some(scan) = &mut self.current {
                if let Some(item) = scan.next() {
                    return Some(item);
                }
            }
            if self.next >= self.parts.len() {
                return None;
            }
            let scan = self.parts[self.next].scan();
            self.current = Some(match &self.mvcc {
                Some((store, view)) => scan.with_snapshot(Arc::clone(store), *view),
                None => scan,
            });
            self.next += 1;
        }
    }
}

/// Page-granular scan chaining each partition's [`HeapPageScan`].
pub struct PartitionedPageScan {
    parts: Vec<Arc<HeapFile>>,
    next: usize,
    current: Option<HeapPageScan>,
    cols: Option<Vec<usize>>,
    mvcc: Option<(Arc<VersionStore>, ReadView)>,
}

impl PartitionedPageScan {
    /// Pages this scan will visit (for I/O accounting).
    pub fn num_pages(&self) -> usize {
        self.parts.iter().map(|h| h.num_pages()).sum()
    }

    /// Restrict decoding to `cols` in every partition's page scan (see
    /// [`HeapPageScan::with_columns`]).
    pub fn with_columns(mut self, cols: Vec<usize>) -> Self {
        self.cols = Some(cols);
        self
    }

    /// Snapshot-filter every partition's page scan (see
    /// [`HeapPageScan::with_snapshot`]).
    pub fn with_snapshot(mut self, store: Arc<VersionStore>, view: ReadView) -> Self {
        self.mvcc = Some((store, view));
        self
    }
}

impl Iterator for PartitionedPageScan {
    type Item = StorageResult<Vec<(Rid, Tuple)>>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if let Some(scan) = &mut self.current {
                if let Some(item) = scan.next() {
                    return Some(item);
                }
            }
            if self.next >= self.parts.len() {
                return None;
            }
            let mut scan = self.parts[self.next].scan_pages();
            if let Some(cols) = &self.cols {
                scan = scan.with_columns(cols.clone());
            }
            if let Some((store, view)) = &self.mvcc {
                scan = scan.with_snapshot(Arc::clone(store), *view);
            }
            self.current = Some(scan);
            self.next += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::MemDisk;
    use std::collections::HashSet;

    fn heap(parts: usize) -> PartitionedHeap {
        PartitionedHeap::create(BufferPool::new(Arc::new(MemDisk::new()), 256), parts, 0)
    }

    fn row(i: i64) -> Tuple {
        Tuple::new(vec![Value::Int(i), Value::Str(format!("row-{i}"))])
    }

    #[test]
    fn single_partition_behaves_like_plain_heap() {
        let h = heap(1);
        let rid = h.insert(&row(7)).unwrap();
        assert_eq!(h.partitions(), 1);
        assert_eq!(h.get(rid).unwrap(), row(7));
        assert_eq!(h.scan().count(), 1);
    }

    #[test]
    fn rows_route_consistently_and_scan_unions_partitions() {
        let h = heap(4);
        for i in 0..400 {
            let (p, _) = h.insert_routed(&row(i)).unwrap();
            assert_eq!(p, partition_of_value(&Value::Int(i), 4));
        }
        assert_eq!(h.count().unwrap(), 400);
        // Union of per-partition scans == full scan, and partitions are
        // disjoint.
        let full: HashSet<i64> = h.scan().map(|r| r.unwrap().1.get(0).as_int().unwrap()).collect();
        assert_eq!(full.len(), 400);
        let mut union = HashSet::new();
        for p in 0..4 {
            for r in h.scan_partition(p) {
                let k = r.unwrap().1.get(0).as_int().unwrap();
                assert!(union.insert(k), "row {k} in more than one partition");
            }
        }
        assert_eq!(union, full);
        // A reasonable spread: no partition is empty at 400 rows.
        for p in 0..4 {
            assert!(h.scan_partition(p).count() > 0, "partition {p} empty");
        }
    }

    #[test]
    fn update_moves_rows_between_partitions() {
        let h = heap(8);
        let rid = h.insert(&row(1)).unwrap();
        // Rewrite the key until the row provably changes partition.
        let mut rid = rid;
        let from = partition_of_value(&Value::Int(1), 8);
        let mut moved = false;
        for k in 2..64 {
            rid = h.update(rid, &row(k)).unwrap();
            if partition_of_value(&Value::Int(k), 8) != from {
                moved = true;
                break;
            }
        }
        assert!(moved);
        assert_eq!(h.count().unwrap(), 1);
    }

    #[test]
    fn page_scan_agrees_with_tuple_scan_across_partitions() {
        let h = heap(4);
        for i in 0..400 {
            h.insert(&row(i)).unwrap();
        }
        let flat: Vec<Tuple> = h.scan().map(|r| r.unwrap().1).collect();
        let paged: Vec<Tuple> =
            h.scan_pages().flat_map(|p| p.unwrap().into_iter().map(|(_, t)| t)).collect();
        assert_eq!(flat, paged);
        // Per-partition page scans union to the whole table.
        let mut union = 0usize;
        for p in 0..4 {
            union += h.scan_partition_pages(p).map(|pg| pg.unwrap().len()).sum::<usize>();
        }
        assert_eq!(union, 400);
    }

    #[test]
    fn null_and_string_keys_hash_somewhere_stable() {
        for parts in [1, 2, 4, 8] {
            for v in [Value::Null, Value::Str("abc".into()), Value::Float(1.5), Value::Bool(true)] {
                let p = partition_of_value(&v, parts);
                assert!(p < parts);
                assert_eq!(p, partition_of_value(&v, parts), "hash must be stable");
            }
        }
    }
}
