//! Table schemas.

use crate::error::{StorageError, StorageResult};
use crate::tuple::Tuple;
use crate::value::DataType;
use std::fmt;

/// One column of a schema.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize)]
pub struct Column {
    /// Column name (case-insensitive lookups, stored lower-case).
    pub name: String,
    /// Data type.
    pub ty: DataType,
    /// Whether NULLs are allowed.
    pub nullable: bool,
}

impl Column {
    /// A non-nullable column.
    pub fn new(name: impl Into<String>, ty: DataType) -> Self {
        Self { name: name.into().to_ascii_lowercase(), ty, nullable: false }
    }

    /// Make the column nullable.
    pub fn nullable(mut self) -> Self {
        self.nullable = true;
        self
    }
}

/// An ordered list of columns.
#[derive(Debug, Clone, PartialEq, Eq, Default, serde::Serialize)]
pub struct Schema {
    columns: Vec<Column>,
}

impl Schema {
    /// Build a schema; panics on duplicate column names.
    pub fn new(columns: Vec<Column>) -> Self {
        for (i, c) in columns.iter().enumerate() {
            assert!(
                columns[..i].iter().all(|p| p.name != c.name),
                "duplicate column name {:?}",
                c.name
            );
        }
        Self { columns }
    }

    /// The columns in order.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.columns.len()
    }

    /// True for the empty schema.
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// Index of a column by (case-insensitive) name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        let lower = name.to_ascii_lowercase();
        self.columns.iter().position(|c| c.name == lower)
    }

    /// The column at `idx`.
    pub fn column(&self, idx: usize) -> &Column {
        &self.columns[idx]
    }

    /// Concatenate two schemas (join output). Duplicate names are
    /// disambiguated with a numeric suffix.
    pub fn join(&self, other: &Schema) -> Schema {
        let mut cols = self.columns.clone();
        for c in &other.columns {
            let mut name = c.name.clone();
            let mut k = 1;
            while cols.iter().any(|e| e.name == name) {
                name = format!("{}_{k}", c.name);
                k += 1;
            }
            cols.push(Column { name, ty: c.ty, nullable: c.nullable });
        }
        Schema::new(cols)
    }

    /// Validate that a tuple conforms to this schema.
    pub fn validate(&self, tuple: &Tuple) -> StorageResult<()> {
        if tuple.values().len() != self.columns.len() {
            return Err(StorageError::SchemaMismatch(format!(
                "expected {} values, got {}",
                self.columns.len(),
                tuple.values().len()
            )));
        }
        for (v, c) in tuple.values().iter().zip(&self.columns) {
            match v.data_type() {
                None if !c.nullable => {
                    return Err(StorageError::SchemaMismatch(format!(
                        "column {} is not nullable",
                        c.name
                    )));
                }
                Some(t)
                    if t != c.ty
                    // Int is acceptable where Float is declared.
                    && !(c.ty == DataType::Float && t == DataType::Int) =>
                {
                    return Err(StorageError::SchemaMismatch(format!(
                        "column {} expects {}, got {}",
                        c.name, c.ty, t
                    )));
                }
                _ => {}
            }
        }
        Ok(())
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, c) in self.columns.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{} {}", c.name, c.ty)?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    fn abc() -> Schema {
        Schema::new(vec![
            Column::new("a", DataType::Int),
            Column::new("b", DataType::Str),
            Column::new("c", DataType::Float).nullable(),
        ])
    }

    #[test]
    fn index_of_is_case_insensitive() {
        let s = abc();
        assert_eq!(s.index_of("A"), Some(0));
        assert_eq!(s.index_of("b"), Some(1));
        assert_eq!(s.index_of("missing"), None);
    }

    #[test]
    fn validate_accepts_conforming_tuples() {
        let s = abc();
        let t = Tuple::new(vec![Value::Int(1), Value::Str("x".into()), Value::Null]);
        assert!(s.validate(&t).is_ok());
        let t2 = Tuple::new(vec![Value::Int(1), Value::Str("x".into()), Value::Int(3)]);
        assert!(s.validate(&t2).is_ok(), "int coerces into float column");
    }

    #[test]
    fn validate_rejects_bad_tuples() {
        let s = abc();
        assert!(s.validate(&Tuple::new(vec![Value::Int(1)])).is_err(), "arity");
        assert!(
            s.validate(&Tuple::new(vec![Value::Null, Value::Str("x".into()), Value::Null]))
                .is_err(),
            "null in non-nullable"
        );
        assert!(
            s.validate(&Tuple::new(vec![
                Value::Str("no".into()),
                Value::Str("x".into()),
                Value::Null
            ]))
            .is_err(),
            "type mismatch"
        );
    }

    #[test]
    fn join_disambiguates_duplicate_names() {
        let s = abc().join(&abc());
        assert_eq!(s.len(), 6);
        assert!(s.index_of("a").is_some());
        assert!(s.index_of("a_1").is_some());
    }

    #[test]
    #[should_panic(expected = "duplicate column")]
    fn duplicate_columns_panic() {
        Schema::new(vec![Column::new("x", DataType::Int), Column::new("X", DataType::Int)]);
    }
}
