//! Multi-version concurrency control: a per-table version overlay and the
//! commit-timestamp oracle.
//!
//! The heap stays single-version — exactly the bytes the WAL and snapshots
//! describe (PR 7's recovery path remains byte-honest). Versioning lives in
//! an in-memory overlay per table (a [`VersionStore`]) that records, for
//! rows touched by in-flight or recently committed transactions, *when* each
//! row became visible and *when* it stopped being visible. A scan holding a
//! [`ReadView`] filters every page it decodes through the overlay: live rows
//! whose creation the view cannot see are dropped, and dead versions (the
//! before-images of deleted rows) the view can still see are merged back in.
//! A row with no overlay entry is visible to everyone — the common case, and
//! the reason an idle overlay costs one atomic load per page.
//!
//! Timestamps come from the [`CommitOracle`]: a monotonic counter advanced
//! under a mutex at commit, with the visibility flip (`Pending(xid)` →
//! `At(ts)`) performed inside the same critical section so that "the latest
//! committed timestamp" and "which versions that timestamp can see" can
//! never disagree. Readers pin a snapshot with [`CommitOracle::pin`]; the
//! oldest pin bounds what the garbage collector may reclaim.
//!
//! The overlay is rebuilt empty at recovery (only committed data survives a
//! crash, and committed data is visible to everyone), and garbage-collected
//! at the checkpoint stage's quiesce point — see `engine::checkpoint`.
//!
//! Visibility rules, race analysis, and the GC protocol are documented in
//! `docs/CONCURRENCY.md`.

use crate::error::StorageResult;
use crate::page::PageId;
use crate::tuple::{Rid, Tuple};
use parking_lot::Mutex;
use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// A reader's view of the database: every version committed at or before
/// `ts` is visible, plus the reader's own uncommitted writes (`xid`).
///
/// `xid == 0` means "no transaction" (autocommit SELECTs and `BEGIN READ
/// ONLY` bindings): only committed state is visible.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReadView {
    /// Snapshot timestamp: versions with commit ts `<= ts` are visible.
    pub ts: u64,
    /// The reading transaction's id, or 0 for none. A transaction always
    /// sees its own pending writes.
    pub xid: u64,
}

impl ReadView {
    /// Construct a view.
    pub fn new(ts: u64, xid: u64) -> Self {
        Self { ts, xid }
    }
}

/// When a row version came into existence.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Begin {
    /// Written by a still-uncommitted transaction; visible only to it.
    Pending(u64),
    /// Committed at this timestamp.
    At(u64),
    /// A live twin created by rollback re-inserting a deleted row. Never
    /// visible directly — readers see the row through the anchor dead
    /// version at the original rid until GC collapses the pair.
    Restored(Rid),
}

/// When a row version stopped existing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum End {
    /// Deleted by a still-uncommitted transaction; the deletion is visible
    /// only to that transaction.
    Pending(u64),
    /// Deletion committed at this timestamp.
    At(u64),
}

/// The before-image of a deleted row, kept so older snapshots can still
/// read it.
#[derive(Debug)]
struct DeadVersion {
    /// The rid the row occupied (slots are never reused, so the rid
    /// uniquely names this version forever).
    rid: Rid,
    /// Encoded tuple bytes at deletion time.
    bytes: Vec<u8>,
    /// Creation stamp of the row when it was deleted (`None` = predates
    /// the overlay, visible to every snapshot).
    begin: Option<Begin>,
    /// Deletion stamp.
    end: End,
    /// Rid of the live twin a rollback re-inserted, if the deleting
    /// transaction aborted. GC collapses the pair once no snapshot is
    /// positioned mid-scan.
    restored: Option<Rid>,
}

/// Per-transaction handles to the overlay entries it must flip at commit.
#[derive(Default)]
struct PendingSet {
    /// Rids whose `created` entry is `Pending(xid)`.
    inserts: Vec<Rid>,
    /// Rids of dead versions whose `end` is `Pending(xid)`.
    deletes: Vec<Rid>,
}

#[derive(Default)]
struct Inner {
    /// Creation stamps for rows not yet visible-to-all. Absence means the
    /// row predates the overlay: visible to every snapshot.
    created: HashMap<Rid, Begin>,
    /// Dead versions grouped by the page the row lived on, so a page scan
    /// merges exactly its own page's versions.
    dead: HashMap<PageId, Vec<DeadVersion>>,
    /// In-flight transactions' flip handles.
    pending: HashMap<u64, PendingSet>,
    /// Total dead versions (maintained incrementally; sizes the fast path).
    dead_count: usize,
}

/// Counters the STATS command surfaces for one table's overlay.
#[derive(Debug, Clone, Copy, Default)]
pub struct VersionStats {
    /// Live rows with a tracked creation stamp.
    pub created: u64,
    /// Dead versions retained for older snapshots.
    pub dead: u64,
    /// Transactions with unflipped entries.
    pub pending_txns: u64,
}

/// Counters from one garbage-collection pass over one table's overlay.
#[derive(Debug, Clone, Copy, Default)]
pub struct VacuumStats {
    /// Dead versions reclaimed.
    pub dead_removed: u64,
    /// Creation stamps reclaimed (rows now visible-to-all).
    pub created_removed: u64,
    /// Rollback anchor pairs collapsed back to plain live rows.
    pub anchors_collapsed: u64,
}

impl VacuumStats {
    /// Accumulate another pass's counters.
    pub fn add(&mut self, other: VacuumStats) {
        self.dead_removed += other.dead_removed;
        self.created_removed += other.created_removed;
        self.anchors_collapsed += other.anchors_collapsed;
    }
}

/// One table's version overlay. See the module docs for the scheme.
#[derive(Default)]
pub struct VersionStore {
    inner: Mutex<Inner>,
    /// `created.len() + dead_count`, mirrored outside the lock: scans skip
    /// the lock entirely while the overlay is empty.
    entries: AtomicUsize,
    /// Lifetime dead versions reclaimed by GC.
    gc_dead: AtomicU64,
    /// Lifetime creation stamps reclaimed by GC.
    gc_created: AtomicU64,
}

fn begin_visible(begin: Option<&Begin>, view: ReadView) -> bool {
    match begin {
        None => true,
        Some(Begin::At(t)) => *t <= view.ts,
        Some(Begin::Pending(x)) => view.xid != 0 && *x == view.xid,
        Some(Begin::Restored(_)) => false,
    }
}

/// Does `view` see this deletion (and therefore *not* the dead version)?
fn end_hides(end: End, view: ReadView) -> bool {
    match end {
        End::At(t) => t <= view.ts,
        End::Pending(x) => view.xid != 0 && x == view.xid,
    }
}

impl VersionStore {
    /// An empty overlay.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    fn publish_len(&self, inner: &Inner) {
        self.entries.store(inner.created.len() + inner.dead_count, Ordering::Release);
    }

    /// Record that `xid` inserted the row at `rid`.
    ///
    /// MUST be called from inside the page write latch that inserted the
    /// row (see `HeapFile::insert_with`): a reader decodes a page under the
    /// read latch *before* consulting the overlay, so registration must
    /// happen-before the row's bytes become readable or the reader could
    /// see an uncommitted row with no overlay entry.
    pub fn note_insert(&self, rid: Rid, xid: u64) {
        let mut inner = self.inner.lock();
        inner.created.insert(rid, Begin::Pending(xid));
        inner.pending.entry(xid).or_default().inserts.push(rid);
        self.publish_len(&inner);
    }

    /// Record that `xid` is deleting the row at `rid` whose encoded bytes
    /// are `bytes`.
    ///
    /// MUST be called *before* the heap delete: once registered, readers
    /// that miss the live row find the dead version; readers that still see
    /// the live row deduplicate against it (the overlay keeps the live
    /// row's creation stamp as a tombstone until GC).
    pub fn note_delete(&self, rid: Rid, bytes: Vec<u8>, xid: u64) {
        let mut inner = self.inner.lock();
        // Deleting a rollback-restored twin: the row's identity lives at
        // the anchor dead version. Re-point the anchor's end at this
        // deleter instead of minting a second version.
        if let Some(Begin::Restored(anchor)) = inner.created.get(&rid).cloned() {
            if let Some(list) = inner.dead.get_mut(&anchor.page) {
                if let Some(dv) = list.iter_mut().find(|d| d.rid == anchor) {
                    dv.end = End::Pending(xid);
                    dv.restored = None;
                    inner.pending.entry(xid).or_default().deletes.push(anchor);
                    return;
                }
            }
        }
        let begin = inner.created.get(&rid).cloned();
        let dv = DeadVersion { rid, bytes, begin, end: End::Pending(xid), restored: None };
        inner.dead.entry(rid.page).or_default().push(dv);
        inner.dead_count += 1;
        inner.pending.entry(xid).or_default().deletes.push(rid);
        self.publish_len(&inner);
    }

    /// Record that rollback re-inserted the row whose dead version sits at
    /// `old_rid`, landing the bytes at `new_rid`.
    ///
    /// The twin at `new_rid` is marked never-visible (`Begin::Restored`)
    /// and the dead version stays: a scan that already passed `new_rid`'s
    /// page still finds the row through the dead version at `old_rid`. GC
    /// collapses the pair once no snapshot is mid-scan.
    ///
    /// MUST be called from inside the page write latch of the re-insert.
    pub fn note_restore(&self, old_rid: Rid, new_rid: Rid) {
        let mut inner = self.inner.lock();
        // If the deleted row was itself a restored twin, its version
        // identity lives at the anchor (note_delete re-pointed the anchor's
        // end rather than minting a new dead version) — chase it so the
        // fresh twin anchors to the same place.
        let target = match inner.created.get(&old_rid) {
            Some(Begin::Restored(anchor)) => *anchor,
            _ => old_rid,
        };
        let Some(list) = inner.dead.get_mut(&target.page) else { return };
        let Some(dv) = list.iter_mut().find(|d| d.rid == target) else { return };
        dv.restored = Some(new_rid);
        inner.created.insert(new_rid, Begin::Restored(target));
        self.publish_len(&inner);
    }

    /// Flip all of `xid`'s pending entries to committed-at-`ts`.
    ///
    /// MUST be called from inside [`CommitOracle::commit`]'s critical
    /// section (its `publish` callback) so the flip and the advance of
    /// `latest` are atomic with respect to readers pinning snapshots.
    pub fn commit(&self, xid: u64, ts: u64) {
        let mut inner = self.inner.lock();
        let Some(set) = inner.pending.remove(&xid) else { return };
        for rid in set.inserts {
            if inner.created.get(&rid) == Some(&Begin::Pending(xid)) {
                inner.created.insert(rid, Begin::At(ts));
            }
        }
        for rid in set.deletes {
            if let Some(list) = inner.dead.get_mut(&rid.page) {
                if let Some(dv) = list.iter_mut().find(|d| d.rid == rid) {
                    if dv.end == End::Pending(xid) {
                        dv.end = End::At(ts);
                    }
                }
            }
        }
    }

    /// Drop `xid`'s flip handles after its undo log has been applied.
    ///
    /// The entries themselves stay: a `Pending(xid)` creation stamp keeps
    /// the (now heap-deleted) row invisible if a racing reader decoded it
    /// before the undo removed it, and a `Pending(xid)` deletion stamp on a
    /// dead version reads as "never deleted", which is exactly what a
    /// rolled-back delete means. GC reclaims them once `xid` is gone.
    pub fn abort(&self, xid: u64) {
        self.inner.lock().pending.remove(&xid);
    }

    /// Filter one decoded page through the overlay for `view`.
    ///
    /// `rows` holds the page's live rows as `(rid, tuple)` in slot order;
    /// on return it holds exactly the rows `view` can see (live rows whose
    /// creation is visible, plus merged dead versions whose deletion is
    /// not), again in slot order. `cols` is the scan's column pruning and
    /// is applied when decoding dead versions.
    pub fn filter_page(
        &self,
        view: ReadView,
        page: PageId,
        rows: &mut Vec<(Rid, Tuple)>,
        cols: Option<&[usize]>,
    ) -> StorageResult<()> {
        if self.entries.load(Ordering::Acquire) == 0 {
            return Ok(());
        }
        let inner = self.inner.lock();
        rows.retain(|(rid, _)| begin_visible(inner.created.get(rid), view));
        if let Some(list) = inner.dead.get(&page) {
            let mut merged = false;
            for dv in list {
                // A dead version whose live row is still on the page (the
                // register-then-delete window) would double-count: the live
                // copy already represents the row for views that see it.
                if rows.iter().any(|(rid, _)| *rid == dv.rid) {
                    continue;
                }
                if begin_visible(dv.begin.as_ref(), view) && !end_hides(dv.end, view) {
                    let tuple = match cols {
                        Some(c) => Tuple::decode_columns(&dv.bytes, c)?,
                        None => Tuple::decode(&dv.bytes)?,
                    };
                    rows.push((dv.rid, tuple));
                    merged = true;
                }
            }
            if merged {
                rows.sort_by_key(|(rid, _)| rid.slot);
            }
        }
        Ok(())
    }

    /// Is the row at `rid` (currently live in the heap) visible to `view`?
    pub fn row_visible(&self, view: ReadView, rid: Rid) -> bool {
        if self.entries.load(Ordering::Acquire) == 0 {
            return true;
        }
        begin_visible(self.inner.lock().created.get(&rid), view)
    }

    /// Overlay size counters for STATS.
    pub fn stats(&self) -> VersionStats {
        let inner = self.inner.lock();
        VersionStats {
            created: inner.created.len() as u64,
            dead: inner.dead_count as u64,
            pending_txns: inner.pending.len() as u64,
        }
    }

    /// Lifetime GC counters: `(dead_removed, created_removed)`.
    pub fn gc_totals(&self) -> (u64, u64) {
        (self.gc_dead.load(Ordering::Relaxed), self.gc_created.load(Ordering::Relaxed))
    }

    /// Garbage-collect the overlay. Only safe while no DML is in flight
    /// (the checkpoint stage's quiesce point): a transaction absent from
    /// `live_xids` is then guaranteed finished, not mid-commit.
    ///
    /// Timestamp-based reclamation (creation/deletion stamps at or below
    /// `min_active_ts`, the oldest pinned snapshot) is always safe. The
    /// position-dependent moves — collapsing a rollback anchor pair back to
    /// a plain live row, and reaping dead transactions' pending stamps —
    /// additionally require `pins_empty` (no reader is mid-scan at *any*
    /// timestamp, because a scan's progress through pages is what the
    /// anchor protects, not a timestamp).
    pub fn vacuum(
        &self,
        min_active_ts: u64,
        pins_empty: bool,
        live_xids: &HashSet<u64>,
    ) -> VacuumStats {
        let mut inner = self.inner.lock();
        let mut stats = VacuumStats::default();
        let inner = &mut *inner;

        // Dead versions.
        let mut collapse: Vec<Rid> = Vec::new();
        for list in inner.dead.values_mut() {
            list.retain(|dv| {
                let drop = match dv.end {
                    End::At(t) => t <= min_active_ts,
                    End::Pending(x) => {
                        if !pins_empty || live_xids.contains(&x) {
                            false
                        } else if let Some(nr) = dv.restored {
                            // Aborted delete, row restored at `nr`: collapse
                            // the pair — the twin becomes the plain row.
                            collapse.push(nr);
                            true
                        } else {
                            // Aborted insert-then-delete (begin also pending
                            // and dead): invisible to everyone forever.
                            matches!(dv.begin, Some(Begin::Pending(bx)) if !live_xids.contains(&bx))
                        }
                    }
                };
                if drop {
                    stats.dead_removed += 1;
                }
                !drop
            });
        }
        inner.dead.retain(|_, list| !list.is_empty());
        for nr in collapse {
            if matches!(inner.created.get(&nr), Some(Begin::Restored(_))) {
                inner.created.remove(&nr);
                stats.anchors_collapsed += 1;
            }
        }

        // Creation stamps. (Destructure for disjoint borrows: the closure
        // reads `dead` while retaining over `created`.)
        let Inner { created, dead, .. } = inner;
        created.retain(|_, b| {
            let drop = match b {
                Begin::At(t) => *t <= min_active_ts,
                Begin::Pending(x) => pins_empty && !live_xids.contains(x),
                // A Restored twin whose anchor disappeared above is
                // unreachable; reap it under the same conditions.
                Begin::Restored(anchor) => {
                    pins_empty
                        && !dead
                            .get(&anchor.page)
                            .is_some_and(|l| l.iter().any(|d| d.rid == *anchor))
                }
            };
            if drop {
                stats.created_removed += 1;
            }
            !drop
        });

        // Flip handles of finished transactions.
        if pins_empty {
            inner.pending.retain(|x, _| live_xids.contains(x));
        }

        inner.dead_count = inner.dead.values().map(Vec::len).sum();
        self.gc_dead.fetch_add(stats.dead_removed, Ordering::Relaxed);
        self.gc_created.fetch_add(stats.created_removed, Ordering::Relaxed);
        self.publish_len(inner);
        stats
    }

    /// Clear the overlay (recovery: only committed, visible-to-all rows
    /// survive a restart, so the rebuilt overlay is empty).
    pub fn reset(&self) {
        let mut inner = self.inner.lock();
        *inner = Inner::default();
        self.publish_len(&inner);
    }
}

#[derive(Default)]
struct OracleInner {
    latest: u64,
    /// Pinned snapshot timestamps with reference counts.
    pins: BTreeMap<u64, u64>,
}

/// The monotonic commit-timestamp authority.
///
/// Timestamp 0 is the beginning of time (everything loaded at recovery is
/// committed at 0); the first commit gets 1. A snapshot at `ts` sees every
/// version with commit timestamp `<= ts`.
#[derive(Default)]
pub struct CommitOracle {
    inner: Mutex<OracleInner>,
}

impl CommitOracle {
    /// A fresh oracle at timestamp 0.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// The latest committed timestamp.
    pub fn latest(&self) -> u64 {
        self.inner.lock().latest
    }

    /// Pin the current timestamp for a reader. The pin holds GC back until
    /// the guard drops.
    pub fn pin(self: &Arc<Self>) -> SnapshotGuard {
        let mut inner = self.inner.lock();
        let ts = inner.latest;
        *inner.pins.entry(ts).or_insert(0) += 1;
        SnapshotGuard { oracle: Arc::clone(self), ts }
    }

    /// Allocate the next commit timestamp, run `publish` (the version-store
    /// flips) with it, then advance `latest`. The whole sequence is one
    /// critical section: no reader can pin a timestamp whose versions are
    /// still mid-flip.
    pub fn commit<F: FnOnce(u64)>(&self, publish: F) -> u64 {
        let mut inner = self.inner.lock();
        let ts = inner.latest + 1;
        publish(ts);
        inner.latest = ts;
        ts
    }

    /// Number of snapshot pins currently held (diagnostics).
    pub fn pins(&self) -> u64 {
        self.inner.lock().pins.values().sum()
    }

    /// `(oldest pinned timestamp or latest if none, whether no pins exist)`
    /// — the GC horizon.
    pub fn min_active(&self) -> (u64, bool) {
        let inner = self.inner.lock();
        match inner.pins.keys().next() {
            Some(ts) => (*ts, false),
            None => (inner.latest, true),
        }
    }
}

/// RAII pin on a snapshot timestamp; dropping releases the pin.
pub struct SnapshotGuard {
    oracle: Arc<CommitOracle>,
    ts: u64,
}

impl SnapshotGuard {
    /// The pinned timestamp.
    pub fn ts(&self) -> u64 {
        self.ts
    }
}

impl std::fmt::Debug for SnapshotGuard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SnapshotGuard").field("ts", &self.ts).finish()
    }
}

impl Drop for SnapshotGuard {
    fn drop(&mut self) {
        let mut inner = self.oracle.inner.lock();
        if let Some(count) = inner.pins.get_mut(&self.ts) {
            *count -= 1;
            if *count == 0 {
                inner.pins.remove(&self.ts);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    fn row(n: i64) -> Tuple {
        Tuple::new(vec![Value::Int(n)])
    }

    fn page_rows(
        store: &VersionStore,
        view: ReadView,
        page: PageId,
        live: &[(u16, i64)],
    ) -> Vec<i64> {
        let mut rows: Vec<(Rid, Tuple)> =
            live.iter().map(|(s, n)| (Rid::new(page, *s), row(*n))).collect();
        store.filter_page(view, page, &mut rows, None).unwrap();
        rows.into_iter()
            .map(|(_, t)| match t.get(0) {
                Value::Int(n) => *n,
                other => panic!("unexpected {other:?}"),
            })
            .collect()
    }

    #[test]
    fn empty_overlay_is_transparent() {
        let store = VersionStore::new();
        let view = ReadView::new(0, 0);
        assert_eq!(page_rows(&store, view, PageId(1), &[(0, 10), (1, 20)]), vec![10, 20]);
    }

    #[test]
    fn pending_insert_visible_only_to_writer() {
        let store = VersionStore::new();
        let rid = Rid::new(PageId(1), 1);
        store.note_insert(rid, 7);
        assert_eq!(
            page_rows(&store, ReadView::new(5, 0), PageId(1), &[(0, 10), (1, 20)]),
            vec![10]
        );
        assert_eq!(
            page_rows(&store, ReadView::new(5, 7), PageId(1), &[(0, 10), (1, 20)]),
            vec![10, 20]
        );
        store.commit(7, 6);
        assert_eq!(
            page_rows(&store, ReadView::new(5, 0), PageId(1), &[(0, 10), (1, 20)]),
            vec![10]
        );
        assert_eq!(
            page_rows(&store, ReadView::new(6, 0), PageId(1), &[(0, 10), (1, 20)]),
            vec![10, 20]
        );
    }

    #[test]
    fn deleted_row_stays_visible_to_old_snapshots() {
        let store = VersionStore::new();
        let rid = Rid::new(PageId(3), 0);
        store.note_delete(rid, row(42).encode(), 9);
        // Register-then-delete window: live copy still present — no dup.
        assert_eq!(page_rows(&store, ReadView::new(1, 0), PageId(3), &[(0, 42)]), vec![42]);
        // After the heap delete: merged from the dead version.
        assert_eq!(page_rows(&store, ReadView::new(1, 0), PageId(3), &[]), vec![42]);
        // The deleter itself sees it gone.
        assert_eq!(page_rows(&store, ReadView::new(1, 9), PageId(3), &[]), Vec::<i64>::new());
        store.commit(9, 4);
        assert_eq!(page_rows(&store, ReadView::new(3, 0), PageId(3), &[]), vec![42]);
        assert_eq!(page_rows(&store, ReadView::new(4, 0), PageId(3), &[]), Vec::<i64>::new());
    }

    #[test]
    fn aborted_delete_keeps_row_via_anchor() {
        let store = VersionStore::new();
        let old = Rid::new(PageId(3), 0);
        let new = Rid::new(PageId(5), 2);
        store.note_delete(old, row(42).encode(), 9);
        // Rollback re-inserts on another page; twin is never visible live.
        store.note_restore(old, new);
        store.abort(9);
        assert_eq!(
            page_rows(&store, ReadView::new(1, 0), PageId(5), &[(2, 42)]),
            Vec::<i64>::new()
        );
        // ...but the anchor dead version serves every reader.
        assert_eq!(page_rows(&store, ReadView::new(1, 0), PageId(3), &[]), vec![42]);

        // GC with pins outstanding must not collapse the pair.
        let none = HashSet::new();
        let s = store.vacuum(10, false, &none);
        assert_eq!(s.dead_removed + s.created_removed, 0);
        // With no pins, the pair collapses back to a plain row.
        let s = store.vacuum(10, true, &none);
        assert_eq!(s.dead_removed, 1);
        assert_eq!(s.anchors_collapsed, 1);
        assert_eq!(page_rows(&store, ReadView::new(1, 0), PageId(5), &[(2, 42)]), vec![42]);
    }

    #[test]
    fn delete_of_restored_twin_chases_anchor() {
        let store = VersionStore::new();
        let old = Rid::new(PageId(3), 0);
        let new = Rid::new(PageId(5), 2);
        store.note_delete(old, row(42).encode(), 9);
        store.note_restore(old, new);
        store.abort(9);
        // A second transaction deletes the twin: the anchor's end flips.
        store.note_delete(new, row(42).encode(), 11);
        assert_eq!(page_rows(&store, ReadView::new(1, 0), PageId(3), &[]), vec![42]);
        store.commit(11, 2);
        assert_eq!(page_rows(&store, ReadView::new(1, 0), PageId(3), &[]), vec![42]);
        assert_eq!(page_rows(&store, ReadView::new(2, 0), PageId(3), &[]), Vec::<i64>::new());
        assert_eq!(
            page_rows(&store, ReadView::new(2, 0), PageId(5), &[(2, 42)]),
            Vec::<i64>::new()
        );
    }

    #[test]
    fn vacuum_reclaims_below_horizon_only() {
        let store = VersionStore::new();
        let rid = Rid::new(PageId(1), 0);
        store.note_delete(rid, row(1).encode(), 3);
        store.commit(3, 5);
        let none = HashSet::new();
        assert_eq!(store.vacuum(4, false, &none).dead_removed, 0);
        assert_eq!(page_rows(&store, ReadView::new(4, 0), PageId(1), &[]), vec![1]);
        assert_eq!(store.vacuum(5, false, &none).dead_removed, 1);
        assert_eq!(store.stats().dead, 0);
        assert_eq!(store.gc_totals().0, 1);
    }

    #[test]
    fn oracle_pins_bound_the_horizon() {
        let oracle = CommitOracle::new();
        assert_eq!(oracle.min_active(), (0, true));
        oracle.commit(|_| {});
        oracle.commit(|_| {});
        assert_eq!(oracle.latest(), 2);
        let pin = oracle.pin();
        assert_eq!(pin.ts(), 2);
        oracle.commit(|_| {});
        let pin2 = oracle.pin();
        assert_eq!(pin2.ts(), 3);
        assert_eq!(oracle.min_active(), (2, false));
        drop(pin);
        assert_eq!(oracle.min_active(), (3, false));
        drop(pin2);
        assert_eq!(oracle.min_active(), (3, true));
    }

    #[test]
    fn commit_publish_runs_inside_the_allocation() {
        let oracle = CommitOracle::new();
        let store = VersionStore::new();
        let rid = Rid::new(PageId(1), 0);
        store.note_insert(rid, 5);
        let ts = oracle.commit(|t| store.commit(5, t));
        assert_eq!(ts, 1);
        assert!(store.row_visible(ReadView::new(1, 0), rid));
        assert!(!store.row_visible(ReadView::new(0, 0), rid));
    }
}
