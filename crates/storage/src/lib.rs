//! # staged-storage — the storage manager
//!
//! The paper built on the SHORE storage manager; this crate is our from-
//! scratch Rust equivalent (DESIGN.md §4, substitution 1): typed values and
//! schemas, 8 KiB slotted pages, pluggable disk managers (in-memory and
//! file-backed, both with I/O accounting and optional simulated latency so
//! Workload A can be made I/O-bound deterministically), a buffer pool with
//! clock replacement, heap files, a page-backed B+tree, a write-ahead log,
//! and an in-memory catalog with table/column statistics for the optimizer.
//!
//! Everything above the disk manager is thread-safe; stages in the staged
//! server share one [`buffer::BufferPool`] and one [`catalog::Catalog`],
//! which is exactly the "unified buffer manager" argument of paper §5.2.

#![deny(missing_docs)]

pub mod btree;
pub mod buffer;
pub mod catalog;
pub mod disk;
pub mod error;
pub mod heap;
pub mod mvcc;
pub mod page;
pub mod partition;
pub mod schema;
pub mod segment;
pub mod snapshot;
pub mod stats;
pub mod tuple;
pub mod value;
pub mod wal;

pub use buffer::BufferPool;
pub use catalog::Catalog;
pub use disk::{DiskManager, FileDisk, MemDisk};
pub use error::{StorageError, StorageResult};
pub use mvcc::{CommitOracle, ReadView, SnapshotGuard, VacuumStats, VersionStats, VersionStore};
pub use page::{PageId, PAGE_SIZE};
pub use partition::{partition_of_value, PartitionedHeap};
pub use schema::{Column, Schema};
pub use segment::{FileSegmentStore, MemSegmentStore, SegmentStore};
pub use snapshot::{FileSnapshotStore, MemSnapshotStore, RestoreMaps, Snapshot, SnapshotStore};
pub use tuple::{Rid, Tuple};
pub use value::{DataType, Value};
pub use wal::{LogRecord, Lsn, Wal, DEFAULT_SEGMENT_PAGES};
