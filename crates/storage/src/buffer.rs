//! Buffer pool with clock (second-chance) replacement.
//!
//! One pool is shared by every stage of the server — the "unified buffer
//! manager" of paper §5.2. Pages are accessed through RAII [`PageGuard`]s
//! that pin the frame; I/O for misses and write-backs happens *outside* the
//! pool's mapping lock so that concurrent misses overlap on a latency-
//! simulating disk (this is what lets Workload A's I/O overlap once the
//! thread pool is large enough, §3.1.1).

use crate::disk::DiskManager;
use crate::error::{StorageError, StorageResult};
use crate::page::{PageId, PAGE_SIZE};
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Buffer-pool counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize)]
pub struct PoolStats {
    /// Fetches served from memory.
    pub hits: u64,
    /// Fetches that had to read from disk.
    pub misses: u64,
    /// Dirty pages written back during eviction.
    pub evictions: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct FrameMeta {
    page: Option<PageId>,
    pin: u32,
    dirty: bool,
    ref_bit: bool,
    io_pending: bool,
}

impl FrameMeta {
    const EMPTY: FrameMeta =
        FrameMeta { page: None, pin: 0, dirty: false, ref_bit: false, io_pending: false };
}

struct PoolInner {
    page_table: HashMap<PageId, usize>,
    meta: Vec<FrameMeta>,
    clock: usize,
}

/// The buffer pool.
pub struct BufferPool {
    disk: Arc<dyn DiskManager>,
    frames: Vec<RwLock<Box<[u8; PAGE_SIZE]>>>,
    inner: Mutex<PoolInner>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl BufferPool {
    /// A pool of `capacity` frames over `disk`.
    pub fn new(disk: Arc<dyn DiskManager>, capacity: usize) -> Arc<Self> {
        let capacity = capacity.max(1);
        Arc::new(Self {
            disk,
            frames: (0..capacity).map(|_| RwLock::new(Box::new([0u8; PAGE_SIZE]))).collect(),
            inner: Mutex::new(PoolInner {
                page_table: HashMap::with_capacity(capacity),
                meta: vec![FrameMeta::EMPTY; capacity],
                clock: 0,
            }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        })
    }

    /// Number of frames.
    pub fn capacity(&self) -> usize {
        self.frames.len()
    }

    /// The underlying disk manager.
    pub fn disk(&self) -> &Arc<dyn DiskManager> {
        &self.disk
    }

    /// Counters.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }

    /// Allocate a fresh page on disk and pin it (zeroed, not yet formatted).
    pub fn new_page(self: &Arc<Self>) -> StorageResult<PageGuard> {
        let page = self.disk.allocate()?;
        // The zeroed page is "read" logically; install without disk read.
        let frame = self.install(page, false)?;
        Ok(PageGuard { pool: Arc::clone(self), frame, page })
    }

    /// Fetch a page, reading it from disk on a miss.
    pub fn fetch(self: &Arc<Self>, page: PageId) -> StorageResult<PageGuard> {
        let frame = self.install(page, true)?;
        Ok(PageGuard { pool: Arc::clone(self), frame, page })
    }

    /// Map `page` to a pinned frame; `read_from_disk` controls miss filling.
    fn install(&self, page: PageId, read_from_disk: bool) -> StorageResult<usize> {
        loop {
            let victim = {
                let mut inner = self.inner.lock();
                if let Some(&f) = inner.page_table.get(&page) {
                    if inner.meta[f].io_pending {
                        // Another thread is filling this frame; wait briefly.
                        drop(inner);
                        std::thread::yield_now();
                        continue;
                    }
                    inner.meta[f].pin += 1;
                    inner.meta[f].ref_bit = true;
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    return Ok(f);
                }
                // Miss: pick a victim with the clock.
                let f = self.find_victim(&mut inner)?;
                let old = inner.meta[f];
                inner.meta[f] = FrameMeta {
                    page: Some(page),
                    pin: 1,
                    dirty: false,
                    ref_bit: true,
                    io_pending: true,
                };
                if let Some(old_page) = old.page {
                    inner.page_table.remove(&old_page);
                }
                inner.page_table.insert(page, f);
                self.misses.fetch_add(1, Ordering::Relaxed);
                (f, old)
            };
            let (f, old) = victim;
            // I/O outside the mapping lock.
            let io_result = (|| -> StorageResult<()> {
                let mut data = self.frames[f].write();
                if old.dirty {
                    let old_page = old.page.expect("dirty frame must hold a page");
                    self.disk.write_page(old_page, &data[..])?;
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                }
                if read_from_disk {
                    self.disk.read_page(page, &mut data[..])?;
                } else {
                    data.fill(0);
                }
                Ok(())
            })();
            let mut inner = self.inner.lock();
            match io_result {
                Ok(()) => {
                    inner.meta[f].io_pending = false;
                    return Ok(f);
                }
                Err(e) => {
                    // Roll the mapping back so the frame is reusable.
                    inner.page_table.remove(&page);
                    inner.meta[f] = FrameMeta::EMPTY;
                    return Err(e);
                }
            }
        }
    }

    /// Clock sweep; two full passes before giving up.
    fn find_victim(&self, inner: &mut PoolInner) -> StorageResult<usize> {
        let n = inner.meta.len();
        for _ in 0..2 * n {
            let f = inner.clock;
            inner.clock = (inner.clock + 1) % n;
            let m = &mut inner.meta[f];
            if m.pin > 0 || m.io_pending {
                continue;
            }
            if m.ref_bit {
                m.ref_bit = false;
                continue;
            }
            return Ok(f);
        }
        Err(StorageError::PoolExhausted)
    }

    /// Write every dirty frame back to disk (checkpoint).
    pub fn flush_all(&self) -> StorageResult<()> {
        for f in 0..self.frames.len() {
            let page = {
                let mut inner = self.inner.lock();
                let m = &mut inner.meta[f];
                match (m.page, m.dirty, m.io_pending) {
                    (Some(p), true, false) => {
                        m.dirty = false;
                        Some(p)
                    }
                    _ => None,
                }
            };
            if let Some(p) = page {
                let data = self.frames[f].read();
                self.disk.write_page(p, &data[..])?;
            }
        }
        Ok(())
    }

    fn unpin(&self, frame: usize) {
        let mut inner = self.inner.lock();
        let m = &mut inner.meta[frame];
        debug_assert!(m.pin > 0, "unpin of unpinned frame");
        m.pin -= 1;
        m.ref_bit = true;
    }

    fn mark_dirty(&self, frame: usize) {
        self.inner.lock().meta[frame].dirty = true;
    }

    #[cfg(test)]
    fn pin_count(&self, page: PageId) -> Option<u32> {
        let inner = self.inner.lock();
        inner.page_table.get(&page).map(|&f| inner.meta[f].pin)
    }
}

/// RAII pin on a page; unpins on drop.
pub struct PageGuard {
    pool: Arc<BufferPool>,
    frame: usize,
    page: PageId,
}

impl PageGuard {
    /// The page this guard pins.
    pub fn page_id(&self) -> PageId {
        self.page
    }

    /// Read access to the page bytes.
    pub fn read<R>(&self, f: impl FnOnce(&[u8]) -> R) -> R {
        let data = self.pool.frames[self.frame].read();
        f(&data[..])
    }

    /// Write access to the page bytes; marks the frame dirty.
    pub fn write<R>(&self, f: impl FnOnce(&mut [u8]) -> R) -> R {
        let mut data = self.pool.frames[self.frame].write();
        self.pool.mark_dirty(self.frame);
        f(&mut data[..])
    }
}

impl Drop for PageGuard {
    fn drop(&mut self) {
        self.pool.unpin(self.frame);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::MemDisk;

    fn pool(frames: usize) -> Arc<BufferPool> {
        BufferPool::new(Arc::new(MemDisk::new()), frames)
    }

    #[test]
    fn new_page_is_zeroed_and_writable() {
        let p = pool(4);
        let g = p.new_page().unwrap();
        g.read(|d| assert!(d.iter().all(|&b| b == 0)));
        g.write(|d| d[0] = 9);
        g.read(|d| assert_eq!(d[0], 9));
    }

    #[test]
    fn eviction_writes_back_dirty_pages() {
        let p = pool(2);
        let id0 = {
            let g = p.new_page().unwrap();
            g.write(|d| d[0] = 111);
            g.page_id()
        };
        // Fill the pool with other pages to force eviction of page 0.
        for _ in 0..4 {
            let g = p.new_page().unwrap();
            g.write(|d| d[1] = 1);
        }
        let g = p.fetch(id0).unwrap();
        g.read(|d| assert_eq!(d[0], 111, "dirty data must survive eviction"));
        assert!(p.stats().evictions > 0);
    }

    #[test]
    fn pinned_pages_are_not_evicted() {
        let p = pool(2);
        let g0 = p.new_page().unwrap();
        let _g1 = p.new_page().unwrap();
        // Both frames pinned: a third page cannot be installed.
        assert!(matches!(p.new_page(), Err(StorageError::PoolExhausted)));
        drop(g0);
        // Now one frame is free.
        assert!(p.new_page().is_ok());
    }

    #[test]
    fn fetch_hit_does_not_touch_disk() {
        let disk = Arc::new(MemDisk::new());
        let p = BufferPool::new(Arc::clone(&disk) as Arc<dyn DiskManager>, 4);
        let id = p.new_page().unwrap().page_id();
        let before = disk.stats().reads;
        for _ in 0..10 {
            let _ = p.fetch(id).unwrap();
        }
        assert_eq!(disk.stats().reads, before, "hits must not read disk");
        assert_eq!(p.stats().hits, 10);
    }

    #[test]
    fn flush_all_persists_dirty_pages() {
        let disk = Arc::new(MemDisk::new());
        let p = BufferPool::new(Arc::clone(&disk) as Arc<dyn DiskManager>, 4);
        let id = {
            let g = p.new_page().unwrap();
            g.write(|d| d[3] = 77);
            g.page_id()
        };
        p.flush_all().unwrap();
        let mut buf = [0u8; PAGE_SIZE];
        disk.read_page(id, &mut buf).unwrap();
        assert_eq!(buf[3], 77);
    }

    #[test]
    fn guard_drop_unpins() {
        let p = pool(2);
        let id = {
            let g = p.new_page().unwrap();
            assert_eq!(p.pin_count(g.page_id()), Some(1));
            g.page_id()
        };
        assert_eq!(p.pin_count(id), Some(0));
        let g1 = p.fetch(id).unwrap();
        let g2 = p.fetch(id).unwrap();
        assert_eq!(p.pin_count(id), Some(2));
        drop(g1);
        drop(g2);
        assert_eq!(p.pin_count(id), Some(0));
    }

    #[test]
    fn concurrent_fetches_are_consistent() {
        let p = pool(8);
        let ids: Vec<PageId> = (0..16)
            .map(|i| {
                let g = p.new_page().unwrap();
                g.write(|d| d[0] = i as u8);
                g.page_id()
            })
            .collect();
        let mut handles = vec![];
        for t in 0..4 {
            let p = Arc::clone(&p);
            let ids = ids.clone();
            handles.push(std::thread::spawn(move || {
                for round in 0..50 {
                    let idx = (t * 7 + round * 3) % ids.len();
                    let g = p.fetch(ids[idx]).unwrap();
                    g.read(|d| assert_eq!(d[0], idx as u8));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }
}
