//! Disk managers: where pages live when they are not in the buffer pool.
//!
//! Two implementations share the [`DiskManager`] trait: [`MemDisk`] (pages
//! in a `Vec`, with optional *simulated* per-I/O latency so experiments can
//! make a workload I/O-bound deterministically — DESIGN.md §4, substitution
//! 3) and [`FileDisk`] (a real file, for durability-flavoured tests).
//! Both count reads and writes; the Figure 2 calibration and the stage
//! monitors consume those counters.

use crate::error::{StorageError, StorageResult};
use crate::page::{PageId, PAGE_SIZE};
use parking_lot::Mutex;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// I/O counters of a disk manager.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize)]
pub struct IoStats {
    /// Pages read.
    pub reads: u64,
    /// Pages written.
    pub writes: u64,
    /// Pages allocated.
    pub allocations: u64,
    /// Durability syncs (`fsync`-class barriers; counted even where the
    /// barrier itself is a no-op, as on [`MemDisk`]).
    pub syncs: u64,
}

impl IoStats {
    /// Fold another counter snapshot into this one (used by segment stores
    /// to keep totals across deleted segments).
    pub fn absorb(&mut self, other: &IoStats) {
        self.reads += other.reads;
        self.writes += other.writes;
        self.allocations += other.allocations;
        self.syncs += other.syncs;
    }
}

/// Abstract page store.
pub trait DiskManager: Send + Sync {
    /// Allocate a fresh page (zeroed) and return its id.
    fn allocate(&self) -> StorageResult<PageId>;

    /// Read a page into `buf` (`buf.len() == PAGE_SIZE`).
    fn read_page(&self, page: PageId, buf: &mut [u8]) -> StorageResult<()>;

    /// Write a page from `buf`.
    fn write_page(&self, page: PageId, buf: &[u8]) -> StorageResult<()>;

    /// Number of allocated pages.
    fn num_pages(&self) -> u64;

    /// Force previously written pages to stable storage (a durability
    /// barrier). A page write alone only reaches the OS page cache on a
    /// real file; the WAL's commit protocol is a lie without this. In-memory
    /// disks count the call and return; [`FileDisk`] issues `sync_data`.
    fn sync(&self) -> StorageResult<()>;

    /// I/O counters.
    fn stats(&self) -> IoStats;

    /// Simulated or real expected per-I/O latency, if any (used by stage
    /// logic to report I/O-blocked time to the monitors).
    fn io_latency(&self) -> Option<Duration> {
        None
    }
}

struct Counters {
    reads: AtomicU64,
    writes: AtomicU64,
    allocations: AtomicU64,
    syncs: AtomicU64,
}

impl Counters {
    fn new() -> Self {
        Self {
            reads: AtomicU64::new(0),
            writes: AtomicU64::new(0),
            allocations: AtomicU64::new(0),
            syncs: AtomicU64::new(0),
        }
    }

    fn snapshot(&self) -> IoStats {
        IoStats {
            reads: self.reads.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
            allocations: self.allocations.load(Ordering::Relaxed),
            syncs: self.syncs.load(Ordering::Relaxed),
        }
    }
}

/// In-memory disk with optional simulated latency and a capacity limit.
pub struct MemDisk {
    pages: Mutex<Vec<Box<[u8; PAGE_SIZE]>>>,
    counters: Counters,
    latency: Option<Duration>,
    max_pages: u64,
}

impl MemDisk {
    /// Unlimited in-memory disk with no latency.
    pub fn new() -> Self {
        Self {
            pages: Mutex::new(Vec::new()),
            counters: Counters::new(),
            latency: None,
            max_pages: u64::MAX,
        }
    }

    /// Add a simulated latency applied to every read and write (a real
    /// `sleep`, making I/O-bound workloads behave as such in wall-clock
    /// experiments).
    pub fn with_latency(mut self, latency: Duration) -> Self {
        self.latency = Some(latency);
        self
    }

    /// Cap the disk at `max_pages` (allocation beyond it fails with
    /// [`StorageError::DiskFull`] — used by failure-injection tests).
    pub fn with_capacity(mut self, max_pages: u64) -> Self {
        self.max_pages = max_pages;
        self
    }

    fn pause(&self) {
        if let Some(l) = self.latency {
            std::thread::sleep(l);
        }
    }
}

impl Default for MemDisk {
    fn default() -> Self {
        Self::new()
    }
}

impl DiskManager for MemDisk {
    fn allocate(&self) -> StorageResult<PageId> {
        let mut pages = self.pages.lock();
        if pages.len() as u64 >= self.max_pages {
            return Err(StorageError::DiskFull);
        }
        pages.push(Box::new([0u8; PAGE_SIZE]));
        self.counters.allocations.fetch_add(1, Ordering::Relaxed);
        Ok(PageId(pages.len() as u64 - 1))
    }

    fn read_page(&self, page: PageId, buf: &mut [u8]) -> StorageResult<()> {
        self.pause();
        let pages = self.pages.lock();
        let src = pages.get(page.0 as usize).ok_or(StorageError::InvalidPage(page.0))?;
        buf.copy_from_slice(&src[..]);
        self.counters.reads.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    fn write_page(&self, page: PageId, buf: &[u8]) -> StorageResult<()> {
        self.pause();
        let mut pages = self.pages.lock();
        let dst = pages.get_mut(page.0 as usize).ok_or(StorageError::InvalidPage(page.0))?;
        dst.copy_from_slice(buf);
        self.counters.writes.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    fn num_pages(&self) -> u64 {
        self.pages.lock().len() as u64
    }

    fn sync(&self) -> StorageResult<()> {
        // Memory is "stable" by definition here; only the counter matters,
        // so tests can assert the commit protocol issues its barriers.
        self.counters.syncs.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    fn stats(&self) -> IoStats {
        self.counters.snapshot()
    }

    fn io_latency(&self) -> Option<Duration> {
        self.latency
    }
}

/// File-backed disk manager.
pub struct FileDisk {
    file: Mutex<File>,
    num_pages: AtomicU64,
    counters: Counters,
}

impl FileDisk {
    /// Open (or create) a database file.
    pub fn open(path: impl AsRef<Path>) -> StorageResult<Self> {
        // Never truncate: opening an existing database must keep its pages.
        let file =
            OpenOptions::new().read(true).write(true).create(true).truncate(false).open(path)?;
        let len = file.metadata()?.len();
        Ok(Self {
            file: Mutex::new(file),
            num_pages: AtomicU64::new(len / PAGE_SIZE as u64),
            counters: Counters::new(),
        })
    }
}

impl DiskManager for FileDisk {
    fn allocate(&self) -> StorageResult<PageId> {
        let id = self.num_pages.fetch_add(1, Ordering::SeqCst);
        let mut f = self.file.lock();
        f.seek(SeekFrom::Start(id * PAGE_SIZE as u64))?;
        f.write_all(&[0u8; PAGE_SIZE])?;
        self.counters.allocations.fetch_add(1, Ordering::Relaxed);
        Ok(PageId(id))
    }

    fn read_page(&self, page: PageId, buf: &mut [u8]) -> StorageResult<()> {
        if page.0 >= self.num_pages.load(Ordering::SeqCst) {
            return Err(StorageError::InvalidPage(page.0));
        }
        let mut f = self.file.lock();
        f.seek(SeekFrom::Start(page.0 * PAGE_SIZE as u64))?;
        f.read_exact(buf)?;
        self.counters.reads.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    fn write_page(&self, page: PageId, buf: &[u8]) -> StorageResult<()> {
        if page.0 >= self.num_pages.load(Ordering::SeqCst) {
            return Err(StorageError::InvalidPage(page.0));
        }
        let mut f = self.file.lock();
        f.seek(SeekFrom::Start(page.0 * PAGE_SIZE as u64))?;
        f.write_all(buf)?;
        self.counters.writes.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    fn num_pages(&self) -> u64 {
        self.num_pages.load(Ordering::SeqCst)
    }

    fn sync(&self) -> StorageResult<()> {
        self.file.lock().sync_data()?;
        self.counters.syncs.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    fn stats(&self) -> IoStats {
        self.counters.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(disk: &dyn DiskManager) {
        let p = disk.allocate().unwrap();
        let mut w = [0u8; PAGE_SIZE];
        w[0] = 0xAB;
        w[PAGE_SIZE - 1] = 0xCD;
        disk.write_page(p, &w).unwrap();
        let mut r = [0u8; PAGE_SIZE];
        disk.read_page(p, &mut r).unwrap();
        assert_eq!(r[0], 0xAB);
        assert_eq!(r[PAGE_SIZE - 1], 0xCD);
        disk.sync().unwrap();
        let s = disk.stats();
        assert_eq!(s.reads, 1);
        assert_eq!(s.writes, 1);
        assert_eq!(s.allocations, 1);
        assert_eq!(s.syncs, 1);
    }

    #[test]
    fn mem_disk_roundtrip() {
        roundtrip(&MemDisk::new());
    }

    #[test]
    fn file_disk_roundtrip() {
        let dir = std::env::temp_dir().join(format!("staged-db-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("disk-roundtrip.db");
        let _ = std::fs::remove_file(&path);
        roundtrip(&FileDisk::open(&path).unwrap());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn file_disk_persists_across_reopen() {
        let dir = std::env::temp_dir().join(format!("staged-db-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("disk-reopen.db");
        let _ = std::fs::remove_file(&path);
        {
            let d = FileDisk::open(&path).unwrap();
            let p = d.allocate().unwrap();
            let mut w = [0u8; PAGE_SIZE];
            w[7] = 42;
            d.write_page(p, &w).unwrap();
        }
        let d2 = FileDisk::open(&path).unwrap();
        assert_eq!(d2.num_pages(), 1);
        let mut r = [0u8; PAGE_SIZE];
        d2.read_page(PageId(0), &mut r).unwrap();
        assert_eq!(r[7], 42);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn invalid_page_is_error() {
        let d = MemDisk::new();
        let mut buf = [0u8; PAGE_SIZE];
        assert!(d.read_page(PageId(0), &mut buf).is_err());
        assert!(d.write_page(PageId(5), &buf).is_err());
    }

    #[test]
    fn capacity_limit_reports_disk_full() {
        let d = MemDisk::new().with_capacity(2);
        d.allocate().unwrap();
        d.allocate().unwrap();
        assert!(matches!(d.allocate(), Err(StorageError::DiskFull)));
    }

    #[test]
    fn latency_is_reported() {
        let d = MemDisk::new().with_latency(Duration::from_micros(50));
        assert_eq!(d.io_latency(), Some(Duration::from_micros(50)));
    }
}
