//! Checkpoint snapshots: a serialized image of the catalog's tables and
//! indexes, anchored at a WAL address.
//!
//! A snapshot is captured under quiesced writers (the engine's checkpoint
//! stage takes every partition lock first), labeled with the LSN the WAL
//! was rotated to, and saved atomically through a [`SnapshotStore`].
//! Recovery then becomes: restore the snapshot, replay only the WAL tail
//! at or after [`Snapshot::lsn`]. The whole encoding ends in a CRC-32
//! (same checksum as the WAL pages), so a half-written or bit-rotted
//! snapshot is a detected [`StorageError::Corrupt`], never garbage tables.
//!
//! Restoring re-creates tables and indexes through the normal catalog
//! paths, which assign *fresh* table ids and rids. [`RestoreMaps`] carries
//! the old→new translations so WAL-tail replay can rewrite the addresses
//! baked into its records.

use crate::catalog::Catalog;
use crate::error::{StorageError, StorageResult};
use crate::schema::{Column, Schema};
use crate::tuple::{Rid, Tuple};
use crate::value::DataType;
use crate::wal::{crc32, Lsn};
use parking_lot::Mutex;
use std::collections::{HashMap, HashSet};
use std::path::{Path, PathBuf};

const MAGIC: &[u8; 8] = b"SDBSNAP1";

/// Durable home of the latest checkpoint snapshot.
pub trait SnapshotStore: Send + Sync {
    /// Atomically replace the stored snapshot with `bytes`: a crash during
    /// save must leave either the old snapshot or the new one, never a
    /// torn mix.
    fn save(&self, bytes: &[u8]) -> StorageResult<()>;

    /// The stored snapshot, if one has ever been saved.
    fn load(&self) -> StorageResult<Option<Vec<u8>>>;
}

/// In-memory snapshot store (tests, benches).
#[derive(Default)]
pub struct MemSnapshotStore {
    data: Mutex<Option<Vec<u8>>>,
}

impl MemSnapshotStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }
}

impl SnapshotStore for MemSnapshotStore {
    fn save(&self, bytes: &[u8]) -> StorageResult<()> {
        *self.data.lock() = Some(bytes.to_vec());
        Ok(())
    }

    fn load(&self) -> StorageResult<Option<Vec<u8>>> {
        Ok(self.data.lock().clone())
    }
}

/// File-backed snapshot store: write-to-temp then rename, the classic
/// atomic-replace idiom.
pub struct FileSnapshotStore {
    path: PathBuf,
}

impl FileSnapshotStore {
    /// A store at `path` (the parent directory must exist).
    pub fn new(path: impl AsRef<Path>) -> Self {
        Self { path: path.as_ref().to_path_buf() }
    }
}

impl SnapshotStore for FileSnapshotStore {
    fn save(&self, bytes: &[u8]) -> StorageResult<()> {
        let tmp = self.path.with_extension("tmp");
        std::fs::write(&tmp, bytes)?;
        // Durability before visibility: sync the temp file, then rename.
        let f = std::fs::File::open(&tmp)?;
        f.sync_all()?;
        drop(f);
        std::fs::rename(&tmp, &self.path)?;
        Ok(())
    }

    fn load(&self) -> StorageResult<Option<Vec<u8>>> {
        match std::fs::read(&self.path) {
            Ok(bytes) => Ok(Some(bytes)),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e.into()),
        }
    }
}

/// One table's image inside a snapshot.
pub struct TableSnapshot {
    /// Lower-cased table name.
    pub name: String,
    /// The table id at capture time — WAL records reference this id.
    pub old_id: u32,
    /// Hash-partition count.
    pub partitions: u32,
    /// Hash-key column.
    pub key: u32,
    /// Column layout.
    pub schema: Schema,
    /// `(rid at capture time, encoded tuple)` for every live row.
    pub rows: Vec<(Rid, Vec<u8>)>,
}

/// One index's description inside a snapshot (its B+tree is rebuilt from
/// the restored heap rather than serialized).
pub struct IndexSnapshot {
    /// Lower-cased index name.
    pub name: String,
    /// Indexed table's name.
    pub table: String,
    /// Indexed column's name.
    pub column: String,
}

/// Old-address → new-address translations produced by a restore, for
/// rewriting the WAL tail's table ids and rids during replay.
#[derive(Default)]
pub struct RestoreMaps {
    /// Table id at capture time → table id in the restored catalog.
    pub tables: HashMap<u32, u32>,
    /// `(old table id, old rid)` → rid in the restored heap.
    pub rids: HashMap<(u32, Rid), Rid>,
}

/// A point-in-time image of every table and index, anchored at a WAL LSN.
pub struct Snapshot {
    /// Replay the WAL from here after restoring.
    pub lsn: Lsn,
    /// Tables, in catalog (name) order.
    pub tables: Vec<TableSnapshot>,
    /// Index definitions.
    pub indexes: Vec<IndexSnapshot>,
}

fn ty_code(ty: DataType) -> u8 {
    match ty {
        DataType::Int => 0,
        DataType::Float => 1,
        DataType::Str => 2,
        DataType::Bool => 3,
    }
}

fn ty_from(code: u8) -> Option<DataType> {
    match code {
        0 => Some(DataType::Int),
        1 => Some(DataType::Float),
        2 => Some(DataType::Str),
        3 => Some(DataType::Bool),
        _ => None,
    }
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

/// Bounds-checked byte cursor: every read can fail with `Corrupt`, so a
/// truncated snapshot is an error, not a panic.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> StorageResult<&'a [u8]> {
        let s = self
            .buf
            .get(self.pos..self.pos + n)
            .ok_or_else(|| StorageError::Corrupt("truncated snapshot".into()))?;
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> StorageResult<u8> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> StorageResult<u16> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> StorageResult<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> StorageResult<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn string(&mut self) -> StorageResult<String> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| StorageError::Corrupt("snapshot string not UTF-8".into()))
    }
}

impl Snapshot {
    /// Capture the current state of `catalog`, anchored at `lsn`. The
    /// caller is responsible for quiescing writers first — the engine's
    /// checkpoint stage holds every partition lock across this call.
    pub fn capture(catalog: &Catalog, lsn: Lsn) -> StorageResult<Snapshot> {
        let mut tables = Vec::new();
        let mut indexes = Vec::new();
        for info in catalog.list_tables() {
            let mut rows = Vec::new();
            for item in info.heap.scan() {
                let (rid, tuple) = item?;
                rows.push((rid, tuple.encode()));
            }
            tables.push(TableSnapshot {
                name: info.name.clone(),
                old_id: info.id.0,
                partitions: info.partitions() as u32,
                key: info.partition_key() as u32,
                schema: info.schema.clone(),
                rows,
            });
            for ix in catalog.indexes_for(info.id) {
                indexes.push(IndexSnapshot {
                    name: ix.name.clone(),
                    table: info.name.clone(),
                    column: info.schema.column(ix.column).name.clone(),
                });
            }
        }
        Ok(Snapshot { lsn, tables, indexes })
    }

    /// Serialize: magic, LSN, tables (schema + rows), index definitions,
    /// trailing CRC-32 over everything before it.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&self.lsn.segment.to_le_bytes());
        out.extend_from_slice(&self.lsn.offset.to_le_bytes());
        out.extend_from_slice(&(self.tables.len() as u32).to_le_bytes());
        for t in &self.tables {
            put_str(&mut out, &t.name);
            out.extend_from_slice(&t.old_id.to_le_bytes());
            out.extend_from_slice(&t.partitions.to_le_bytes());
            out.extend_from_slice(&t.key.to_le_bytes());
            out.extend_from_slice(&(t.schema.len() as u32).to_le_bytes());
            for c in t.schema.columns() {
                put_str(&mut out, &c.name);
                out.push(ty_code(c.ty));
                out.push(c.nullable as u8);
            }
            out.extend_from_slice(&(t.rows.len() as u64).to_le_bytes());
            for (rid, bytes) in &t.rows {
                out.extend_from_slice(&rid.page.0.to_le_bytes());
                out.extend_from_slice(&rid.slot.to_le_bytes());
                out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
                out.extend_from_slice(bytes);
            }
        }
        out.extend_from_slice(&(self.indexes.len() as u32).to_le_bytes());
        for ix in &self.indexes {
            put_str(&mut out, &ix.name);
            put_str(&mut out, &ix.table);
            put_str(&mut out, &ix.column);
        }
        let crc = crc32(&out);
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }

    /// Deserialize, verifying the magic and the trailing checksum. Any
    /// truncation, bit rot, or structural damage is
    /// [`StorageError::Corrupt`] — never a panic.
    pub fn decode(bytes: &[u8]) -> StorageResult<Snapshot> {
        if bytes.len() < MAGIC.len() + 4 {
            return Err(StorageError::Corrupt("snapshot too short".into()));
        }
        let (body, tail) = bytes.split_at(bytes.len() - 4);
        let stored = u32::from_le_bytes(tail.try_into().unwrap());
        if crc32(body) != stored {
            return Err(StorageError::Corrupt("snapshot checksum mismatch".into()));
        }
        let mut c = Cursor { buf: body, pos: 0 };
        if c.take(MAGIC.len())? != MAGIC {
            return Err(StorageError::Corrupt("bad snapshot magic".into()));
        }
        let lsn = Lsn { segment: c.u64()?, offset: c.u64()? };
        let n_tables = c.u32()? as usize;
        let mut tables = Vec::new();
        for _ in 0..n_tables {
            let name = c.string()?;
            let old_id = c.u32()?;
            let partitions = c.u32()?;
            let key = c.u32()?;
            let n_cols = c.u32()? as usize;
            let mut cols = Vec::with_capacity(n_cols);
            let mut seen = HashSet::new();
            for _ in 0..n_cols {
                let cname = c.string()?;
                if !seen.insert(cname.clone()) {
                    return Err(StorageError::Corrupt(format!(
                        "snapshot duplicates column {cname}"
                    )));
                }
                let ty = ty_from(c.u8()?)
                    .ok_or_else(|| StorageError::Corrupt("unknown column type".into()))?;
                let nullable = c.u8()? != 0;
                cols.push(Column { name: cname, ty, nullable });
            }
            if partitions == 0 || (key as usize) >= cols.len() {
                return Err(StorageError::Corrupt(format!(
                    "snapshot table {name}: bad partitioning ({partitions} parts, key {key})"
                )));
            }
            let schema = Schema::new(cols);
            let n_rows = c.u64()? as usize;
            let mut rows = Vec::new();
            for _ in 0..n_rows {
                let page = c.u64()?;
                let slot = c.u16()?;
                let len = c.u32()? as usize;
                let bytes = c.take(len)?.to_vec();
                rows.push((Rid::new(crate::page::PageId(page), slot), bytes));
            }
            tables.push(TableSnapshot { name, old_id, partitions, key, schema, rows });
        }
        let n_indexes = c.u32()? as usize;
        let mut indexes = Vec::new();
        for _ in 0..n_indexes {
            indexes.push(IndexSnapshot {
                name: c.string()?,
                table: c.string()?,
                column: c.string()?,
            });
        }
        if c.pos != body.len() {
            return Err(StorageError::Corrupt("snapshot has trailing bytes".into()));
        }
        Ok(Snapshot { lsn, tables, indexes })
    }

    /// Rebuild every table and index into an **empty** catalog. Rows are
    /// re-inserted through normal hash routing (the partition hash is
    /// deterministic, so each row lands in the same partition it was
    /// captured from) and indexes are bulk-loaded from the restored heap.
    /// Returns the old→new address maps for WAL-tail replay.
    pub fn restore(&self, catalog: &Catalog) -> StorageResult<RestoreMaps> {
        if !catalog.list_tables().is_empty() {
            return Err(StorageError::AlreadyExists(
                "snapshot restore needs an empty catalog".into(),
            ));
        }
        let mut maps = RestoreMaps::default();
        for t in &self.tables {
            let info = catalog.create_table_partitioned(
                &t.name,
                t.schema.clone(),
                t.partitions as usize,
                t.key as usize,
            )?;
            maps.tables.insert(t.old_id, info.id.0);
            for (old_rid, bytes) in &t.rows {
                let tuple = Tuple::decode(bytes)?;
                let (_, new_rid) = info.heap.insert_routed(&tuple)?;
                maps.rids.insert((t.old_id, *old_rid), new_rid);
            }
        }
        for ix in &self.indexes {
            catalog.create_index(&ix.name, &ix.table, &ix.column)?;
        }
        Ok(maps)
    }

    /// Total rows across all tables (reporting).
    pub fn row_count(&self) -> u64 {
        self.tables.iter().map(|t| t.rows.len() as u64).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::BufferPool;
    use crate::disk::MemDisk;
    use crate::value::Value;
    use std::sync::Arc;

    fn catalog() -> Catalog {
        Catalog::new(BufferPool::new(Arc::new(MemDisk::new()), 256))
    }

    fn two_col() -> Schema {
        Schema::new(vec![Column::new("id", DataType::Int), Column::new("name", DataType::Str)])
    }

    fn populated() -> Catalog {
        let c = catalog();
        let t = c.create_table_partitioned("t", two_col(), 4, 0).unwrap();
        for i in 0..100i64 {
            t.heap.insert(&Tuple::new(vec![Value::Int(i), Value::Str(format!("n{i}"))])).unwrap();
        }
        c.create_index("t_id", "t", "id").unwrap();
        c
    }

    fn sorted_rows(c: &Catalog, name: &str) -> Vec<Tuple> {
        let t = c.table(name).unwrap();
        let mut rows: Vec<Tuple> = t.heap.scan().map(|r| r.unwrap().1).collect();
        rows.sort_by_key(|t| t.get(0).as_int());
        rows
    }

    #[test]
    fn capture_encode_decode_restore_roundtrip() {
        let src = populated();
        let lsn = Lsn { segment: 3, offset: 0 };
        let snap = Snapshot::capture(&src, lsn).unwrap();
        assert_eq!(snap.row_count(), 100);
        let bytes = snap.encode();
        let back = Snapshot::decode(&bytes).unwrap();
        assert_eq!(back.lsn, lsn);
        assert_eq!(back.tables.len(), 1);
        assert_eq!(back.indexes.len(), 1);

        let dst = catalog();
        let maps = back.restore(&dst).unwrap();
        assert_eq!(sorted_rows(&dst, "t"), sorted_rows(&src, "t"));
        // Index came back and probes work.
        let t = dst.table("t").unwrap();
        let ix = dst.index_on(t.id, 0).unwrap();
        assert_eq!(ix.search(42).unwrap().len(), 1);
        // The rid map resolves every captured row to its restored twin.
        let src_t = src.table("t").unwrap();
        assert_eq!(maps.tables[&src_t.id.0], t.id.0);
        for item in src_t.heap.scan() {
            let (old_rid, tuple) = item.unwrap();
            let new_rid = maps.rids[&(src_t.id.0, old_rid)];
            assert_eq!(t.heap.get(new_rid).unwrap(), tuple);
        }
    }

    #[test]
    fn corrupted_snapshot_is_detected_never_panics() {
        let snap = Snapshot::capture(&populated(), Lsn::ZERO).unwrap();
        let good = snap.encode();
        // Flip one byte anywhere: checksum must catch it.
        for pos in [0usize, 8, good.len() / 2, good.len() - 5] {
            let mut bad = good.clone();
            bad[pos] ^= 0xFF;
            assert!(
                matches!(Snapshot::decode(&bad), Err(StorageError::Corrupt(_))),
                "flip at {pos} undetected"
            );
        }
        // Truncation at any point is detected too.
        for cut in [0usize, 7, good.len() / 3, good.len() - 1] {
            assert!(matches!(Snapshot::decode(&good[..cut]), Err(StorageError::Corrupt(_))));
        }
    }

    #[test]
    fn restore_refuses_a_non_empty_catalog() {
        let snap = Snapshot::capture(&populated(), Lsn::ZERO).unwrap();
        let dst = populated();
        assert!(matches!(snap.restore(&dst), Err(StorageError::AlreadyExists(_))));
    }

    #[test]
    fn mem_snapshot_store_roundtrip() {
        let s = MemSnapshotStore::new();
        assert!(s.load().unwrap().is_none());
        s.save(b"abc").unwrap();
        s.save(b"def").unwrap();
        assert_eq!(s.load().unwrap().unwrap(), b"def");
    }

    #[test]
    fn file_snapshot_store_atomically_replaces() {
        let dir = std::env::temp_dir().join(format!(
            "staged-db-snap-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let store = FileSnapshotStore::new(dir.join("checkpoint.snap"));
        assert!(store.load().unwrap().is_none());
        store.save(b"first").unwrap();
        assert_eq!(store.load().unwrap().unwrap(), b"first");
        store.save(b"second").unwrap();
        assert_eq!(store.load().unwrap().unwrap(), b"second");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
