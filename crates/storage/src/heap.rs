//! Heap files: unordered collections of tuples on slotted pages.

use crate::buffer::BufferPool;
use crate::error::{StorageError, StorageResult};
use crate::mvcc::{ReadView, VersionStore};
use crate::page::{PageId, SlottedPage, PAGE_SIZE};
use crate::tuple::{Rid, Tuple};
use parking_lot::{Mutex, RwLock};
use std::sync::Arc;

/// A heap file. Pages are tracked in memory (the catalog owns the file;
/// on-disk directory pages are out of scope, see crate docs).
pub struct HeapFile {
    pool: Arc<BufferPool>,
    pages: RwLock<Vec<PageId>>,
    /// Serializes the insert path so two inserters do not both allocate.
    insert_lock: Mutex<()>,
}

impl HeapFile {
    /// An empty heap file over `pool`.
    pub fn create(pool: Arc<BufferPool>) -> Self {
        Self { pool, pages: RwLock::new(Vec::new()), insert_lock: Mutex::new(()) }
    }

    /// Number of pages.
    pub fn num_pages(&self) -> usize {
        self.pages.read().len()
    }

    /// Snapshot of the page list (used by scans and index builds).
    pub fn page_ids(&self) -> Vec<PageId> {
        self.pages.read().clone()
    }

    /// Insert a tuple, returning its rid.
    pub fn insert(&self, tuple: &Tuple) -> StorageResult<Rid> {
        self.insert_with(tuple, |_| {})
    }

    /// Insert a tuple, invoking `note` with the assigned rid from *inside*
    /// the page write latch — before any reader can decode the new row.
    /// This is the MVCC registration hook: `note` typically records the
    /// rid in the table's [`VersionStore`], and running it under the latch
    /// guarantees a reader that sees the row's bytes also sees its
    /// overlay entry.
    pub fn insert_with<F: FnOnce(Rid)>(&self, tuple: &Tuple, note: F) -> StorageResult<Rid> {
        let bytes = tuple.encode();
        if bytes.len() > PAGE_SIZE - 8 {
            return Err(StorageError::RecordTooLarge(bytes.len()));
        }
        let mut note = Some(note);
        let _guard = self.insert_lock.lock();
        // Try the last page first.
        if let Some(&last) = self.pages.read().last() {
            let page = self.pool.fetch(last)?;
            if let Some(slot) = page.write(|d| {
                let slot = SlottedPage::insert(d, &bytes);
                if let Some(s) = slot {
                    if let Some(f) = note.take() {
                        f(Rid::new(last, s));
                    }
                }
                slot
            }) {
                return Ok(Rid::new(last, slot));
            }
        }
        // Allocate a fresh page.
        let page = self.pool.new_page()?;
        let pid = page.page_id();
        page.write(|d| {
            SlottedPage::init(d);
            let slot = SlottedPage::insert(d, &bytes);
            if let Some(s) = slot {
                if let Some(f) = note.take() {
                    f(Rid::new(pid, s));
                }
            }
            slot
        })
        .map(|slot| {
            self.pages.write().push(pid);
            Rid::new(pid, slot)
        })
        .ok_or(StorageError::RecordTooLarge(bytes.len()))
    }

    /// Read the tuple at `rid`.
    pub fn get(&self, rid: Rid) -> StorageResult<Tuple> {
        let page = self.pool.fetch(rid.page)?;
        page.read(|d| SlottedPage::get(d, rid.page, rid.slot).and_then(Tuple::decode))
    }

    /// Delete the tuple at `rid` (idempotent errors on bad slots).
    pub fn delete(&self, rid: Rid) -> StorageResult<()> {
        let page = self.pool.fetch(rid.page)?;
        page.write(|d| SlottedPage::delete(d, rid.page, rid.slot))
    }

    /// Replace the tuple at `rid`; the rid may change (delete + insert).
    pub fn update(&self, rid: Rid, tuple: &Tuple) -> StorageResult<Rid> {
        self.delete(rid)?;
        self.insert(tuple)
    }

    /// Full scan over `(rid, tuple)` pairs.
    pub fn scan(&self) -> HeapScan {
        HeapScan {
            pool: Arc::clone(&self.pool),
            pages: self.page_ids(),
            next_page: 0,
            buffered: Vec::new(),
            mvcc: None,
        }
    }

    /// Page-granular scan: each item is one decoded page of `(rid, tuple)`
    /// pairs, in slot order. This is the batch-dataflow entry point — a
    /// consumer that wants pages (not tuples) gets them without the
    /// per-tuple buffering of [`HeapScan`].
    pub fn scan_pages(&self) -> HeapPageScan {
        HeapPageScan {
            pool: Arc::clone(&self.pool),
            pages: self.page_ids(),
            next_page: 0,
            cols: None,
            mvcc: None,
        }
    }

    /// Exact count of live tuples (scans every page).
    pub fn count(&self) -> StorageResult<usize> {
        let mut n = 0;
        for pid in self.page_ids() {
            let page = self.pool.fetch(pid)?;
            n += page.read(SlottedPage::live_count);
        }
        Ok(n)
    }
}

/// Streaming scan over a heap file; buffers one page of tuples at a time so
/// no page stays pinned between `next` calls.
pub struct HeapScan {
    pool: Arc<BufferPool>,
    pages: Vec<PageId>,
    next_page: usize,
    buffered: Vec<(Rid, Tuple)>,
    mvcc: Option<(Arc<VersionStore>, ReadView)>,
}

impl HeapScan {
    /// Pages this scan will visit (for I/O accounting in experiments).
    pub fn num_pages(&self) -> usize {
        self.pages.len()
    }

    /// Filter every page through `store`'s version overlay for `view`:
    /// uncommitted rows the view cannot see are dropped, dead versions it
    /// can still see are merged back in.
    pub fn with_snapshot(mut self, store: Arc<VersionStore>, view: ReadView) -> Self {
        self.mvcc = Some((store, view));
        self
    }
}

impl Iterator for HeapScan {
    type Item = StorageResult<(Rid, Tuple)>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if let Some(item) = self.buffered.pop() {
                return Some(Ok(item));
            }
            if self.next_page >= self.pages.len() {
                return None;
            }
            let pid = self.pages[self.next_page];
            self.next_page += 1;
            let page = match self.pool.fetch(pid) {
                Ok(p) => p,
                Err(e) => return Some(Err(e)),
            };
            let mut decoded: Vec<(Rid, Tuple)> = Vec::new();
            let res = page.read(|d| {
                for (slot, bytes) in SlottedPage::iter(d) {
                    match Tuple::decode(bytes) {
                        Ok(t) => decoded.push((Rid::new(pid, slot), t)),
                        Err(e) => return Err(e),
                    }
                }
                Ok(())
            });
            if let Err(e) = res {
                return Some(Err(e));
            }
            if let Some((store, view)) = &self.mvcc {
                if let Err(e) = store.filter_page(*view, pid, &mut decoded, None) {
                    return Some(Err(e));
                }
            }
            // Reverse so pop() yields in slot order.
            decoded.reverse();
            self.buffered = decoded;
        }
    }
}

/// Page-granular heap scan: yields one decoded page of `(rid, tuple)` pairs
/// per `next` call (empty pages are skipped). No page stays pinned between
/// calls.
pub struct HeapPageScan {
    pool: Arc<BufferPool>,
    pages: Vec<PageId>,
    next_page: usize,
    cols: Option<Vec<usize>>,
    mvcc: Option<(Arc<VersionStore>, ReadView)>,
}

impl HeapPageScan {
    /// Pages this scan will visit (for I/O accounting in experiments).
    pub fn num_pages(&self) -> usize {
        self.pages.len()
    }

    /// Restrict decoding to `cols` (strictly increasing slot indexes, see
    /// [`Tuple::decode_columns`]); yielded tuples hold those columns in that
    /// order. Unread columns — string columns especially — are skipped
    /// without being materialized.
    pub fn with_columns(mut self, cols: Vec<usize>) -> Self {
        debug_assert!(cols.windows(2).all(|w| w[0] < w[1]), "cols must be strictly increasing");
        self.cols = Some(cols);
        self
    }

    /// Filter every page through `store`'s version overlay for `view` (see
    /// [`HeapScan::with_snapshot`]). Dead versions are decoded with this
    /// scan's column pruning.
    pub fn with_snapshot(mut self, store: Arc<VersionStore>, view: ReadView) -> Self {
        self.mvcc = Some((store, view));
        self
    }
}

impl Iterator for HeapPageScan {
    type Item = StorageResult<Vec<(Rid, Tuple)>>;

    fn next(&mut self) -> Option<Self::Item> {
        while self.next_page < self.pages.len() {
            let pid = self.pages[self.next_page];
            self.next_page += 1;
            let page = match self.pool.fetch(pid) {
                Ok(p) => p,
                Err(e) => return Some(Err(e)),
            };
            let mut decoded: Vec<(Rid, Tuple)> = Vec::new();
            let res = page.read(|d| {
                for (slot, bytes) in SlottedPage::iter(d) {
                    let t = match &self.cols {
                        Some(cols) => Tuple::decode_columns(bytes, cols),
                        None => Tuple::decode(bytes),
                    };
                    match t {
                        Ok(t) => decoded.push((Rid::new(pid, slot), t)),
                        Err(e) => return Err(e),
                    }
                }
                Ok(())
            });
            if let Err(e) = res {
                return Some(Err(e));
            }
            if let Some((store, view)) = &self.mvcc {
                // The overlay can both drop rows and resurrect deleted ones
                // (even on pages whose live rows are all filtered away), so
                // the emptiness check must come after.
                if let Err(e) = store.filter_page(*view, pid, &mut decoded, self.cols.as_deref()) {
                    return Some(Err(e));
                }
            }
            if !decoded.is_empty() {
                return Some(Ok(decoded));
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::MemDisk;
    use crate::value::Value;

    fn heap() -> HeapFile {
        HeapFile::create(BufferPool::new(Arc::new(MemDisk::new()), 64))
    }

    fn row(i: i64) -> Tuple {
        Tuple::new(vec![Value::Int(i), Value::Str(format!("row-{i}"))])
    }

    #[test]
    fn insert_get_roundtrip() {
        let h = heap();
        let rid = h.insert(&row(1)).unwrap();
        assert_eq!(h.get(rid).unwrap(), row(1));
    }

    #[test]
    fn scan_returns_everything_in_insert_order() {
        let h = heap();
        for i in 0..1000 {
            h.insert(&row(i)).unwrap();
        }
        let got: Vec<Tuple> = h.scan().map(|r| r.unwrap().1).collect();
        assert_eq!(got.len(), 1000);
        for (i, t) in got.iter().enumerate() {
            assert_eq!(t.get(0), &Value::Int(i as i64));
        }
        assert!(h.num_pages() > 1, "1000 rows must span pages");
    }

    #[test]
    fn delete_hides_from_scan_and_get() {
        let h = heap();
        let r0 = h.insert(&row(0)).unwrap();
        let r1 = h.insert(&row(1)).unwrap();
        h.delete(r0).unwrap();
        assert!(h.get(r0).is_err());
        assert_eq!(h.get(r1).unwrap(), row(1));
        let remaining: Vec<Tuple> = h.scan().map(|r| r.unwrap().1).collect();
        assert_eq!(remaining, vec![row(1)]);
        assert_eq!(h.count().unwrap(), 1);
    }

    #[test]
    fn update_replaces_contents() {
        let h = heap();
        let rid = h.insert(&row(5)).unwrap();
        let new_rid = h.update(rid, &row(99)).unwrap();
        assert_eq!(h.get(new_rid).unwrap(), row(99));
    }

    #[test]
    fn oversized_record_is_rejected() {
        let h = heap();
        let big = Tuple::new(vec![Value::Str("x".repeat(PAGE_SIZE))]);
        assert!(matches!(h.insert(&big), Err(StorageError::RecordTooLarge(_))));
    }

    #[test]
    fn concurrent_inserts_do_not_lose_rows() {
        let h = Arc::new(heap());
        let mut handles = vec![];
        for t in 0..4 {
            let h = Arc::clone(&h);
            handles.push(std::thread::spawn(move || {
                for i in 0..250 {
                    h.insert(&row(t * 1000 + i)).unwrap();
                }
            }));
        }
        for hnd in handles {
            hnd.join().unwrap();
        }
        assert_eq!(h.count().unwrap(), 1000);
    }

    #[test]
    fn scan_of_empty_heap_is_empty() {
        let h = heap();
        assert_eq!(h.scan().count(), 0);
        assert_eq!(h.scan_pages().count(), 0);
    }

    #[test]
    fn page_scan_agrees_with_tuple_scan() {
        let h = heap();
        for i in 0..1000 {
            h.insert(&row(i)).unwrap();
        }
        let flat: Vec<(Rid, Tuple)> = h.scan().map(|r| r.unwrap()).collect();
        let paged: Vec<(Rid, Tuple)> =
            h.scan_pages().flat_map(|p| p.unwrap().into_iter()).collect();
        assert_eq!(flat, paged, "page scan must yield the same rows in the same order");
        let pages: Vec<usize> = h.scan_pages().map(|p| p.unwrap().len()).collect();
        assert_eq!(pages.len(), h.num_pages());
        assert!(pages.iter().all(|&n| n > 1), "full pages hold many tuples");
    }

    #[test]
    fn projected_page_scan_prunes_columns() {
        let h = heap();
        for i in 0..500 {
            h.insert(&row(i)).unwrap();
        }
        let pruned: Vec<(Rid, Tuple)> =
            h.scan_pages().with_columns(vec![0]).flat_map(|p| p.unwrap()).collect();
        let full: Vec<(Rid, Tuple)> = h.scan_pages().flat_map(|p| p.unwrap()).collect();
        assert_eq!(pruned.len(), full.len());
        for ((rid_p, t), (rid_f, f)) in pruned.iter().zip(&full) {
            assert_eq!(rid_p, rid_f);
            assert_eq!(t.values(), &f.values()[..1]);
        }
    }

    #[test]
    fn page_scan_skips_emptied_pages() {
        let h = heap();
        let mut rids = Vec::new();
        for i in 0..300 {
            rids.push(h.insert(&row(i)).unwrap());
        }
        // Empty out the first page entirely.
        let first = rids[0].page;
        for r in rids.iter().filter(|r| r.page == first) {
            h.delete(*r).unwrap();
        }
        let total: usize = h.scan_pages().map(|p| p.unwrap().len()).sum();
        assert_eq!(total, h.count().unwrap());
        assert!(h.scan_pages().all(|p| !p.unwrap().is_empty()));
    }
}
