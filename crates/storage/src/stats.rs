//! Table and column statistics for the optimizer.
//!
//! The paper's Figure 3 places "statistics" inside the optimize stage; the
//! planner's cost model consumes these numbers for selectivity and join-
//! order decisions. `ANALYZE` scans the heap once.

use crate::error::StorageResult;
use crate::partition::PartitionedHeap;
use crate::schema::Schema;
use crate::value::Value;
use std::collections::HashSet;

/// Per-column statistics.
#[derive(Debug, Clone, Default)]
pub struct ColumnStats {
    /// Smallest non-null value seen.
    pub min: Option<Value>,
    /// Largest non-null value seen.
    pub max: Option<Value>,
    /// Number of distinct values (exact up to [`NDV_EXACT_LIMIT`], then an
    /// estimate).
    pub ndv: u64,
    /// NULL count.
    pub nulls: u64,
}

/// Distinct-value tracking switches from exact to estimated past this many
/// distinct values.
pub const NDV_EXACT_LIMIT: usize = 100_000;

/// Whole-table statistics.
#[derive(Debug, Clone, Default)]
pub struct TableStats {
    /// Number of live rows.
    pub row_count: u64,
    /// Number of heap pages.
    pub page_count: u64,
    /// Per-column stats, aligned with the schema.
    pub columns: Vec<ColumnStats>,
}

impl TableStats {
    /// Selectivity estimate for an equality predicate on `col`.
    pub fn eq_selectivity(&self, col: usize) -> f64 {
        match self.columns.get(col) {
            Some(c) if c.ndv > 0 => 1.0 / c.ndv as f64,
            _ => 0.1,
        }
    }

    /// Selectivity estimate for a range predicate `col (<|>|between) …`,
    /// assuming a uniform distribution between min and max.
    pub fn range_selectivity(&self, col: usize, lo: Option<&Value>, hi: Option<&Value>) -> f64 {
        let Some(c) = self.columns.get(col) else { return 0.33 };
        let (Some(min), Some(max)) = (&c.min, &c.max) else { return 0.33 };
        let (Some(min), Some(max)) = (min.as_float(), max.as_float()) else { return 0.33 };
        if max <= min {
            return 1.0;
        }
        let lo = lo.and_then(Value::as_float).unwrap_or(min).max(min);
        let hi = hi.and_then(Value::as_float).unwrap_or(max).min(max);
        ((hi - lo) / (max - min)).clamp(0.0, 1.0)
    }
}

/// Compute statistics with one scan of the heap (the `ANALYZE` operation);
/// partitioned heaps are scanned partition by partition.
pub fn analyze(heap: &PartitionedHeap, schema: &Schema) -> StorageResult<TableStats> {
    let ncols = schema.len();
    let mut columns = vec![ColumnStats::default(); ncols];
    let mut distinct: Vec<HashSet<String>> = vec![HashSet::new(); ncols];
    let mut saturated = vec![false; ncols];
    let mut rows = 0u64;
    for item in heap.scan() {
        let (_, tuple) = item?;
        rows += 1;
        for (i, v) in tuple.values().iter().enumerate().take(ncols) {
            let c = &mut columns[i];
            if v.is_null() {
                c.nulls += 1;
                continue;
            }
            match &c.min {
                Some(m) if v.total_cmp(m).is_lt() => c.min = Some(v.clone()),
                None => c.min = Some(v.clone()),
                _ => {}
            }
            match &c.max {
                Some(m) if v.total_cmp(m).is_gt() => c.max = Some(v.clone()),
                None => c.max = Some(v.clone()),
                _ => {}
            }
            if !saturated[i] {
                distinct[i].insert(v.to_string());
                if distinct[i].len() > NDV_EXACT_LIMIT {
                    saturated[i] = true;
                    distinct[i].clear();
                }
            }
        }
    }
    for (i, c) in columns.iter_mut().enumerate() {
        c.ndv = if saturated[i] {
            // Saturated: assume mostly-unique beyond the limit.
            rows - c.nulls
        } else {
            distinct[i].len() as u64
        };
    }
    Ok(TableStats { row_count: rows, page_count: heap.num_pages() as u64, columns })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::BufferPool;
    use crate::disk::MemDisk;
    use crate::schema::Column;
    use crate::tuple::Tuple;
    use crate::value::DataType;
    use std::sync::Arc;

    fn setup() -> (PartitionedHeap, Schema) {
        let pool = BufferPool::new(Arc::new(MemDisk::new()), 64);
        let heap = PartitionedHeap::create(pool, 1, 0);
        let schema = Schema::new(vec![
            Column::new("k", DataType::Int),
            Column::new("grp", DataType::Int),
            Column::new("s", DataType::Str).nullable(),
        ]);
        (heap, schema)
    }

    #[test]
    fn analyze_computes_counts_min_max_ndv() {
        let (heap, schema) = setup();
        for i in 0..500i64 {
            let s = if i % 5 == 0 { Value::Null } else { Value::Str(format!("s{}", i % 7)) };
            heap.insert(&Tuple::new(vec![Value::Int(i), Value::Int(i % 10), s])).unwrap();
        }
        let st = analyze(&heap, &schema).unwrap();
        assert_eq!(st.row_count, 500);
        assert!(st.page_count >= 1);
        assert_eq!(st.columns[0].min, Some(Value::Int(0)));
        assert_eq!(st.columns[0].max, Some(Value::Int(499)));
        assert_eq!(st.columns[0].ndv, 500);
        assert_eq!(st.columns[1].ndv, 10);
        assert_eq!(st.columns[2].nulls, 100);
        assert_eq!(st.columns[2].ndv, 7);
    }

    #[test]
    fn selectivity_estimates() {
        let (heap, schema) = setup();
        for i in 0..100i64 {
            heap.insert(&Tuple::new(vec![Value::Int(i), Value::Int(i % 4), Value::Null])).unwrap();
        }
        let st = analyze(&heap, &schema).unwrap();
        assert!((st.eq_selectivity(1) - 0.25).abs() < 1e-12);
        // Range k in [0, 49] over [0, 99] ≈ one half.
        let sel = st.range_selectivity(0, Some(&Value::Int(0)), Some(&Value::Int(49)));
        assert!((sel - 0.4949).abs() < 0.01, "sel={sel}");
        // Unbounded range = 1.
        assert!((st.range_selectivity(0, None, None) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn analyze_of_empty_table() {
        let (heap, schema) = setup();
        let st = analyze(&heap, &schema).unwrap();
        assert_eq!(st.row_count, 0);
        assert_eq!(st.columns[0].ndv, 0);
        assert!(st.columns[0].min.is_none());
        // Fallback selectivities are sane.
        assert!(st.eq_selectivity(0) > 0.0);
    }
}
