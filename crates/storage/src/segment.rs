//! WAL segment stores: an ordered family of page stores the log rotates
//! through.
//!
//! The segmented WAL (see [`crate::wal`]) never edits a segment after it
//! rotates past it, so truncating the log below a checkpoint LSN is just
//! *deleting whole segment files* — no compaction, no rewrite. The store
//! abstracts where those segments live: [`MemSegmentStore`] keeps them as
//! [`MemDisk`]s (tests, benches, crash simulation by byte-editing pages),
//! [`FileSegmentStore`] as `wal-NNNNNNNN.seg` files in a directory.
//!
//! I/O counters are aggregated across *live and deleted* segments
//! ([`SegmentStore::io_stats`]): recovery tests rely on "replaying the
//! tail read strictly fewer pages than replaying history" staying
//! measurable after the history has been truncated away.

use crate::disk::{DiskManager, FileDisk, IoStats, MemDisk};
use crate::error::{StorageError, StorageResult};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

/// A factory and directory of WAL segments, addressed by a dense `u64` id.
pub trait SegmentStore: Send + Sync {
    /// Open segment `id` as a page store, creating it empty if absent.
    /// Opening the same id twice returns the same underlying storage.
    fn open(&self, id: u64) -> StorageResult<Arc<dyn DiskManager>>;

    /// Delete segment `id` permanently. Its I/O counters are folded into
    /// [`io_stats`](Self::io_stats) before it goes.
    fn delete(&self, id: u64) -> StorageResult<()>;

    /// Sorted ids of the segments that currently exist.
    fn list(&self) -> StorageResult<Vec<u64>>;

    /// Aggregated I/O counters: every live segment plus everything deleted
    /// segments accumulated while they were alive.
    fn io_stats(&self) -> IoStats;
}

/// In-memory segment store: one [`MemDisk`] per segment.
pub struct MemSegmentStore {
    segments: Mutex<BTreeMap<u64, Arc<MemDisk>>>,
    retired: Mutex<IoStats>,
    latency: Option<Duration>,
}

impl MemSegmentStore {
    /// An empty in-memory store.
    pub fn new() -> Self {
        Self {
            segments: Mutex::new(BTreeMap::new()),
            retired: Mutex::new(IoStats::default()),
            latency: None,
        }
    }

    /// Apply a simulated per-I/O latency to every segment created from now
    /// on (mirrors [`MemDisk::with_latency`] for I/O-bound experiments).
    pub fn with_latency(mut self, latency: Duration) -> Self {
        self.latency = Some(latency);
        self
    }

    /// The raw [`MemDisk`] behind segment `id`, if it exists — used by
    /// crash-simulation tests to corrupt or truncate pages directly.
    pub fn disk(&self, id: u64) -> Option<Arc<MemDisk>> {
        self.segments.lock().get(&id).cloned()
    }
}

impl Default for MemSegmentStore {
    fn default() -> Self {
        Self::new()
    }
}

impl SegmentStore for MemSegmentStore {
    fn open(&self, id: u64) -> StorageResult<Arc<dyn DiskManager>> {
        let mut segs = self.segments.lock();
        let disk = segs
            .entry(id)
            .or_insert_with(|| {
                let d = match self.latency {
                    Some(l) => MemDisk::new().with_latency(l),
                    None => MemDisk::new(),
                };
                Arc::new(d)
            })
            .clone();
        Ok(disk)
    }

    fn delete(&self, id: u64) -> StorageResult<()> {
        let disk = self
            .segments
            .lock()
            .remove(&id)
            .ok_or_else(|| StorageError::NotFound(format!("wal segment {id}")))?;
        self.retired.lock().absorb(&disk.stats());
        Ok(())
    }

    fn list(&self) -> StorageResult<Vec<u64>> {
        Ok(self.segments.lock().keys().copied().collect())
    }

    fn io_stats(&self) -> IoStats {
        let mut total = *self.retired.lock();
        for disk in self.segments.lock().values() {
            total.absorb(&disk.stats());
        }
        total
    }
}

/// File-backed segment store: `wal-NNNNNNNN.seg` files under one directory.
pub struct FileSegmentStore {
    dir: PathBuf,
    open_segments: Mutex<BTreeMap<u64, Arc<FileDisk>>>,
    retired: Mutex<IoStats>,
}

impl FileSegmentStore {
    /// Open (creating if needed) a segment directory.
    pub fn open(dir: impl AsRef<Path>) -> StorageResult<Self> {
        std::fs::create_dir_all(dir.as_ref())?;
        Ok(Self {
            dir: dir.as_ref().to_path_buf(),
            open_segments: Mutex::new(BTreeMap::new()),
            retired: Mutex::new(IoStats::default()),
        })
    }

    fn segment_path(&self, id: u64) -> PathBuf {
        self.dir.join(format!("wal-{id:08}.seg"))
    }

    fn parse_segment_name(name: &str) -> Option<u64> {
        name.strip_prefix("wal-")?.strip_suffix(".seg")?.parse().ok()
    }
}

impl SegmentStore for FileSegmentStore {
    fn open(&self, id: u64) -> StorageResult<Arc<dyn DiskManager>> {
        let mut segs = self.open_segments.lock();
        if let Some(d) = segs.get(&id) {
            return Ok(Arc::clone(d) as Arc<dyn DiskManager>);
        }
        let disk = Arc::new(FileDisk::open(self.segment_path(id))?);
        segs.insert(id, Arc::clone(&disk));
        Ok(disk)
    }

    fn delete(&self, id: u64) -> StorageResult<()> {
        if let Some(disk) = self.open_segments.lock().remove(&id) {
            self.retired.lock().absorb(&disk.stats());
        }
        let path = self.segment_path(id);
        if !path.exists() {
            return Err(StorageError::NotFound(format!("wal segment {id}")));
        }
        std::fs::remove_file(path)?;
        Ok(())
    }

    fn list(&self) -> StorageResult<Vec<u64>> {
        let mut ids = Vec::new();
        for entry in std::fs::read_dir(&self.dir)? {
            let entry = entry?;
            if let Some(id) = entry.file_name().to_str().and_then(Self::parse_segment_name) {
                ids.push(id);
            }
        }
        ids.sort_unstable();
        Ok(ids)
    }

    fn io_stats(&self) -> IoStats {
        let mut total = *self.retired.lock();
        for disk in self.open_segments.lock().values() {
            total.absorb(&disk.stats());
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::{PageId, PAGE_SIZE};

    #[test]
    fn mem_store_lists_and_deletes() {
        let s = MemSegmentStore::new();
        s.open(0).unwrap();
        s.open(2).unwrap();
        s.open(1).unwrap();
        assert_eq!(s.list().unwrap(), vec![0, 1, 2]);
        s.delete(1).unwrap();
        assert_eq!(s.list().unwrap(), vec![0, 2]);
        assert!(matches!(s.delete(1), Err(StorageError::NotFound(_))));
    }

    #[test]
    fn mem_store_stats_survive_deletion() {
        let s = MemSegmentStore::new();
        let d = s.open(0).unwrap();
        d.allocate().unwrap();
        d.write_page(PageId(0), &[0u8; PAGE_SIZE]).unwrap();
        d.sync().unwrap();
        let before = s.io_stats();
        s.delete(0).unwrap();
        assert_eq!(s.io_stats(), before, "deleting a segment must not lose its counters");
        assert_eq!(before.writes, 1);
        assert_eq!(before.syncs, 1);
    }

    #[test]
    fn file_store_roundtrip() {
        let dir = std::env::temp_dir().join(format!(
            "staged-db-segstore-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let s = FileSegmentStore::open(&dir).unwrap();
        let d = s.open(3).unwrap();
        let p = d.allocate().unwrap();
        let mut page = [0u8; PAGE_SIZE];
        page[17] = 0xEE;
        d.write_page(p, &page).unwrap();
        d.sync().unwrap();
        assert_eq!(s.list().unwrap(), vec![3]);
        // Reopen from disk: the segment file is found again.
        drop(s);
        let s2 = FileSegmentStore::open(&dir).unwrap();
        assert_eq!(s2.list().unwrap(), vec![3]);
        let d2 = s2.open(3).unwrap();
        let mut back = [0u8; PAGE_SIZE];
        d2.read_page(PageId(0), &mut back).unwrap();
        assert_eq!(back[17], 0xEE);
        s2.delete(3).unwrap();
        assert!(s2.list().unwrap().is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
