//! Tuples and record identifiers.

use crate::error::StorageResult;
use crate::page::PageId;
use crate::value::Value;

/// Physical address of a record: page + slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Rid {
    /// Page holding the record.
    pub page: PageId,
    /// Slot within the page.
    pub slot: u16,
}

impl Rid {
    /// Construct a rid.
    pub fn new(page: PageId, slot: u16) -> Self {
        Self { page, slot }
    }
}

impl std::fmt::Display for Rid {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({}, {})", self.page.0, self.slot)
    }
}

/// A row: an ordered list of values.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Tuple {
    values: Vec<Value>,
}

impl Tuple {
    /// Build a tuple from values.
    pub fn new(values: Vec<Value>) -> Self {
        Self { values }
    }

    /// The values.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Value at a column index.
    pub fn get(&self, idx: usize) -> &Value {
        &self.values[idx]
    }

    /// Consume into the value vector.
    pub fn into_values(self) -> Vec<Value> {
        self.values
    }

    /// Concatenate two tuples (join output).
    pub fn concat(&self, other: &Tuple) -> Tuple {
        let mut values = Vec::with_capacity(self.values.len() + other.values.len());
        values.extend_from_slice(&self.values);
        values.extend_from_slice(&other.values);
        Tuple::new(values)
    }

    /// Encoded size in bytes.
    pub fn encoded_len(&self) -> usize {
        2 + self.values.iter().map(Value::encoded_len).sum::<usize>()
    }

    /// Encode to bytes: `u16` arity then each value.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(self.encoded_len());
        debug_assert!(self.values.len() <= u16::MAX as usize);
        buf.extend_from_slice(&(self.values.len() as u16).to_le_bytes());
        for v in &self.values {
            v.encode(&mut buf);
        }
        buf
    }

    /// Decode from bytes produced by [`encode`](Self::encode).
    pub fn decode(mut bytes: &[u8]) -> StorageResult<Tuple> {
        use crate::error::StorageError;
        if bytes.len() < 2 {
            return Err(StorageError::Corrupt("tuple too short".into()));
        }
        let n = u16::from_le_bytes([bytes[0], bytes[1]]) as usize;
        bytes = &bytes[2..];
        let mut values = Vec::with_capacity(n);
        for _ in 0..n {
            values.push(Value::decode(&mut bytes)?);
        }
        Ok(Tuple::new(values))
    }

    /// Decode only the columns in `cols` (strictly increasing slot
    /// indexes); the result holds those values in the same order. Skipped
    /// columns are stepped over without being materialized, so pruning a
    /// wide row down to the columns a query touches avoids the allocation
    /// cost of the unread ones (string columns in particular). A requested
    /// slot beyond the stored arity is a corruption error.
    pub fn decode_columns(mut bytes: &[u8], cols: &[usize]) -> StorageResult<Tuple> {
        use crate::error::StorageError;
        debug_assert!(cols.windows(2).all(|w| w[0] < w[1]), "cols must be strictly increasing");
        if bytes.len() < 2 {
            return Err(StorageError::Corrupt("tuple too short".into()));
        }
        let n = u16::from_le_bytes([bytes[0], bytes[1]]) as usize;
        bytes = &bytes[2..];
        if cols.last().is_some_and(|&c| c >= n) {
            return Err(StorageError::Corrupt(format!(
                "column {:?} out of arity {n}",
                cols.last()
            )));
        }
        let mut values = Vec::with_capacity(cols.len());
        let mut wanted = cols.iter().peekable();
        for slot in 0..n {
            match wanted.peek() {
                Some(&&c) if c == slot => {
                    values.push(Value::decode(&mut bytes)?);
                    wanted.next();
                }
                Some(_) => Value::skip(&mut bytes)?,
                // Nothing left to read; the rest of the row is untouched.
                None => break,
            }
        }
        Ok(Tuple::new(values))
    }
}

impl std::fmt::Display for Tuple {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tuple_roundtrip() {
        let t = Tuple::new(vec![
            Value::Int(7),
            Value::Str("wisconsin".into()),
            Value::Null,
            Value::Float(2.5),
            Value::Bool(true),
        ]);
        let bytes = t.encode();
        assert_eq!(bytes.len(), t.encoded_len());
        assert_eq!(Tuple::decode(&bytes).unwrap(), t);
    }

    #[test]
    fn empty_tuple_roundtrip() {
        let t = Tuple::new(vec![]);
        assert_eq!(Tuple::decode(&t.encode()).unwrap(), t);
    }

    #[test]
    fn concat_preserves_order() {
        let a = Tuple::new(vec![Value::Int(1)]);
        let b = Tuple::new(vec![Value::Int(2), Value::Int(3)]);
        assert_eq!(a.concat(&b).values(), &[Value::Int(1), Value::Int(2), Value::Int(3)]);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(Tuple::decode(&[]).is_err());
        assert!(Tuple::decode(&[5, 0, 1, 2]).is_err()); // claims 5 values
    }

    #[test]
    fn decode_columns_prunes_and_preserves_order() {
        let t = Tuple::new(vec![
            Value::Int(7),
            Value::Str("skipped".into()),
            Value::Null,
            Value::Float(2.5),
            Value::Bool(true),
        ]);
        let bytes = t.encode();
        let pruned = Tuple::decode_columns(&bytes, &[0, 3]).unwrap();
        assert_eq!(pruned.values(), &[Value::Int(7), Value::Float(2.5)]);
        // Skipping the trailing string column never touches its bytes.
        let head = Tuple::decode_columns(&bytes, &[2]).unwrap();
        assert_eq!(head.values(), &[Value::Null]);
        // Full column list agrees with the plain decoder.
        let all = Tuple::decode_columns(&bytes, &[0, 1, 2, 3, 4]).unwrap();
        assert_eq!(all, t);
        // Empty list reads nothing.
        assert!(Tuple::decode_columns(&bytes, &[]).unwrap().values().is_empty());
        // Out-of-arity column is corruption, not a panic.
        assert!(Tuple::decode_columns(&bytes, &[5]).is_err());
    }
}
