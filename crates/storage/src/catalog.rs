//! The system catalog: tables, indexes, statistics.
//!
//! In the paper's Table 1 the catalog is the canonical *common* data
//! structure — touched by virtually every query during parsing and
//! optimization. The engine layers record those touches; the catalog itself
//! stays a plain shared registry.

use crate::btree::BTree;
use crate::buffer::BufferPool;
use crate::error::{StorageError, StorageResult};
use crate::heap::HeapFile;
use crate::schema::Schema;
use crate::stats::{analyze, TableStats};
use crate::value::DataType;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;

/// Table identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TableId(pub u32);

/// Index identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct IndexId(pub u32);

/// A registered table.
pub struct TableInfo {
    /// Id.
    pub id: TableId,
    /// Lower-cased name.
    pub name: String,
    /// Schema.
    pub schema: Schema,
    /// Row storage.
    pub heap: Arc<HeapFile>,
    /// Optimizer statistics (refreshed by [`Catalog::analyze_table`]).
    pub stats: RwLock<TableStats>,
}

/// A registered index.
pub struct IndexInfo {
    /// Id.
    pub id: IndexId,
    /// Lower-cased name.
    pub name: String,
    /// Indexed table.
    pub table: TableId,
    /// Indexed column (must be `Int`).
    pub column: usize,
    /// The B+tree.
    pub btree: Arc<BTree>,
}

#[derive(Default)]
struct CatalogInner {
    tables: HashMap<String, Arc<TableInfo>>,
    tables_by_id: HashMap<TableId, Arc<TableInfo>>,
    indexes: HashMap<String, Arc<IndexInfo>>,
    next_table: u32,
    next_index: u32,
}

/// The catalog.
pub struct Catalog {
    pool: Arc<BufferPool>,
    inner: RwLock<CatalogInner>,
}

impl Catalog {
    /// A catalog allocating storage from `pool`.
    pub fn new(pool: Arc<BufferPool>) -> Self {
        Self { pool, inner: RwLock::new(CatalogInner::default()) }
    }

    /// The shared buffer pool.
    pub fn pool(&self) -> &Arc<BufferPool> {
        &self.pool
    }

    /// Create a table.
    pub fn create_table(&self, name: &str, schema: Schema) -> StorageResult<Arc<TableInfo>> {
        let name = name.to_ascii_lowercase();
        let mut inner = self.inner.write();
        if inner.tables.contains_key(&name) {
            return Err(StorageError::AlreadyExists(name));
        }
        let id = TableId(inner.next_table);
        inner.next_table += 1;
        let ncols = schema.len();
        let info = Arc::new(TableInfo {
            id,
            name: name.clone(),
            schema,
            heap: Arc::new(HeapFile::create(Arc::clone(&self.pool))),
            stats: RwLock::new(TableStats {
                row_count: 0,
                page_count: 0,
                columns: vec![Default::default(); ncols],
            }),
        });
        inner.tables.insert(name, Arc::clone(&info));
        inner.tables_by_id.insert(id, Arc::clone(&info));
        Ok(info)
    }

    /// Look up a table by name.
    pub fn table(&self, name: &str) -> StorageResult<Arc<TableInfo>> {
        let name = name.to_ascii_lowercase();
        self.inner
            .read()
            .tables
            .get(&name)
            .cloned()
            .ok_or(StorageError::NotFound(name))
    }

    /// Look up a table by id.
    pub fn table_by_id(&self, id: TableId) -> StorageResult<Arc<TableInfo>> {
        self.inner
            .read()
            .tables_by_id
            .get(&id)
            .cloned()
            .ok_or_else(|| StorageError::NotFound(format!("table #{}", id.0)))
    }

    /// Drop a table and its indexes (pages are not reclaimed; see crate
    /// docs on space reclamation).
    pub fn drop_table(&self, name: &str) -> StorageResult<()> {
        let name = name.to_ascii_lowercase();
        let mut inner = self.inner.write();
        let info = inner.tables.remove(&name).ok_or(StorageError::NotFound(name))?;
        inner.tables_by_id.remove(&info.id);
        inner.indexes.retain(|_, ix| ix.table != info.id);
        Ok(())
    }

    /// All tables, sorted by name.
    pub fn list_tables(&self) -> Vec<Arc<TableInfo>> {
        let mut v: Vec<_> = self.inner.read().tables.values().cloned().collect();
        v.sort_by(|a, b| a.name.cmp(&b.name));
        v
    }

    /// Create a B+tree index over an existing `Int` column, bulk-loading
    /// current rows.
    pub fn create_index(
        &self,
        name: &str,
        table_name: &str,
        column_name: &str,
    ) -> StorageResult<Arc<IndexInfo>> {
        let name = name.to_ascii_lowercase();
        let table = self.table(table_name)?;
        let column = table
            .schema
            .index_of(column_name)
            .ok_or_else(|| StorageError::NotFound(format!("column {column_name}")))?;
        if table.schema.column(column).ty != DataType::Int {
            return Err(StorageError::SchemaMismatch(format!(
                "index column {column_name} must be INT"
            )));
        }
        {
            let inner = self.inner.read();
            if inner.indexes.contains_key(&name) {
                return Err(StorageError::AlreadyExists(name));
            }
        }
        let btree = Arc::new(BTree::create(Arc::clone(&self.pool))?);
        for item in table.heap.scan() {
            let (rid, tuple) = item?;
            if let Some(k) = tuple.get(column).as_int() {
                btree.insert(k, rid)?;
            }
        }
        let mut inner = self.inner.write();
        if inner.indexes.contains_key(&name) {
            return Err(StorageError::AlreadyExists(name));
        }
        let id = IndexId(inner.next_index);
        inner.next_index += 1;
        let info =
            Arc::new(IndexInfo { id, name: name.clone(), table: table.id, column, btree });
        inner.indexes.insert(name, Arc::clone(&info));
        Ok(info)
    }

    /// All indexes on a table.
    pub fn indexes_for(&self, table: TableId) -> Vec<Arc<IndexInfo>> {
        let mut v: Vec<_> = self
            .inner
            .read()
            .indexes
            .values()
            .filter(|ix| ix.table == table)
            .cloned()
            .collect();
        v.sort_by(|a, b| a.name.cmp(&b.name));
        v
    }

    /// Index on a specific column of a table, if any.
    pub fn index_on(&self, table: TableId, column: usize) -> Option<Arc<IndexInfo>> {
        self.inner
            .read()
            .indexes
            .values()
            .find(|ix| ix.table == table && ix.column == column)
            .cloned()
    }

    /// Recompute a table's statistics (the `ANALYZE` command).
    pub fn analyze_table(&self, name: &str) -> StorageResult<()> {
        let table = self.table(name)?;
        let stats = analyze(&table.heap, &table.schema)?;
        *table.stats.write() = stats;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::MemDisk;
    use crate::schema::Column;
    use crate::tuple::Tuple;
    use crate::value::Value;

    fn catalog() -> Catalog {
        Catalog::new(BufferPool::new(Arc::new(MemDisk::new()), 256))
    }

    fn two_col() -> Schema {
        Schema::new(vec![Column::new("id", DataType::Int), Column::new("name", DataType::Str)])
    }

    #[test]
    fn create_and_lookup_case_insensitive() {
        let c = catalog();
        c.create_table("Users", two_col()).unwrap();
        assert!(c.table("USERS").is_ok());
        assert!(c.table("users").is_ok());
        assert!(matches!(c.table("nope"), Err(StorageError::NotFound(_))));
        assert!(matches!(c.create_table("users", two_col()), Err(StorageError::AlreadyExists(_))));
    }

    #[test]
    fn drop_table_removes_indexes_too() {
        let c = catalog();
        let t = c.create_table("t", two_col()).unwrap();
        t.heap.insert(&Tuple::new(vec![Value::Int(1), Value::Str("a".into())])).unwrap();
        c.create_index("t_id", "t", "id").unwrap();
        assert_eq!(c.indexes_for(t.id).len(), 1);
        c.drop_table("t").unwrap();
        assert!(c.table("t").is_err());
        assert!(c.indexes_for(t.id).is_empty());
    }

    #[test]
    fn index_bulk_load_and_probe() {
        let c = catalog();
        let t = c.create_table("t", two_col()).unwrap();
        let mut rids = Vec::new();
        for i in 0..200i64 {
            rids.push(
                t.heap.insert(&Tuple::new(vec![Value::Int(i), Value::Str(format!("n{i}"))])).unwrap(),
            );
        }
        let ix = c.create_index("t_id", "t", "id").unwrap();
        assert_eq!(ix.btree.search(42).unwrap(), vec![rids[42]]);
        assert_eq!(c.index_on(t.id, 0).unwrap().id, ix.id);
        assert!(c.index_on(t.id, 1).is_none());
    }

    #[test]
    fn index_on_string_column_is_rejected() {
        let c = catalog();
        c.create_table("t", two_col()).unwrap();
        assert!(matches!(
            c.create_index("bad", "t", "name"),
            Err(StorageError::SchemaMismatch(_))
        ));
    }

    #[test]
    fn analyze_updates_stats() {
        let c = catalog();
        let t = c.create_table("t", two_col()).unwrap();
        for i in 0..50i64 {
            t.heap.insert(&Tuple::new(vec![Value::Int(i), Value::Str("x".into())])).unwrap();
        }
        assert_eq!(t.stats.read().row_count, 0);
        c.analyze_table("t").unwrap();
        assert_eq!(t.stats.read().row_count, 50);
        assert_eq!(t.stats.read().columns[0].ndv, 50);
    }

    #[test]
    fn list_tables_sorted() {
        let c = catalog();
        c.create_table("zeta", two_col()).unwrap();
        c.create_table("alpha", two_col()).unwrap();
        let names: Vec<String> = c.list_tables().iter().map(|t| t.name.clone()).collect();
        assert_eq!(names, vec!["alpha", "zeta"]);
    }
}
