//! The system catalog: tables, indexes, statistics.
//!
//! In the paper's Table 1 the catalog is the canonical *common* data
//! structure — touched by virtually every query during parsing and
//! optimization. The engine layers record those touches; the catalog itself
//! stays a plain shared registry.

use crate::btree::BTree;
use crate::buffer::BufferPool;
use crate::error::{StorageError, StorageResult};
use crate::mvcc::{CommitOracle, VersionStore};
use crate::partition::PartitionedHeap;
use crate::schema::Schema;
use crate::stats::{analyze, TableStats};
use crate::tuple::Rid;
use crate::value::DataType;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;

/// Table identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TableId(pub u32);

/// Index identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct IndexId(pub u32);

/// A registered table.
pub struct TableInfo {
    /// Id.
    pub id: TableId,
    /// Lower-cased name.
    pub name: String,
    /// Schema.
    pub schema: Schema,
    /// Row storage (hash-partitioned; single-partition for plain tables).
    pub heap: Arc<PartitionedHeap>,
    /// MVCC version overlay for snapshot reads (see `mvcc` module docs).
    pub versions: Arc<VersionStore>,
    /// Optimizer statistics (refreshed by [`Catalog::analyze_table`]).
    pub stats: RwLock<TableStats>,
}

impl TableInfo {
    /// Number of storage partitions (≥ 1).
    pub fn partitions(&self) -> usize {
        self.heap.partitions()
    }

    /// The hash-key column the rows are partitioned on.
    pub fn partition_key(&self) -> usize {
        self.heap.key_column()
    }

    /// The single partition an index probe on `column` with bounds
    /// `[lo, hi]` can match in, when the bounds pin the hash-key column to
    /// one value (index columns are always `Int`, so the hash agrees with
    /// row routing). `None` = the probe must visit every partition.
    pub fn pruned_partition(
        &self,
        column: usize,
        lo: Option<i64>,
        hi: Option<i64>,
    ) -> Option<usize> {
        match (lo, hi) {
            (Some(l), Some(h))
                if l == h && column == self.partition_key() && self.partitions() > 1 =>
            {
                Some(crate::partition::partition_of_value(
                    &crate::value::Value::Int(l),
                    self.partitions(),
                ))
            }
            _ => None,
        }
    }
}

/// A registered index: one B+tree per table partition, so index maintenance
/// and index-only probes stay partition-local.
pub struct IndexInfo {
    /// Id.
    pub id: IndexId,
    /// Lower-cased name.
    pub name: String,
    /// Indexed table.
    pub table: TableId,
    /// Indexed column (must be `Int`).
    pub column: usize,
    /// Per-partition B+trees, aligned with the table's partitions.
    pub btrees: Vec<Arc<BTree>>,
}

impl IndexInfo {
    /// Number of partitions this index covers.
    pub fn partitions(&self) -> usize {
        self.btrees.len()
    }

    /// The B+tree for one partition.
    pub fn btree_for(&self, partition: usize) -> &Arc<BTree> {
        &self.btrees[partition]
    }

    /// Insert an entry into the given partition's tree.
    pub fn insert(&self, partition: usize, key: i64, rid: Rid) -> StorageResult<()> {
        self.btrees[partition].insert(key, rid)
    }

    /// Delete an entry from the given partition's tree.
    pub fn delete(&self, partition: usize, key: i64, rid: Rid) -> StorageResult<bool> {
        self.btrees[partition].delete(key, rid)
    }

    /// Point probe across every partition.
    pub fn search(&self, key: i64) -> StorageResult<Vec<Rid>> {
        let mut out = Vec::new();
        for bt in &self.btrees {
            out.extend(bt.search(key)?);
        }
        Ok(out)
    }

    /// Range probe across every partition, merged back into key order.
    pub fn range(&self, lo: Option<i64>, hi: Option<i64>) -> StorageResult<Vec<(i64, Rid)>> {
        let mut out = Vec::new();
        for bt in &self.btrees {
            out.extend(bt.range(lo, hi)?);
        }
        if self.btrees.len() > 1 {
            // Concatenation of k key-ordered runs; std's stable sort
            // detects and merges existing runs, so this is an O(n log k)
            // k-way merge, not a from-scratch sort.
            out.sort_by_key(|(k, _)| *k);
        }
        Ok(out)
    }

    /// Range probe pruned to one partition's tree when the caller knows
    /// (via [`TableInfo::pruned_partition`]) the key can only live there.
    pub fn range_in(
        &self,
        partition: Option<usize>,
        lo: Option<i64>,
        hi: Option<i64>,
    ) -> StorageResult<Vec<(i64, Rid)>> {
        match partition {
            Some(p) => self.btrees[p].range(lo, hi),
            None => self.range(lo, hi),
        }
    }
}

#[derive(Default)]
struct CatalogInner {
    tables: HashMap<String, Arc<TableInfo>>,
    tables_by_id: HashMap<TableId, Arc<TableInfo>>,
    indexes: HashMap<String, Arc<IndexInfo>>,
    next_table: u32,
    next_index: u32,
}

/// The catalog.
pub struct Catalog {
    pool: Arc<BufferPool>,
    inner: RwLock<CatalogInner>,
    oracle: Arc<CommitOracle>,
}

impl Catalog {
    /// A catalog allocating storage from `pool`.
    pub fn new(pool: Arc<BufferPool>) -> Self {
        Self { pool, inner: RwLock::new(CatalogInner::default()), oracle: CommitOracle::new() }
    }

    /// The shared buffer pool.
    pub fn pool(&self) -> &Arc<BufferPool> {
        &self.pool
    }

    /// The commit-timestamp authority for every table in this catalog.
    /// There is exactly one clock per catalog — servers sharing a catalog
    /// must stamp versions and pin snapshots against the same sequence,
    /// or a commit published through one server would sit above another
    /// server's snapshot horizon and silently vanish from its reads.
    pub fn oracle(&self) -> &Arc<CommitOracle> {
        &self.oracle
    }

    /// Create an unpartitioned table. (Partition choice is the *caller's*
    /// policy — e.g. `ExecContext::ddl_partitions` on the server's DDL
    /// path — never catalog-global state, so servers sharing one catalog
    /// stay independent.)
    pub fn create_table(&self, name: &str, schema: Schema) -> StorageResult<Arc<TableInfo>> {
        self.create_table_partitioned(name, schema, 1, 0)
    }

    /// Create a table hash-partitioned `partitions` ways on column `key`.
    pub fn create_table_partitioned(
        &self,
        name: &str,
        schema: Schema,
        partitions: usize,
        key: usize,
    ) -> StorageResult<Arc<TableInfo>> {
        let name = name.to_ascii_lowercase();
        if key >= schema.len() {
            return Err(StorageError::SchemaMismatch(format!(
                "partition key column {key} out of range"
            )));
        }
        let mut inner = self.inner.write();
        if inner.tables.contains_key(&name) {
            return Err(StorageError::AlreadyExists(name));
        }
        let id = TableId(inner.next_table);
        inner.next_table += 1;
        let ncols = schema.len();
        let info = Arc::new(TableInfo {
            id,
            name: name.clone(),
            schema,
            heap: Arc::new(PartitionedHeap::create(Arc::clone(&self.pool), partitions, key)),
            versions: VersionStore::new(),
            stats: RwLock::new(TableStats {
                row_count: 0,
                page_count: 0,
                columns: vec![Default::default(); ncols],
            }),
        });
        inner.tables.insert(name, Arc::clone(&info));
        inner.tables_by_id.insert(id, Arc::clone(&info));
        Ok(info)
    }

    /// Look up a table by name.
    pub fn table(&self, name: &str) -> StorageResult<Arc<TableInfo>> {
        let name = name.to_ascii_lowercase();
        self.inner.read().tables.get(&name).cloned().ok_or(StorageError::NotFound(name))
    }

    /// Look up a table by id.
    pub fn table_by_id(&self, id: TableId) -> StorageResult<Arc<TableInfo>> {
        self.inner
            .read()
            .tables_by_id
            .get(&id)
            .cloned()
            .ok_or_else(|| StorageError::NotFound(format!("table #{}", id.0)))
    }

    /// Drop a table and its indexes (pages are not reclaimed; see crate
    /// docs on space reclamation).
    pub fn drop_table(&self, name: &str) -> StorageResult<()> {
        let name = name.to_ascii_lowercase();
        let mut inner = self.inner.write();
        let info = inner.tables.remove(&name).ok_or(StorageError::NotFound(name))?;
        inner.tables_by_id.remove(&info.id);
        inner.indexes.retain(|_, ix| ix.table != info.id);
        Ok(())
    }

    /// All tables, sorted by name.
    pub fn list_tables(&self) -> Vec<Arc<TableInfo>> {
        let mut v: Vec<_> = self.inner.read().tables.values().cloned().collect();
        v.sort_by(|a, b| a.name.cmp(&b.name));
        v
    }

    /// Create a B+tree index over an existing `Int` column, bulk-loading
    /// current rows.
    pub fn create_index(
        &self,
        name: &str,
        table_name: &str,
        column_name: &str,
    ) -> StorageResult<Arc<IndexInfo>> {
        let name = name.to_ascii_lowercase();
        let table = self.table(table_name)?;
        let column = table
            .schema
            .index_of(column_name)
            .ok_or_else(|| StorageError::NotFound(format!("column {column_name}")))?;
        if table.schema.column(column).ty != DataType::Int {
            return Err(StorageError::SchemaMismatch(format!(
                "index column {column_name} must be INT"
            )));
        }
        {
            let inner = self.inner.read();
            if inner.indexes.contains_key(&name) {
                return Err(StorageError::AlreadyExists(name));
            }
        }
        let mut btrees = Vec::with_capacity(table.heap.partitions());
        for p in 0..table.heap.partitions() {
            let btree = Arc::new(BTree::create(Arc::clone(&self.pool))?);
            for item in table.heap.scan_partition(p) {
                let (rid, tuple) = item?;
                if let Some(k) = tuple.get(column).as_int() {
                    btree.insert(k, rid)?;
                }
            }
            btrees.push(btree);
        }
        let mut inner = self.inner.write();
        if inner.indexes.contains_key(&name) {
            return Err(StorageError::AlreadyExists(name));
        }
        let id = IndexId(inner.next_index);
        inner.next_index += 1;
        let info = Arc::new(IndexInfo { id, name: name.clone(), table: table.id, column, btrees });
        inner.indexes.insert(name, Arc::clone(&info));
        Ok(info)
    }

    /// All indexes on a table.
    pub fn indexes_for(&self, table: TableId) -> Vec<Arc<IndexInfo>> {
        let mut v: Vec<_> =
            self.inner.read().indexes.values().filter(|ix| ix.table == table).cloned().collect();
        v.sort_by(|a, b| a.name.cmp(&b.name));
        v
    }

    /// Index on a specific column of a table, if any.
    pub fn index_on(&self, table: TableId, column: usize) -> Option<Arc<IndexInfo>> {
        self.inner
            .read()
            .indexes
            .values()
            .find(|ix| ix.table == table && ix.column == column)
            .cloned()
    }

    /// Recompute a table's statistics (the `ANALYZE` command).
    pub fn analyze_table(&self, name: &str) -> StorageResult<()> {
        let table = self.table(name)?;
        let stats = analyze(&table.heap, &table.schema)?;
        *table.stats.write() = stats;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::MemDisk;
    use crate::schema::Column;
    use crate::tuple::Tuple;
    use crate::value::Value;

    fn catalog() -> Catalog {
        Catalog::new(BufferPool::new(Arc::new(MemDisk::new()), 256))
    }

    fn two_col() -> Schema {
        Schema::new(vec![Column::new("id", DataType::Int), Column::new("name", DataType::Str)])
    }

    #[test]
    fn create_and_lookup_case_insensitive() {
        let c = catalog();
        c.create_table("Users", two_col()).unwrap();
        assert!(c.table("USERS").is_ok());
        assert!(c.table("users").is_ok());
        assert!(matches!(c.table("nope"), Err(StorageError::NotFound(_))));
        assert!(matches!(c.create_table("users", two_col()), Err(StorageError::AlreadyExists(_))));
    }

    #[test]
    fn drop_table_removes_indexes_too() {
        let c = catalog();
        let t = c.create_table("t", two_col()).unwrap();
        t.heap.insert(&Tuple::new(vec![Value::Int(1), Value::Str("a".into())])).unwrap();
        c.create_index("t_id", "t", "id").unwrap();
        assert_eq!(c.indexes_for(t.id).len(), 1);
        c.drop_table("t").unwrap();
        assert!(c.table("t").is_err());
        assert!(c.indexes_for(t.id).is_empty());
    }

    #[test]
    fn index_bulk_load_and_probe() {
        let c = catalog();
        let t = c.create_table("t", two_col()).unwrap();
        let mut rids = Vec::new();
        for i in 0..200i64 {
            rids.push(
                t.heap
                    .insert(&Tuple::new(vec![Value::Int(i), Value::Str(format!("n{i}"))]))
                    .unwrap(),
            );
        }
        let ix = c.create_index("t_id", "t", "id").unwrap();
        assert_eq!(ix.search(42).unwrap(), vec![rids[42]]);
        assert_eq!(c.index_on(t.id, 0).unwrap().id, ix.id);
        assert!(c.index_on(t.id, 1).is_none());
    }

    #[test]
    fn partitioned_table_routes_rows_and_indexes_per_partition() {
        let c = catalog();
        let t = c.create_table_partitioned("p", two_col(), 4, 0).unwrap();
        assert_eq!(t.partitions(), 4);
        assert_eq!(t.partition_key(), 0);
        for i in 0..200i64 {
            t.heap.insert(&Tuple::new(vec![Value::Int(i), Value::Str(format!("n{i}"))])).unwrap();
        }
        let ix = c.create_index("p_id", "p", "id").unwrap();
        assert_eq!(ix.partitions(), 4);
        // Each key is in exactly one partition's tree — the one its row
        // hashed to.
        for k in 0..200i64 {
            let p = crate::partition::partition_of_value(&Value::Int(k), 4);
            assert_eq!(ix.btree_for(p).search(k).unwrap().len(), 1, "key {k}");
            let elsewhere: usize =
                (0..4).filter(|q| *q != p).map(|q| ix.btree_for(q).search(k).unwrap().len()).sum();
            assert_eq!(elsewhere, 0, "key {k} leaked into another partition");
        }
        // Merged range covers everything, in key order.
        let all = ix.range(None, None).unwrap();
        assert_eq!(all.len(), 200);
        assert!(all.windows(2).all(|w| w[0].0 <= w[1].0));
    }

    #[test]
    fn index_probes_prune_to_the_hash_partition_when_the_key_is_pinned() {
        let c = catalog();
        let t = c.create_table_partitioned("p", two_col(), 4, 0).unwrap();
        for i in 0..100i64 {
            t.heap.insert(&Tuple::new(vec![Value::Int(i), Value::Str("x".into())])).unwrap();
        }
        let ix = c.create_index("p_id", "p", "id").unwrap();
        // A pinned key on the partition-key column prunes to its hash
        // partition, and the pruned probe still finds the row.
        let p = t.pruned_partition(0, Some(42), Some(42)).unwrap();
        assert_eq!(p, crate::partition::partition_of_value(&Value::Int(42), 4));
        assert_eq!(ix.range_in(Some(p), Some(42), Some(42)).unwrap().len(), 1);
        // Ranges, other columns, and single-partition tables don't prune.
        assert!(t.pruned_partition(0, Some(1), Some(5)).is_none());
        assert!(t.pruned_partition(1, Some(42), Some(42)).is_none());
        let flat = c.create_table("f", two_col()).unwrap();
        assert!(flat.pruned_partition(0, Some(42), Some(42)).is_none());
    }

    #[test]
    fn bad_partition_key_is_rejected() {
        let c = catalog();
        assert!(matches!(
            c.create_table_partitioned("bad", two_col(), 2, 9),
            Err(StorageError::SchemaMismatch(_))
        ));
    }

    #[test]
    fn index_on_string_column_is_rejected() {
        let c = catalog();
        c.create_table("t", two_col()).unwrap();
        assert!(matches!(c.create_index("bad", "t", "name"), Err(StorageError::SchemaMismatch(_))));
    }

    #[test]
    fn analyze_updates_stats() {
        let c = catalog();
        let t = c.create_table("t", two_col()).unwrap();
        for i in 0..50i64 {
            t.heap.insert(&Tuple::new(vec![Value::Int(i), Value::Str("x".into())])).unwrap();
        }
        assert_eq!(t.stats.read().row_count, 0);
        c.analyze_table("t").unwrap();
        assert_eq!(t.stats.read().row_count, 50);
        assert_eq!(t.stats.read().columns[0].ndv, 50);
    }

    #[test]
    fn list_tables_sorted() {
        let c = catalog();
        c.create_table("zeta", two_col()).unwrap();
        c.create_table("alpha", two_col()).unwrap();
        let names: Vec<String> = c.list_tables().iter().map(|t| t.name.clone()).collect();
        assert_eq!(names, vec!["alpha", "zeta"]);
    }
}
