//! Write-ahead log.
//!
//! Minimal redo log: DML appends records, commit forces a flush to the log
//! disk. This is the "I/O needed for logging purposes" that makes the
//! paper's Workload B touch the disk at all (§3.1.1), plus enough recovery
//! machinery (sequential re-read + redo) to test crash consistency.

use crate::disk::DiskManager;
use crate::error::{StorageError, StorageResult};
use crate::page::{PageId, PAGE_SIZE};
use crate::tuple::Rid;
use parking_lot::Mutex;
use std::sync::Arc;

/// Log sequence number (byte offset order).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Lsn(pub u64);

/// A log record.
#[derive(Debug, Clone, PartialEq)]
pub enum LogRecord {
    /// Transaction start.
    Begin {
        /// Transaction id.
        xid: u64,
    },
    /// Tuple inserted.
    Insert {
        /// Transaction id.
        xid: u64,
        /// Table the tuple went into.
        table: u32,
        /// Where it landed.
        rid: Rid,
        /// Encoded tuple.
        bytes: Vec<u8>,
    },
    /// Tuple deleted. Carries the *before-image* of the deleted row so the
    /// transaction layer can undo the delete on `ROLLBACK` (and so the log
    /// is self-describing about what each transaction destroyed).
    Delete {
        /// Transaction id.
        xid: u64,
        /// Table it was removed from.
        table: u32,
        /// Where it was.
        rid: Rid,
        /// Encoded before-image of the deleted tuple.
        before: Vec<u8>,
    },
    /// Transaction committed (forces a flush — the atomic commit point:
    /// a transaction's effects are replayed at recovery iff this record
    /// reached the log disk).
    Commit {
        /// Transaction id.
        xid: u64,
    },
    /// Transaction aborted (its records must be skipped by redo).
    Abort {
        /// Transaction id.
        xid: u64,
    },
}

impl LogRecord {
    /// The transaction this record belongs to.
    pub fn xid(&self) -> u64 {
        match self {
            LogRecord::Begin { xid }
            | LogRecord::Insert { xid, .. }
            | LogRecord::Delete { xid, .. }
            | LogRecord::Commit { xid }
            | LogRecord::Abort { xid } => *xid,
        }
    }
}

impl LogRecord {
    fn encode(&self) -> Vec<u8> {
        let mut b = Vec::new();
        match self {
            LogRecord::Begin { xid } => {
                b.push(1);
                b.extend_from_slice(&xid.to_le_bytes());
            }
            LogRecord::Insert { xid, table, rid, bytes } => {
                b.push(2);
                b.extend_from_slice(&xid.to_le_bytes());
                b.extend_from_slice(&table.to_le_bytes());
                b.extend_from_slice(&rid.page.0.to_le_bytes());
                b.extend_from_slice(&rid.slot.to_le_bytes());
                b.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
                b.extend_from_slice(bytes);
            }
            LogRecord::Delete { xid, table, rid, before } => {
                b.push(3);
                b.extend_from_slice(&xid.to_le_bytes());
                b.extend_from_slice(&table.to_le_bytes());
                b.extend_from_slice(&rid.page.0.to_le_bytes());
                b.extend_from_slice(&rid.slot.to_le_bytes());
                b.extend_from_slice(&(before.len() as u32).to_le_bytes());
                b.extend_from_slice(before);
            }
            LogRecord::Commit { xid } => {
                b.push(4);
                b.extend_from_slice(&xid.to_le_bytes());
            }
            LogRecord::Abort { xid } => {
                b.push(5);
                b.extend_from_slice(&xid.to_le_bytes());
            }
        }
        b
    }

    fn decode(buf: &[u8]) -> StorageResult<(LogRecord, usize)> {
        let corrupt = || StorageError::Corrupt("truncated log record".into());
        let tag = *buf.first().ok_or_else(corrupt)?;
        let u64_at = |off: usize| -> StorageResult<u64> {
            buf.get(off..off + 8)
                .map(|s| u64::from_le_bytes(s.try_into().unwrap()))
                .ok_or_else(corrupt)
        };
        let u32_at = |off: usize| -> StorageResult<u32> {
            buf.get(off..off + 4)
                .map(|s| u32::from_le_bytes(s.try_into().unwrap()))
                .ok_or_else(corrupt)
        };
        let u16_at = |off: usize| -> StorageResult<u16> {
            buf.get(off..off + 2)
                .map(|s| u16::from_le_bytes(s.try_into().unwrap()))
                .ok_or_else(corrupt)
        };
        match tag {
            1 => Ok((LogRecord::Begin { xid: u64_at(1)? }, 9)),
            2 => {
                let xid = u64_at(1)?;
                let table = u32_at(9)?;
                let page = u64_at(13)?;
                let slot = u16_at(21)?;
                let len = u32_at(23)? as usize;
                let bytes = buf.get(27..27 + len).ok_or_else(corrupt)?.to_vec();
                Ok((
                    LogRecord::Insert { xid, table, rid: Rid::new(PageId(page), slot), bytes },
                    27 + len,
                ))
            }
            3 => {
                let xid = u64_at(1)?;
                let table = u32_at(9)?;
                let page = u64_at(13)?;
                let slot = u16_at(21)?;
                let len = u32_at(23)? as usize;
                let before = buf.get(27..27 + len).ok_or_else(corrupt)?.to_vec();
                Ok((
                    LogRecord::Delete { xid, table, rid: Rid::new(PageId(page), slot), before },
                    27 + len,
                ))
            }
            4 => Ok((LogRecord::Commit { xid: u64_at(1)? }, 9)),
            5 => Ok((LogRecord::Abort { xid: u64_at(1)? }, 9)),
            t => Err(StorageError::Corrupt(format!("unknown log tag {t}"))),
        }
    }
}

struct WalInner {
    /// Current partially-filled page buffer; bytes 0..2 = used length.
    buf: Box<[u8; PAGE_SIZE]>,
    used: usize,
    current_page: Option<PageId>,
    next_lsn: u64,
    flushed_lsn: u64,
}

/// The write-ahead log over its own disk.
pub struct Wal {
    disk: Arc<dyn DiskManager>,
    inner: Mutex<WalInner>,
}

const WAL_HEADER: usize = 2;

impl Wal {
    /// A WAL writing to `disk` (typically a dedicated [`crate::MemDisk`]
    /// with latency, or a [`crate::FileDisk`]).
    pub fn new(disk: Arc<dyn DiskManager>) -> Self {
        Self {
            disk,
            inner: Mutex::new(WalInner {
                buf: Box::new([0u8; PAGE_SIZE]),
                used: WAL_HEADER,
                current_page: None,
                next_lsn: 0,
                flushed_lsn: 0,
            }),
        }
    }

    /// Append a record; returns its LSN. The record is buffered — call
    /// [`flush`](Self::flush) (or append a `Commit`, which flushes
    /// implicitly) to force it to the log disk.
    pub fn append(&self, rec: &LogRecord) -> StorageResult<Lsn> {
        let bytes = rec.encode();
        let framed = bytes.len() + 4; // u32 length prefix
        if framed > PAGE_SIZE - WAL_HEADER {
            return Err(StorageError::RecordTooLarge(bytes.len()));
        }
        let mut inner = self.inner.lock();
        if inner.used + framed > PAGE_SIZE {
            self.flush_locked(&mut inner)?;
            inner.buf.fill(0);
            inner.used = WAL_HEADER;
            inner.current_page = None;
        }
        let used = inner.used;
        inner.buf[used..used + 4].copy_from_slice(&(bytes.len() as u32).to_le_bytes());
        inner.buf[used + 4..used + framed].copy_from_slice(&bytes);
        inner.used += framed;
        let lsn = Lsn(inner.next_lsn);
        inner.next_lsn += 1;
        if matches!(rec, LogRecord::Commit { .. }) {
            self.flush_locked(&mut inner)?;
        }
        Ok(lsn)
    }

    /// Force buffered records to the log disk.
    pub fn flush(&self) -> StorageResult<()> {
        let mut inner = self.inner.lock();
        self.flush_locked(&mut inner)
    }

    fn flush_locked(&self, inner: &mut WalInner) -> StorageResult<()> {
        if inner.used <= WAL_HEADER {
            return Ok(());
        }
        let page = match inner.current_page {
            Some(p) => p,
            None => {
                let p = self.disk.allocate()?;
                inner.current_page = Some(p);
                p
            }
        };
        let used = inner.used as u16;
        inner.buf[0..2].copy_from_slice(&used.to_le_bytes());
        self.disk.write_page(page, &inner.buf[..])?;
        inner.flushed_lsn = inner.next_lsn;
        Ok(())
    }

    /// LSN up to which records are durable.
    pub fn flushed_lsn(&self) -> Lsn {
        Lsn(self.inner.lock().flushed_lsn)
    }

    /// The set of transactions with a durable `Commit` record — the
    /// transactions whose effects redo recovery is allowed to replay.
    pub fn committed_xids(&self) -> StorageResult<std::collections::HashSet<u64>> {
        let mut out = std::collections::HashSet::new();
        for rec in self.read_all()? {
            if let LogRecord::Commit { xid } = rec {
                out.insert(xid);
            }
        }
        Ok(out)
    }

    /// Read every durable record back, in order (recovery scan).
    pub fn read_all(&self) -> StorageResult<Vec<LogRecord>> {
        self.flush()?;
        let mut out = Vec::new();
        let mut buf = [0u8; PAGE_SIZE];
        for p in 0..self.disk.num_pages() {
            self.disk.read_page(PageId(p), &mut buf)?;
            let used = u16::from_le_bytes([buf[0], buf[1]]) as usize;
            let mut off = WAL_HEADER;
            while off + 4 <= used {
                let len = u32::from_le_bytes(buf[off..off + 4].try_into().unwrap()) as usize;
                let (rec, consumed) = LogRecord::decode(&buf[off + 4..off + 4 + len])?;
                debug_assert_eq!(consumed, len);
                out.push(rec);
                off += 4 + len;
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::MemDisk;

    fn wal() -> Wal {
        Wal::new(Arc::new(MemDisk::new()))
    }

    fn sample_records() -> Vec<LogRecord> {
        vec![
            LogRecord::Begin { xid: 1 },
            LogRecord::Insert {
                xid: 1,
                table: 3,
                rid: Rid::new(PageId(9), 4),
                bytes: vec![1, 2, 3, 4, 5],
            },
            LogRecord::Delete {
                xid: 1,
                table: 3,
                rid: Rid::new(PageId(9), 4),
                before: vec![1, 2, 3, 4, 5],
            },
            LogRecord::Commit { xid: 1 },
            LogRecord::Abort { xid: 2 },
        ]
    }

    #[test]
    fn append_read_roundtrip() {
        let w = wal();
        for r in sample_records() {
            w.append(&r).unwrap();
        }
        assert_eq!(w.read_all().unwrap(), sample_records());
    }

    #[test]
    fn commit_forces_flush() {
        let disk = Arc::new(MemDisk::new());
        let w = Wal::new(Arc::clone(&disk) as Arc<dyn DiskManager>);
        w.append(&LogRecord::Begin { xid: 1 }).unwrap();
        assert_eq!(disk.stats().writes, 0, "begin alone is buffered");
        w.append(&LogRecord::Commit { xid: 1 }).unwrap();
        assert!(disk.stats().writes >= 1, "commit must hit the disk");
        assert_eq!(w.flushed_lsn(), Lsn(2));
    }

    #[test]
    fn spans_multiple_pages() {
        let w = wal();
        let rec = LogRecord::Insert {
            xid: 7,
            table: 1,
            rid: Rid::new(PageId(0), 0),
            bytes: vec![0xAB; 1000],
        };
        let n = 40; // ~40 KB of records ≫ one page
        for _ in 0..n {
            w.append(&rec).unwrap();
        }
        let back = w.read_all().unwrap();
        assert_eq!(back.len(), n);
        assert!(back.iter().all(|r| *r == rec));
    }

    #[test]
    fn oversized_record_rejected() {
        let w = wal();
        let rec = LogRecord::Insert {
            xid: 1,
            table: 1,
            rid: Rid::new(PageId(0), 0),
            bytes: vec![0; PAGE_SIZE],
        };
        assert!(matches!(w.append(&rec), Err(StorageError::RecordTooLarge(_))));
    }

    #[test]
    fn committed_xids_tracks_only_commit_records() {
        let w = wal();
        for r in sample_records() {
            w.append(&r).unwrap();
        }
        w.append(&LogRecord::Begin { xid: 3 }).unwrap();
        w.flush().unwrap();
        let committed = w.committed_xids().unwrap();
        assert!(committed.contains(&1));
        assert!(!committed.contains(&2), "aborted xid must not count as committed");
        assert!(!committed.contains(&3), "in-flight xid must not count as committed");
    }

    #[test]
    fn decode_rejects_truncation() {
        assert!(LogRecord::decode(&[]).is_err());
        assert!(LogRecord::decode(&[2, 1]).is_err());
        assert!(LogRecord::decode(&[9, 0, 0, 0, 0, 0, 0, 0, 0]).is_err());
    }
}
