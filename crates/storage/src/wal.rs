//! Write-ahead log: LSN-addressed, checksummed, segmented.
//!
//! This is the "I/O needed for logging purposes" that makes the paper's
//! Workload B touch the disk at all (§3.1.1) — grown up into something a
//! long-running service can survive on:
//!
//! - The log is a chain of **segments** (see [`crate::segment`]), each a
//!   page store of up to [`Wal::segment_pages`] pages (a soft cap: a record
//!   never spans segments, so the last page group of a segment may run
//!   over). Sealed segments are immutable; checkpoint truncation deletes
//!   whole segment files below the checkpoint LSN.
//! - An [`Lsn`] is a **real address**: segment id + byte offset of the
//!   record's first fragment header. Lexicographic order is log order, and
//!   a replica or recovery pass can resume from any LSN it was handed.
//! - Every WAL page carries an 8-byte header: a CRC-32 over the rest of
//!   the page, the `used` payload length, and two reserved bytes. The tail
//!   page is rewritten in place as records accumulate, so a crash can tear
//!   it; the checksum turns that tear into a detected **end of log**
//!   instead of garbage decoded as records.
//! - Records are framed as **fragments** (`u32` header: high bit = "more
//!   fragments follow", low 31 bits = payload length), so a record larger
//!   than a page spans pages within its segment instead of aborting the
//!   transaction with `RecordTooLarge`.
//!
//! Durability: `Commit` forces [`Wal::flush`], which writes the tail page
//! and issues [`DiskManager::sync`] — the atomic commit point. A
//! transaction's effects are replayed at recovery iff its `Commit` record
//! reached stable storage.
//!
//! Reading back comes in two strengths. The strict readers
//! ([`Wal::read_all`], [`Wal::read_from`]) error with
//! [`StorageError::Corrupt`] — never panic — on any damage. The tolerant
//! readers ([`Wal::read_store`], [`Wal::read_store_from`],
//! [`Wal::read_prefix`]) return the longest valid prefix plus an optional
//! error, which is what recovery wants: a torn tail is silently the end of
//! the log, while corruption *in front of* valid data is reported.
//! Recovery code must use the static store readers **before**
//! [`Wal::open`], because open repairs the tail (zeroing everything past
//! the valid prefix) and thereby destroys the evidence.

use crate::disk::{DiskManager, IoStats};
use crate::error::{StorageError, StorageResult};
use crate::page::{PageId, PAGE_SIZE};
use crate::segment::{MemSegmentStore, SegmentStore};
use crate::tuple::Rid;
use parking_lot::Mutex;
use std::sync::Arc;

/// Bytes of page header: CRC-32 (4) + `used` length (2) + reserved (2).
const PAGE_HEADER: usize = 8;
/// Bytes of fragment header: one little-endian `u32`.
const FRAG_HEADER: usize = 4;
/// High bit of a fragment header: more fragments of this record follow.
const MORE_FLAG: u32 = 1 << 31;

/// Default segment size in pages (2 MiB of log at 8 KiB pages).
pub const DEFAULT_SEGMENT_PAGES: u64 = 256;

/// Log sequence number: a real log address. `segment` is the segment id,
/// `offset` the byte offset of the record's first fragment header within
/// that segment. Lexicographic order is log order because segment ids are
/// assigned monotonically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Lsn {
    /// Segment the record lives in.
    pub segment: u64,
    /// Byte offset within the segment.
    pub offset: u64,
}

impl Lsn {
    /// The zero address: before every record ever written.
    pub const ZERO: Lsn = Lsn { segment: 0, offset: 0 };
}

impl std::fmt::Display for Lsn {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}", self.segment, self.offset)
    }
}

const fn build_crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC32_TABLE: [u32; 256] = build_crc32_table();

/// CRC-32 (IEEE polynomial) of `bytes` — the page checksum used by the WAL
/// and the snapshot format.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC32_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// A log record.
#[derive(Debug, Clone, PartialEq)]
pub enum LogRecord {
    /// Transaction start.
    Begin {
        /// Transaction id.
        xid: u64,
    },
    /// Tuple inserted.
    Insert {
        /// Transaction id.
        xid: u64,
        /// Table the tuple went into.
        table: u32,
        /// Where it landed.
        rid: Rid,
        /// Encoded tuple.
        bytes: Vec<u8>,
    },
    /// Tuple deleted. Carries the *before-image* of the deleted row so the
    /// transaction layer can undo the delete on `ROLLBACK` (and so the log
    /// is self-describing about what each transaction destroyed).
    Delete {
        /// Transaction id.
        xid: u64,
        /// Table it was removed from.
        table: u32,
        /// Where it was.
        rid: Rid,
        /// Encoded before-image of the deleted tuple.
        before: Vec<u8>,
    },
    /// Transaction committed (forces a flush — the atomic commit point:
    /// a transaction's effects are replayed at recovery iff this record
    /// reached the log disk).
    Commit {
        /// Transaction id.
        xid: u64,
    },
    /// Transaction aborted (its records must be skipped by redo).
    Abort {
        /// Transaction id.
        xid: u64,
    },
}

impl LogRecord {
    /// The transaction this record belongs to.
    pub fn xid(&self) -> u64 {
        match self {
            LogRecord::Begin { xid }
            | LogRecord::Insert { xid, .. }
            | LogRecord::Delete { xid, .. }
            | LogRecord::Commit { xid }
            | LogRecord::Abort { xid } => *xid,
        }
    }

    /// Serialize to the WAL's on-disk record layout. This is the payload
    /// format replication ships over the wire (`WALREC` lines), so a
    /// replica persists byte-identical records into its own log.
    pub fn to_bytes(&self) -> Vec<u8> {
        self.encode()
    }

    /// Decode one record from [`to_bytes`](Self::to_bytes) output. The
    /// buffer must contain exactly one record (no trailing bytes), which
    /// is what the wire framing guarantees per `WALREC` line.
    pub fn from_bytes(buf: &[u8]) -> StorageResult<LogRecord> {
        let (record, used) = Self::decode(buf)?;
        if used != buf.len() {
            return Err(StorageError::Corrupt(format!(
                "log record used {used} of {} bytes",
                buf.len()
            )));
        }
        Ok(record)
    }
}

impl LogRecord {
    fn encode(&self) -> Vec<u8> {
        let mut b = Vec::new();
        match self {
            LogRecord::Begin { xid } => {
                b.push(1);
                b.extend_from_slice(&xid.to_le_bytes());
            }
            LogRecord::Insert { xid, table, rid, bytes } => {
                b.push(2);
                b.extend_from_slice(&xid.to_le_bytes());
                b.extend_from_slice(&table.to_le_bytes());
                b.extend_from_slice(&rid.page.0.to_le_bytes());
                b.extend_from_slice(&rid.slot.to_le_bytes());
                b.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
                b.extend_from_slice(bytes);
            }
            LogRecord::Delete { xid, table, rid, before } => {
                b.push(3);
                b.extend_from_slice(&xid.to_le_bytes());
                b.extend_from_slice(&table.to_le_bytes());
                b.extend_from_slice(&rid.page.0.to_le_bytes());
                b.extend_from_slice(&rid.slot.to_le_bytes());
                b.extend_from_slice(&(before.len() as u32).to_le_bytes());
                b.extend_from_slice(before);
            }
            LogRecord::Commit { xid } => {
                b.push(4);
                b.extend_from_slice(&xid.to_le_bytes());
            }
            LogRecord::Abort { xid } => {
                b.push(5);
                b.extend_from_slice(&xid.to_le_bytes());
            }
        }
        b
    }

    fn decode(buf: &[u8]) -> StorageResult<(LogRecord, usize)> {
        let corrupt = || StorageError::Corrupt("truncated log record".into());
        let tag = *buf.first().ok_or_else(corrupt)?;
        let u64_at = |off: usize| -> StorageResult<u64> {
            buf.get(off..off + 8)
                .map(|s| u64::from_le_bytes(s.try_into().unwrap()))
                .ok_or_else(corrupt)
        };
        let u32_at = |off: usize| -> StorageResult<u32> {
            buf.get(off..off + 4)
                .map(|s| u32::from_le_bytes(s.try_into().unwrap()))
                .ok_or_else(corrupt)
        };
        let u16_at = |off: usize| -> StorageResult<u16> {
            buf.get(off..off + 2)
                .map(|s| u16::from_le_bytes(s.try_into().unwrap()))
                .ok_or_else(corrupt)
        };
        match tag {
            1 => Ok((LogRecord::Begin { xid: u64_at(1)? }, 9)),
            2 => {
                let xid = u64_at(1)?;
                let table = u32_at(9)?;
                let page = u64_at(13)?;
                let slot = u16_at(21)?;
                let len = u32_at(23)? as usize;
                let bytes = buf.get(27..27 + len).ok_or_else(corrupt)?.to_vec();
                Ok((
                    LogRecord::Insert { xid, table, rid: Rid::new(PageId(page), slot), bytes },
                    27 + len,
                ))
            }
            3 => {
                let xid = u64_at(1)?;
                let table = u32_at(9)?;
                let page = u64_at(13)?;
                let slot = u16_at(21)?;
                let len = u32_at(23)? as usize;
                let before = buf.get(27..27 + len).ok_or_else(corrupt)?.to_vec();
                Ok((
                    LogRecord::Delete { xid, table, rid: Rid::new(PageId(page), slot), before },
                    27 + len,
                ))
            }
            4 => Ok((LogRecord::Commit { xid: u64_at(1)? }, 9)),
            5 => Ok((LogRecord::Abort { xid: u64_at(1)? }, 9)),
            t => Err(StorageError::Corrupt(format!("unknown log tag {t}"))),
        }
    }
}

struct WalInner {
    /// Current segment id.
    seg_id: u64,
    /// Page store of the current segment.
    disk: Arc<dyn DiskManager>,
    /// Index of the tail page within the current segment.
    page_idx: u64,
    /// Tail page buffer (header recomputed on every write-out).
    buf: Box<[u8; PAGE_SIZE]>,
    /// Bytes of `buf` in use, page header included (so always ≥ 8).
    used: usize,
    /// Address one past the last appended record.
    next: Lsn,
    /// Address up to which the log is durable.
    flushed: Lsn,
    /// Un-synced bytes exist (tail content or closed-but-unsynced pages).
    dirty: bool,
}

impl WalInner {
    fn tail_offset(&self) -> u64 {
        self.page_idx * PAGE_SIZE as u64 + self.used as u64
    }

    /// Write the tail page out (checksummed), without a sync.
    fn write_tail(&mut self) -> StorageResult<()> {
        let used = self.used as u16;
        self.buf[4..6].copy_from_slice(&used.to_le_bytes());
        self.buf[6..8].fill(0);
        let crc = crc32(&self.buf[4..]);
        self.buf[0..4].copy_from_slice(&crc.to_le_bytes());
        while self.disk.num_pages() <= self.page_idx {
            self.disk.allocate()?;
        }
        self.disk.write_page(PageId(self.page_idx), &self.buf[..])
    }

    /// Seal the tail page and start a fresh one after it.
    fn close_page(&mut self) -> StorageResult<()> {
        self.write_tail()?;
        self.page_idx += 1;
        self.buf.fill(0);
        self.used = PAGE_HEADER;
        Ok(())
    }

    /// Make everything appended so far durable: write the tail page if it
    /// holds payload, then issue the sync barrier.
    fn flush(&mut self) -> StorageResult<()> {
        if !self.dirty {
            return Ok(());
        }
        if self.used > PAGE_HEADER {
            self.write_tail()?;
        }
        self.disk.sync()?;
        self.flushed = self.next;
        self.dirty = false;
        Ok(())
    }
}

/// The write-ahead log over a segment store.
pub struct Wal {
    store: Arc<dyn SegmentStore>,
    segment_pages: u64,
    inner: Mutex<WalInner>,
}

/// Result of scanning one segment for records.
struct SegScan {
    /// `(offset, record)` for every complete, decodable record.
    records: Vec<(u64, LogRecord)>,
    /// Offset one past the last complete record (the valid prefix end).
    end: u64,
    /// Damage found in front of the prefix end, if any. `None` with a
    /// shortened prefix means a clean torn tail (end of log).
    error: Option<StorageError>,
}

/// Scan a segment page by page, stopping at the first structural problem.
/// `is_final` relaxes the rules for the segment the writer was last
/// appending to: a checksum-failing page with nothing valid after it, or a
/// fragment chain left dangling at the very end, is a crash artifact — the
/// end of the log — not corruption.
fn scan_segment(disk: &dyn DiskManager, is_final: bool) -> SegScan {
    let corrupt = |msg: &str| Some(StorageError::Corrupt(msg.into()));
    let num_pages = disk.num_pages();
    let mut records = Vec::new();
    let mut end = PAGE_HEADER as u64;
    let mut buf = [0u8; PAGE_SIZE];
    let mut chain: Vec<u8> = Vec::new();
    let mut chain_start: Option<u64> = None;
    for p in 0..num_pages {
        if let Err(e) = disk.read_page(PageId(p), &mut buf) {
            return SegScan { records, end, error: Some(e) };
        }
        let stored = u32::from_le_bytes(buf[0..4].try_into().unwrap());
        if crc32(&buf[4..]) != stored {
            if !is_final {
                let error = corrupt("wal page checksum mismatch in sealed segment");
                return SegScan { records, end, error };
            }
            // A torn tail is only "end of log" if nothing valid follows it;
            // a bad page sitting in front of good ones is real corruption.
            let mut later = [0u8; PAGE_SIZE];
            for q in p + 1..num_pages {
                let valid = disk.read_page(PageId(q), &mut later).is_ok()
                    && crc32(&later[4..]) == u32::from_le_bytes(later[0..4].try_into().unwrap());
                if valid {
                    let error = corrupt("wal page checksum mismatch before valid pages");
                    return SegScan { records, end, error };
                }
            }
            return SegScan { records, end, error: None };
        }
        let used = u16::from_le_bytes([buf[4], buf[5]]) as usize;
        if !(PAGE_HEADER..=PAGE_SIZE).contains(&used) {
            return SegScan { records, end, error: corrupt("wal page `used` out of range") };
        }
        let mut off = PAGE_HEADER;
        while off + FRAG_HEADER <= used {
            let word = u32::from_le_bytes(buf[off..off + FRAG_HEADER].try_into().unwrap());
            let len = (word & !MORE_FLAG) as usize;
            let more = word & MORE_FLAG != 0;
            if off + FRAG_HEADER + len > used {
                let error = corrupt("wal fragment overruns page payload");
                return SegScan { records, end, error };
            }
            if chain_start.is_none() {
                chain_start = Some(p * PAGE_SIZE as u64 + off as u64);
            }
            chain.extend_from_slice(&buf[off + FRAG_HEADER..off + FRAG_HEADER + len]);
            off += FRAG_HEADER + len;
            if !more {
                match LogRecord::decode(&chain) {
                    Ok((rec, consumed)) if consumed == chain.len() => {
                        records.push((chain_start.take().unwrap(), rec));
                        chain.clear();
                        end = p * PAGE_SIZE as u64 + off as u64;
                    }
                    _ => {
                        let error = corrupt("undecodable wal record");
                        return SegScan { records, end, error };
                    }
                }
            }
        }
        if off != used {
            let error = corrupt("wal page payload not fragment-aligned");
            return SegScan { records, end, error };
        }
    }
    if chain_start.is_some() && !is_final {
        let error = corrupt("wal record chain dangling at sealed segment end");
        return SegScan { records, end, error };
    }
    SegScan { records, end, error: None }
}

impl Wal {
    /// Open (or create) a WAL over `store` with the default segment size.
    /// An existing log is scanned and the tail repaired: everything past
    /// the last complete durable record is zeroed, and appends resume
    /// right after it. Open itself never fails on tail corruption — read
    /// the store with [`Wal::read_store`] *before* opening if you need the
    /// damage report.
    pub fn open(store: Arc<dyn SegmentStore>) -> StorageResult<Self> {
        Self::open_with_segment_pages(store, DEFAULT_SEGMENT_PAGES)
    }

    /// [`open`](Self::open) with an explicit segment size in pages (the
    /// rotation threshold; a record never spans segments, so the cap is
    /// soft).
    pub fn open_with_segment_pages(
        store: Arc<dyn SegmentStore>,
        segment_pages: u64,
    ) -> StorageResult<Self> {
        assert!(segment_pages >= 1, "a segment must hold at least one page");
        let ids = store.list()?;
        let seg_id = ids.last().copied().unwrap_or(0);
        let disk = store.open(seg_id)?;
        let scan = scan_segment(disk.as_ref(), true);
        let page_idx = scan.end / PAGE_SIZE as u64;
        let in_page = (scan.end % PAGE_SIZE as u64) as usize;
        let mut buf = Box::new([0u8; PAGE_SIZE]);
        let used = if in_page > PAGE_HEADER {
            disk.read_page(PageId(page_idx), &mut buf[..])?;
            buf[in_page..].fill(0);
            in_page
        } else {
            PAGE_HEADER
        };
        // Repair: zero out every written page past the tail. Stale pages
        // from a dropped fragment chain carry valid checksums and would be
        // misread as log once new appends bridge the gap to them.
        let zero = [0u8; PAGE_SIZE];
        let total = disk.num_pages();
        let mut repaired = false;
        if used == PAGE_HEADER && page_idx < total {
            disk.write_page(PageId(page_idx), &zero)?;
            repaired = true;
        }
        for p in page_idx + 1..total {
            disk.write_page(PageId(p), &zero)?;
            repaired = true;
        }
        if repaired {
            disk.sync()?;
        }
        let next = Lsn { segment: seg_id, offset: page_idx * PAGE_SIZE as u64 + used as u64 };
        Ok(Self {
            store,
            segment_pages,
            inner: Mutex::new(WalInner {
                seg_id,
                disk,
                page_idx,
                buf,
                used,
                next,
                flushed: next,
                dirty: false,
            }),
        })
    }

    /// A fresh WAL over an in-memory segment store (tests, benches).
    pub fn in_memory() -> Self {
        Self::open(Arc::new(MemSegmentStore::new())).expect("in-memory WAL open cannot fail")
    }

    /// The segment store behind this log.
    pub fn store(&self) -> Arc<dyn SegmentStore> {
        Arc::clone(&self.store)
    }

    /// Segment size in pages (the rotation threshold).
    pub fn segment_pages(&self) -> u64 {
        self.segment_pages
    }

    /// Append a record; returns its LSN. The record is buffered — call
    /// [`flush`](Self::flush) (or append a `Commit`, which flushes
    /// implicitly) to force it to stable storage. Records of any size are
    /// accepted: one larger than a page spans pages as fragments.
    pub fn append(&self, rec: &LogRecord) -> StorageResult<Lsn> {
        let bytes = rec.encode();
        let mut inner = self.inner.lock();
        // A fragment needs its header plus at least one payload byte.
        if PAGE_SIZE - inner.used < FRAG_HEADER + 1 {
            inner.close_page()?;
        }
        // Rotate at record boundaries only, once past the soft cap.
        if inner.page_idx >= self.segment_pages {
            self.rotate_locked(&mut inner)?;
        }
        let lsn = Lsn { segment: inner.seg_id, offset: inner.tail_offset() };
        let mut rest: &[u8] = &bytes;
        loop {
            let free = PAGE_SIZE - inner.used - FRAG_HEADER;
            let take = rest.len().min(free);
            let more = take < rest.len();
            let word = take as u32 | if more { MORE_FLAG } else { 0 };
            let used = inner.used;
            inner.buf[used..used + FRAG_HEADER].copy_from_slice(&word.to_le_bytes());
            inner.buf[used + FRAG_HEADER..used + FRAG_HEADER + take].copy_from_slice(&rest[..take]);
            inner.used += FRAG_HEADER + take;
            rest = &rest[take..];
            if rest.is_empty() {
                break;
            }
            inner.close_page()?;
        }
        inner.next = Lsn { segment: inner.seg_id, offset: inner.tail_offset() };
        inner.dirty = true;
        if matches!(rec, LogRecord::Commit { .. }) {
            inner.flush()?;
        }
        Ok(lsn)
    }

    /// Force buffered records to stable storage (tail page write + sync).
    pub fn flush(&self) -> StorageResult<()> {
        self.inner.lock().flush()
    }

    fn rotate_locked(&self, inner: &mut WalInner) -> StorageResult<()> {
        inner.flush()?;
        let next_seg = inner.seg_id + 1;
        inner.disk = self.store.open(next_seg)?;
        inner.seg_id = next_seg;
        inner.page_idx = 0;
        inner.buf.fill(0);
        inner.used = PAGE_HEADER;
        inner.next = Lsn { segment: next_seg, offset: PAGE_HEADER as u64 };
        inner.flushed = inner.next;
        inner.dirty = false;
        Ok(())
    }

    /// Seal the current segment (flushing it) and start a fresh one.
    /// Returns the start address of the new segment — the natural
    /// checkpoint LSN: every record at or after it lives in the new
    /// segment, everything before it in segments that
    /// [`truncate_below`](Self::truncate_below) may delete.
    pub fn rotate(&self) -> StorageResult<Lsn> {
        let mut inner = self.inner.lock();
        self.rotate_locked(&mut inner)?;
        Ok(Lsn { segment: inner.seg_id, offset: 0 })
    }

    /// Delete every sealed segment strictly below `lsn.segment` (the
    /// current segment is never deleted). Returns how many went.
    pub fn truncate_below(&self, lsn: Lsn) -> StorageResult<u64> {
        let inner = self.inner.lock();
        let mut deleted = 0;
        for id in self.store.list()? {
            if id < lsn.segment && id < inner.seg_id {
                self.store.delete(id)?;
                deleted += 1;
            }
        }
        Ok(deleted)
    }

    /// LSN up to which records are durable.
    pub fn flushed_lsn(&self) -> Lsn {
        self.inner.lock().flushed
    }

    /// LSN one past the last appended (not necessarily durable) record.
    pub fn next_lsn(&self) -> Lsn {
        self.inner.lock().next
    }

    /// Sorted ids of the segments currently on the store.
    pub fn segments(&self) -> StorageResult<Vec<u64>> {
        self.store.list()
    }

    /// Aggregated I/O counters of the segment store (live + deleted).
    pub fn io_stats(&self) -> IoStats {
        self.store.io_stats()
    }

    /// The set of transactions with a durable `Commit` record — the
    /// transactions whose effects redo recovery is allowed to replay.
    pub fn committed_xids(&self) -> StorageResult<std::collections::HashSet<u64>> {
        let mut out = std::collections::HashSet::new();
        for (_, rec) in self.read_all()? {
            if let LogRecord::Commit { xid } = rec {
                out.insert(xid);
            }
        }
        Ok(out)
    }

    /// Strict recovery scan: flush, then read every durable record back in
    /// order. Any damage — torn pages included — is
    /// [`StorageError::Corrupt`]; this reader never panics on garbage.
    pub fn read_all(&self) -> StorageResult<Vec<(Lsn, LogRecord)>> {
        self.read_from(Lsn::ZERO)
    }

    /// Strict scan of the records at or after `from` (exclusive of
    /// anything below it; segments wholly below are not even opened).
    pub fn read_from(&self, from: Lsn) -> StorageResult<Vec<(Lsn, LogRecord)>> {
        self.flush()?;
        let (records, error) = Self::read_store_from(self.store.as_ref(), from);
        match error {
            Some(e) => Err(e),
            None => Ok(records),
        }
    }

    /// Tolerant scan: flush, then return the longest valid record prefix
    /// plus whatever damage (if any) cut it short. A cleanly torn tail is
    /// not damage — it is the end of the log.
    pub fn read_prefix(&self) -> (Vec<(Lsn, LogRecord)>, Option<StorageError>) {
        if let Err(e) = self.flush() {
            return (Vec::new(), Some(e));
        }
        Self::read_store(self.store.as_ref())
    }

    /// Tolerant scan of a segment store nobody has opened a [`Wal`] over
    /// yet — the recovery entry point. Returns the longest valid record
    /// prefix and the damage that ended it, if any. Use this *before*
    /// [`Wal::open`]: open repairs the tail and erases the evidence.
    pub fn read_store(store: &dyn SegmentStore) -> (Vec<(Lsn, LogRecord)>, Option<StorageError>) {
        Self::read_store_from(store, Lsn::ZERO)
    }

    /// [`read_store`](Self::read_store) starting at `from` (the checkpoint
    /// LSN): segments below `from.segment` are skipped entirely, which is
    /// what makes checkpointed recovery read only the tail.
    pub fn read_store_from(
        store: &dyn SegmentStore,
        from: Lsn,
    ) -> (Vec<(Lsn, LogRecord)>, Option<StorageError>) {
        let mut out = Vec::new();
        let ids = match store.list() {
            Ok(ids) => ids,
            Err(e) => return (out, Some(e)),
        };
        for w in ids.windows(2) {
            if w[1] != w[0] + 1 {
                let e = StorageError::Corrupt(format!("wal segment gap: {} then {}", w[0], w[1]));
                return (out, Some(e));
            }
        }
        let last = match ids.last() {
            Some(&last) => last,
            None => return (out, None),
        };
        for &id in &ids {
            if id < from.segment {
                continue;
            }
            let disk = match store.open(id) {
                Ok(d) => d,
                Err(e) => return (out, Some(e)),
            };
            let scan = scan_segment(disk.as_ref(), id == last);
            for (offset, rec) in scan.records {
                let lsn = Lsn { segment: id, offset };
                if lsn >= from {
                    out.push((lsn, rec));
                }
            }
            if scan.error.is_some() {
                return (out, scan.error);
            }
        }
        (out, None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wal() -> Wal {
        Wal::in_memory()
    }

    fn mem_store() -> Arc<MemSegmentStore> {
        Arc::new(MemSegmentStore::new())
    }

    fn insert(xid: u64, bytes: Vec<u8>) -> LogRecord {
        LogRecord::Insert { xid, table: 1, rid: Rid::new(PageId(0), 0), bytes }
    }

    fn sample_records() -> Vec<LogRecord> {
        vec![
            LogRecord::Begin { xid: 1 },
            LogRecord::Insert {
                xid: 1,
                table: 3,
                rid: Rid::new(PageId(9), 4),
                bytes: vec![1, 2, 3, 4, 5],
            },
            LogRecord::Delete {
                xid: 1,
                table: 3,
                rid: Rid::new(PageId(9), 4),
                before: vec![1, 2, 3, 4, 5],
            },
            LogRecord::Commit { xid: 1 },
            LogRecord::Abort { xid: 2 },
        ]
    }

    fn records_of(back: &[(Lsn, LogRecord)]) -> Vec<LogRecord> {
        back.iter().map(|(_, r)| r.clone()).collect()
    }

    #[test]
    fn append_read_roundtrip_with_real_lsns() {
        let w = wal();
        let mut lsns = Vec::new();
        for r in sample_records() {
            lsns.push(w.append(&r).unwrap());
        }
        let back = w.read_all().unwrap();
        assert_eq!(records_of(&back), sample_records());
        let read_lsns: Vec<Lsn> = back.iter().map(|(l, _)| *l).collect();
        assert_eq!(read_lsns, lsns, "read-back LSNs must be the append addresses");
        assert!(lsns.windows(2).all(|w| w[0] < w[1]), "LSNs are strictly increasing");
        assert_eq!(lsns[0], Lsn { segment: 0, offset: PAGE_HEADER as u64 });
    }

    #[test]
    fn commit_forces_flush_and_sync() {
        let store = mem_store();
        let w = Wal::open(store.clone() as Arc<dyn SegmentStore>).unwrap();
        w.append(&LogRecord::Begin { xid: 1 }).unwrap();
        assert_eq!(store.io_stats().writes, 0, "begin alone is buffered");
        assert!(w.flushed_lsn() < w.next_lsn());
        w.append(&LogRecord::Commit { xid: 1 }).unwrap();
        let s = store.io_stats();
        assert!(s.writes >= 1, "commit must hit the disk");
        assert!(s.syncs >= 1, "commit must issue a durability barrier");
        assert_eq!(w.flushed_lsn(), w.next_lsn());
    }

    #[test]
    fn spans_multiple_pages() {
        let w = wal();
        let rec = insert(7, vec![0xAB; 1000]);
        let n = 40; // ~40 KB of records >> one page
        for _ in 0..n {
            w.append(&rec).unwrap();
        }
        let back = w.read_all().unwrap();
        assert_eq!(back.len(), n);
        assert!(back.iter().all(|(_, r)| *r == rec));
    }

    #[test]
    fn record_larger_than_a_page_roundtrips() {
        let w = wal();
        let big = insert(1, vec![0x5A; 3 * PAGE_SIZE]);
        w.append(&big).unwrap();
        w.append(&LogRecord::Commit { xid: 1 }).unwrap();
        let back = w.read_all().unwrap();
        assert_eq!(records_of(&back), vec![big, LogRecord::Commit { xid: 1 }]);
    }

    #[test]
    fn rotation_spreads_the_log_over_segments() {
        let store = mem_store();
        let w = Wal::open_with_segment_pages(store.clone(), 1).unwrap();
        let rec = |xid| insert(xid, vec![7; 3000]);
        let mut lsns = Vec::new();
        for xid in 0..10 {
            lsns.push(w.append(&rec(xid)).unwrap());
        }
        w.flush().unwrap();
        assert!(w.segments().unwrap().len() > 1, "1-page cap must force rotation");
        let back = w.read_all().unwrap();
        assert_eq!(back.len(), 10);
        for (i, (lsn, r)) in back.iter().enumerate() {
            assert_eq!(*r, rec(i as u64));
            assert_eq!(*lsn, lsns[i]);
        }
        assert!(lsns.windows(2).all(|w| w[0] < w[1]), "order holds across segments");
    }

    #[test]
    fn truncate_below_deletes_sealed_segments() {
        let store = mem_store();
        let w = Wal::open_with_segment_pages(store.clone(), 1).unwrap();
        for xid in 0..4 {
            w.append(&insert(1, vec![xid as u8; 3000])).unwrap();
        }
        w.append(&LogRecord::Commit { xid: 1 }).unwrap();
        let cp = w.rotate().unwrap();
        assert_eq!(cp.offset, 0);
        assert!(cp.segment > 0);
        w.append(&insert(2, vec![9; 100])).unwrap();
        w.append(&LogRecord::Commit { xid: 2 }).unwrap();

        let deleted = w.truncate_below(cp).unwrap();
        assert!(deleted >= 1, "history below the checkpoint must go");
        let ids = w.segments().unwrap();
        assert!(ids.iter().all(|&id| id >= cp.segment), "only tail segments remain: {ids:?}");

        let tail = w.read_from(cp).unwrap();
        assert!(tail.iter().all(|(lsn, _)| *lsn >= cp));
        assert!(tail.iter().any(|(_, r)| matches!(r, LogRecord::Commit { xid: 2 })));
        assert_eq!(w.read_all().unwrap(), tail, "after truncation the tail IS the log");
    }

    #[test]
    fn reopen_resumes_at_the_tail() {
        let store = mem_store();
        {
            let w = Wal::open(store.clone()).unwrap();
            w.append(&LogRecord::Begin { xid: 1 }).unwrap();
            w.append(&LogRecord::Commit { xid: 1 }).unwrap();
        }
        let w2 = Wal::open(store.clone()).unwrap();
        w2.append(&LogRecord::Begin { xid: 2 }).unwrap();
        w2.append(&LogRecord::Commit { xid: 2 }).unwrap();
        let back = w2.read_all().unwrap();
        let xids: Vec<u64> = back.iter().map(|(_, r)| r.xid()).collect();
        assert_eq!(xids, vec![1, 1, 2, 2]);
        let lsns: Vec<Lsn> = back.iter().map(|(l, _)| *l).collect();
        assert!(lsns.windows(2).all(|w| w[0] < w[1]), "no LSN reuse across reopen");
    }

    #[test]
    fn unflushed_tail_is_lost_but_prefix_survives_reopen() {
        let store = mem_store();
        {
            let w = Wal::open(store.clone()).unwrap();
            w.append(&LogRecord::Begin { xid: 1 }).unwrap();
            w.append(&LogRecord::Commit { xid: 1 }).unwrap();
            w.append(&LogRecord::Begin { xid: 2 }).unwrap();
            // Crash: Begin{2} was buffered, never flushed.
        }
        let w2 = Wal::open(store.clone()).unwrap();
        let xids: Vec<u64> = w2.read_all().unwrap().iter().map(|(_, r)| r.xid()).collect();
        assert_eq!(xids, vec![1, 1], "unflushed suffix is gone, durable prefix intact");
    }

    #[test]
    fn torn_tail_page_is_end_of_log_not_corruption() {
        let store = mem_store();
        let w = Wal::open(store.clone()).unwrap();
        // Page 0: xid-1 records; the second insert spills onto page 1.
        w.append(&insert(1, vec![1; 6000])).unwrap();
        w.append(&LogRecord::Commit { xid: 1 }).unwrap();
        w.append(&insert(2, vec![2; 6000])).unwrap();
        w.append(&LogRecord::Commit { xid: 2 }).unwrap();
        drop(w);
        // Tear the tail page in place (a crashed rewrite).
        let disk = store.disk(0).unwrap();
        assert!(disk.num_pages() >= 2);
        disk.write_page(PageId(1), &[0xFF; PAGE_SIZE]).unwrap();

        let (recs, err) = Wal::read_store(store.as_ref() as &dyn SegmentStore);
        assert!(err.is_none(), "a torn tail is not corruption: {err:?}");
        let xids: Vec<u64> = recs.iter().map(|(_, r)| r.xid()).collect();
        assert_eq!(xids, vec![1, 1], "xid-2 died with the torn page; xid-1 prefix intact");

        // Reopen repairs the tail; new appends land after the prefix.
        let w2 = Wal::open(store.clone()).unwrap();
        w2.append(&LogRecord::Begin { xid: 3 }).unwrap();
        w2.append(&LogRecord::Commit { xid: 3 }).unwrap();
        let xids: Vec<u64> = w2.read_all().unwrap().iter().map(|(_, r)| r.xid()).collect();
        assert_eq!(xids, vec![1, 1, 3, 3]);
    }

    #[test]
    fn corruption_in_front_of_valid_pages_is_reported() {
        let store = mem_store();
        let w = Wal::open(store.clone()).unwrap();
        for xid in 1..=4u64 {
            w.append(&insert(xid, vec![xid as u8; 6000])).unwrap();
            w.append(&LogRecord::Commit { xid }).unwrap();
        }
        w.flush().unwrap();
        let disk = store.disk(0).unwrap();
        assert!(disk.num_pages() >= 3);
        disk.write_page(PageId(0), &[0xFF; PAGE_SIZE]).unwrap();

        // Tolerant read: nothing before the bad page, and the damage named.
        let (recs, err) = Wal::read_store(store.as_ref() as &dyn SegmentStore);
        assert!(recs.is_empty());
        assert!(matches!(err, Some(StorageError::Corrupt(_))), "got {err:?}");

        // Strict read through a fresh handle: an error, never a panic.
        // (Read the store directly: open() would repair the tail first.)
        let (_, strict_err) = Wal::read_store_from(store.as_ref() as &dyn SegmentStore, Lsn::ZERO);
        assert!(matches!(strict_err, Some(StorageError::Corrupt(_))));
    }

    #[test]
    fn corrupt_sealed_segment_is_reported_with_prefix() {
        let store = mem_store();
        let w = Wal::open_with_segment_pages(store.clone(), 1).unwrap();
        for xid in 1..=6u64 {
            w.append(&insert(xid, vec![xid as u8; 3000])).unwrap();
            w.append(&LogRecord::Commit { xid }).unwrap();
        }
        w.flush().unwrap();
        let ids = w.segments().unwrap();
        assert!(ids.len() >= 3, "need sealed segments: {ids:?}");
        let mid = ids[ids.len() / 2];
        let disk = store.disk(mid).unwrap();
        disk.write_page(PageId(0), &[0xEE; PAGE_SIZE]).unwrap();

        let (recs, err) = Wal::read_store(store.as_ref() as &dyn SegmentStore);
        assert!(matches!(err, Some(StorageError::Corrupt(_))), "got {err:?}");
        assert!(!recs.is_empty(), "records before the bad segment survive");
        assert!(recs.iter().all(|(l, _)| l.segment < mid));
        assert!(w.read_all().is_err(), "strict reader surfaces the corruption");
    }

    #[test]
    fn fuzzed_page_header_never_panics() {
        // A `used` past PAGE_SIZE hidden behind a *valid* checksum: the old
        // reader panicked slicing; this must be a reported corruption.
        let store = mem_store();
        let w = Wal::open(store.clone()).unwrap();
        w.append(&LogRecord::Commit { xid: 1 }).unwrap();
        drop(w);
        let disk = store.disk(0).unwrap();
        let mut buf = [0u8; PAGE_SIZE];
        disk.read_page(PageId(0), &mut buf).unwrap();
        buf[4..6].copy_from_slice(&0xFFFFu16.to_le_bytes());
        let crc = crc32(&buf[4..]);
        buf[0..4].copy_from_slice(&crc.to_le_bytes());
        disk.write_page(PageId(0), &buf).unwrap();
        let (recs, err) = Wal::read_store(store.as_ref() as &dyn SegmentStore);
        assert!(recs.is_empty());
        assert!(matches!(err, Some(StorageError::Corrupt(_))), "got {err:?}");

        // An oversized fragment length behind a valid checksum, likewise.
        let store2 = mem_store();
        let disk2 = store2.open(0).unwrap();
        disk2.allocate().unwrap();
        let mut page = [0u8; PAGE_SIZE];
        page[4..6].copy_from_slice(&16u16.to_le_bytes());
        page[8..12].copy_from_slice(&0x7FFF_FFF0u32.to_le_bytes());
        let crc = crc32(&page[4..]);
        page[0..4].copy_from_slice(&crc.to_le_bytes());
        disk2.write_page(PageId(0), &page).unwrap();
        let (recs, err) = Wal::read_store(store2.as_ref() as &dyn SegmentStore);
        assert!(recs.is_empty());
        assert!(matches!(err, Some(StorageError::Corrupt(_))), "got {err:?}");
    }

    #[test]
    fn random_byte_corruption_never_panics_and_keeps_a_prefix() {
        let baseline = {
            let w = wal();
            for xid in 1..=8u64 {
                w.append(&insert(xid, vec![xid as u8; 2500])).unwrap();
                w.append(&LogRecord::Commit { xid }).unwrap();
            }
            records_of(&w.read_all().unwrap())
        };
        let mut rng = 0x9E37_79B9_7F4A_7C15u64;
        for _ in 0..64 {
            let store = mem_store();
            let w = Wal::open(store.clone()).unwrap();
            for xid in 1..=8u64 {
                w.append(&insert(xid, vec![xid as u8; 2500])).unwrap();
                w.append(&LogRecord::Commit { xid }).unwrap();
            }
            drop(w);
            let disk = store.disk(0).unwrap();
            let total = disk.num_pages() as usize * PAGE_SIZE;
            rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let pos = (rng >> 16) as usize % total;
            let mut buf = [0u8; PAGE_SIZE];
            disk.read_page(PageId((pos / PAGE_SIZE) as u64), &mut buf).unwrap();
            buf[pos % PAGE_SIZE] ^= 1 << ((rng >> 8) % 8);
            disk.write_page(PageId((pos / PAGE_SIZE) as u64), &buf).unwrap();

            // Must not panic, and whatever comes back is a prefix of the
            // uncorrupted record sequence.
            let (recs, _err) = Wal::read_store(store.as_ref() as &dyn SegmentStore);
            let got = records_of(&recs);
            assert!(got.len() <= baseline.len());
            assert_eq!(got[..], baseline[..got.len()], "flip at byte {pos} broke prefix order");
        }
    }

    #[test]
    fn dangling_fragment_chain_at_tail_is_dropped() {
        let store = mem_store();
        {
            let w = Wal::open(store.clone()).unwrap();
            w.append(&LogRecord::Commit { xid: 1 }).unwrap();
            // Spans onto a second page; the final fragment is buffered and
            // lost in the "crash" (drop without flush).
            w.append(&insert(2, vec![2; 12000])).unwrap();
        }
        let (recs, err) = Wal::read_store(store.as_ref() as &dyn SegmentStore);
        assert!(err.is_none(), "a dangling tail chain is a crash artifact: {err:?}");
        assert_eq!(records_of(&recs), vec![LogRecord::Commit { xid: 1 }]);

        // Reopen repairs past the prefix; the half-written chain can never
        // resurface, even after new appends bridge onto those pages.
        let w2 = Wal::open(store.clone()).unwrap();
        for xid in 3..=5u64 {
            w2.append(&insert(xid, vec![xid as u8; 6000])).unwrap();
            w2.append(&LogRecord::Commit { xid }).unwrap();
        }
        let xids: Vec<u64> = w2.read_all().unwrap().iter().map(|(_, r)| r.xid()).collect();
        assert_eq!(xids, vec![1, 3, 3, 4, 4, 5, 5]);
    }

    #[test]
    fn committed_xids_tracks_only_commit_records() {
        let w = wal();
        for r in sample_records() {
            w.append(&r).unwrap();
        }
        w.append(&LogRecord::Begin { xid: 3 }).unwrap();
        w.flush().unwrap();
        let committed = w.committed_xids().unwrap();
        assert!(committed.contains(&1));
        assert!(!committed.contains(&2), "aborted xid must not count as committed");
        assert!(!committed.contains(&3), "in-flight xid must not count as committed");
    }

    #[test]
    fn decode_rejects_truncation() {
        assert!(LogRecord::decode(&[]).is_err());
        assert!(LogRecord::decode(&[2, 1]).is_err());
        assert!(LogRecord::decode(&[9, 0, 0, 0, 0, 0, 0, 0, 0]).is_err());
    }

    #[test]
    fn record_bytes_round_trip() {
        for r in sample_records() {
            let bytes = r.to_bytes();
            assert_eq!(LogRecord::from_bytes(&bytes).unwrap(), r);
            // Trailing garbage is corruption, not silently ignored.
            let mut long = bytes.clone();
            long.push(0);
            assert!(LogRecord::from_bytes(&long).is_err());
        }
    }

    #[test]
    fn crc32_matches_known_vector() {
        // The standard IEEE check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }
}
