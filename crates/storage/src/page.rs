//! Pages and the slotted-page record layout.
//!
//! Layout of a slotted page (all little-endian):
//!
//! ```text
//! 0..2    num_slots: u16
//! 2..4    free_end: u16      -- records grow down from PAGE_SIZE to here
//! 4..     slot array: num_slots × (offset: u16, len: u16)
//! ...     free space
//! free_end..PAGE_SIZE  record payloads
//! ```
//!
//! A slot with `len == 0` is a tombstone (deleted record); slots are never
//! reused so rids stay stable, and reclaiming space is left to a rebuild
//! (the engine's workloads are read-mostly, like the paper's).

use crate::error::{StorageError, StorageResult};

/// Page size in bytes (SHORE used 8 KiB pages too).
pub const PAGE_SIZE: usize = 8192;

const HEADER: usize = 4;
const SLOT: usize = 4;

/// Identifier of a page on a disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PageId(pub u64);

impl std::fmt::Display for PageId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// A slotted-page view over a raw page buffer.
///
/// All methods operate on a `&mut [u8]`/`&[u8]` of exactly [`PAGE_SIZE`]
/// bytes, so the same code works on buffer-pool frames and scratch buffers.
pub struct SlottedPage;

impl SlottedPage {
    /// Format a zeroed buffer as an empty slotted page.
    pub fn init(data: &mut [u8]) {
        assert_eq!(data.len(), PAGE_SIZE);
        write_u16(data, 0, 0);
        write_u16(data, 2, PAGE_SIZE as u16);
    }

    /// Number of slots (live + tombstoned).
    pub fn num_slots(data: &[u8]) -> u16 {
        read_u16(data, 0)
    }

    /// Bytes available for one more record (including its slot).
    pub fn free_space(data: &[u8]) -> usize {
        let slots = Self::num_slots(data) as usize;
        let slot_end = HEADER + slots * SLOT;
        let free_end = read_u16(data, 2) as usize;
        free_end.saturating_sub(slot_end).saturating_sub(SLOT)
    }

    /// Insert a record; returns its slot id, or `None` if it does not fit.
    pub fn insert(data: &mut [u8], record: &[u8]) -> Option<u16> {
        if record.len() > u16::MAX as usize || record.len() > Self::free_space(data) {
            return None;
        }
        let slots = Self::num_slots(data);
        let free_end = read_u16(data, 2) as usize;
        let new_end = free_end - record.len();
        data[new_end..free_end].copy_from_slice(record);
        let slot_off = HEADER + slots as usize * SLOT;
        write_u16(data, slot_off, new_end as u16);
        write_u16(data, slot_off + 2, record.len() as u16);
        write_u16(data, 0, slots + 1);
        write_u16(data, 2, new_end as u16);
        Some(slots)
    }

    /// Read a record by slot; `InvalidSlot` for out-of-range or deleted.
    pub fn get(data: &[u8], page: PageId, slot: u16) -> StorageResult<&[u8]> {
        let slots = Self::num_slots(data);
        if slot >= slots {
            return Err(StorageError::InvalidSlot { page: page.0, slot });
        }
        let slot_off = HEADER + slot as usize * SLOT;
        let off = read_u16(data, slot_off) as usize;
        let len = read_u16(data, slot_off + 2) as usize;
        if len == 0 {
            return Err(StorageError::InvalidSlot { page: page.0, slot });
        }
        if off + len > PAGE_SIZE {
            return Err(StorageError::Corrupt(format!("slot {slot} out of bounds")));
        }
        Ok(&data[off..off + len])
    }

    /// Tombstone a record. Idempotent; errors on out-of-range slots.
    pub fn delete(data: &mut [u8], page: PageId, slot: u16) -> StorageResult<()> {
        let slots = Self::num_slots(data);
        if slot >= slots {
            return Err(StorageError::InvalidSlot { page: page.0, slot });
        }
        let slot_off = HEADER + slot as usize * SLOT;
        write_u16(data, slot_off + 2, 0);
        Ok(())
    }

    /// Iterate live records as `(slot, bytes)`.
    pub fn iter(data: &[u8]) -> impl Iterator<Item = (u16, &[u8])> {
        let slots = Self::num_slots(data);
        (0..slots).filter_map(move |s| {
            let slot_off = HEADER + s as usize * SLOT;
            let off = read_u16(data, slot_off) as usize;
            let len = read_u16(data, slot_off + 2) as usize;
            if len == 0 || off + len > PAGE_SIZE {
                None
            } else {
                Some((s, &data[off..off + len]))
            }
        })
    }

    /// Number of live (non-tombstoned) records.
    pub fn live_count(data: &[u8]) -> usize {
        Self::iter(data).count()
    }
}

pub(crate) fn read_u16(data: &[u8], off: usize) -> u16 {
    u16::from_le_bytes([data[off], data[off + 1]])
}

pub(crate) fn write_u16(data: &mut [u8], off: usize, v: u16) {
    data[off..off + 2].copy_from_slice(&v.to_le_bytes());
}

pub(crate) fn read_u64(data: &[u8], off: usize) -> u64 {
    let mut b = [0u8; 8];
    b.copy_from_slice(&data[off..off + 8]);
    u64::from_le_bytes(b)
}

pub(crate) fn write_u64(data: &mut [u8], off: usize, v: u64) {
    data[off..off + 8].copy_from_slice(&v.to_le_bytes());
}

pub(crate) fn read_i64(data: &[u8], off: usize) -> i64 {
    read_u64(data, off) as i64
}

pub(crate) fn write_i64(data: &mut [u8], off: usize, v: i64) {
    write_u64(data, off, v as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page() -> Vec<u8> {
        let mut d = vec![0u8; PAGE_SIZE];
        SlottedPage::init(&mut d);
        d
    }

    #[test]
    fn insert_then_get() {
        let mut d = page();
        let s0 = SlottedPage::insert(&mut d, b"hello").unwrap();
        let s1 = SlottedPage::insert(&mut d, b"world!").unwrap();
        assert_eq!(s0, 0);
        assert_eq!(s1, 1);
        assert_eq!(SlottedPage::get(&d, PageId(0), 0).unwrap(), b"hello");
        assert_eq!(SlottedPage::get(&d, PageId(0), 1).unwrap(), b"world!");
    }

    #[test]
    fn fills_up_and_rejects() {
        let mut d = page();
        let rec = vec![7u8; 1000];
        let mut n = 0;
        while SlottedPage::insert(&mut d, &rec).is_some() {
            n += 1;
        }
        // 8188 usable / 1004 per record = 8 records.
        assert_eq!(n, 8);
        assert!(SlottedPage::free_space(&d) < rec.len());
        // Smaller records still fit.
        assert!(SlottedPage::insert(&mut d, &[1u8; 16]).is_some());
    }

    #[test]
    fn delete_tombstones_and_iter_skips() {
        let mut d = page();
        SlottedPage::insert(&mut d, b"a").unwrap();
        SlottedPage::insert(&mut d, b"b").unwrap();
        SlottedPage::insert(&mut d, b"c").unwrap();
        SlottedPage::delete(&mut d, PageId(0), 1).unwrap();
        let live: Vec<&[u8]> = SlottedPage::iter(&d).map(|(_, b)| b).collect();
        assert_eq!(live, vec![b"a".as_ref(), b"c".as_ref()]);
        assert!(SlottedPage::get(&d, PageId(0), 1).is_err());
        assert_eq!(SlottedPage::live_count(&d), 2);
        // Rids of other records stay stable.
        assert_eq!(SlottedPage::get(&d, PageId(0), 2).unwrap(), b"c");
    }

    #[test]
    fn out_of_range_slot_is_error() {
        let d = page();
        assert!(matches!(
            SlottedPage::get(&d, PageId(3), 0),
            Err(StorageError::InvalidSlot { page: 3, slot: 0 })
        ));
        let mut d2 = page();
        assert!(SlottedPage::delete(&mut d2, PageId(0), 9).is_err());
    }

    #[test]
    fn empty_record_roundtrip() {
        // Zero-length records cannot be stored (len 0 marks tombstones);
        // callers always have ≥2 bytes (tuple arity), so reject via insert
        // returning a slot whose get() fails — guard that we never insert
        // an empty record in practice by checking at this level.
        let mut d = page();
        let slot = SlottedPage::insert(&mut d, b"").unwrap();
        // An empty record is indistinguishable from a tombstone by design.
        assert!(SlottedPage::get(&d, PageId(0), slot).is_err());
    }
}
