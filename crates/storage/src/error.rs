//! Storage-layer errors.

use std::fmt;

/// Result alias for storage operations.
pub type StorageResult<T> = Result<T, StorageError>;

/// Errors raised by the storage manager.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// Underlying I/O failed (message from `std::io::Error`).
    Io(String),
    /// A page id was out of range or not allocated.
    InvalidPage(u64),
    /// A slot id did not exist or was deleted.
    InvalidSlot {
        /// Page the slot was looked up on.
        page: u64,
        /// The offending slot index.
        slot: u16,
    },
    /// The record does not fit in a page.
    RecordTooLarge(usize),
    /// The buffer pool has no evictable frame (everything pinned).
    PoolExhausted,
    /// The simulated disk hit its configured capacity.
    DiskFull,
    /// On-disk bytes failed validation.
    Corrupt(String),
    /// A named object was not found in the catalog.
    NotFound(String),
    /// A named object already exists in the catalog.
    AlreadyExists(String),
    /// Tuple does not match the table schema.
    SchemaMismatch(String),
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Io(m) => write!(f, "i/o error: {m}"),
            StorageError::InvalidPage(p) => write!(f, "invalid page id {p}"),
            StorageError::InvalidSlot { page, slot } => {
                write!(f, "invalid slot {slot} on page {page}")
            }
            StorageError::RecordTooLarge(n) => write!(f, "record of {n} bytes exceeds page"),
            StorageError::PoolExhausted => write!(f, "buffer pool exhausted (all pages pinned)"),
            StorageError::DiskFull => write!(f, "disk full"),
            StorageError::Corrupt(m) => write!(f, "corrupt data: {m}"),
            StorageError::NotFound(n) => write!(f, "not found: {n}"),
            StorageError::AlreadyExists(n) => write!(f, "already exists: {n}"),
            StorageError::SchemaMismatch(m) => write!(f, "schema mismatch: {m}"),
        }
    }
}

impl std::error::Error for StorageError {}

impl From<std::io::Error> for StorageError {
    fn from(e: std::io::Error) -> Self {
        StorageError::Io(e.to_string())
    }
}
