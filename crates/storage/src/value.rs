//! Typed values and their byte encoding.

use crate::error::{StorageError, StorageResult};
use bytes::{Buf, BufMut};
use std::cmp::Ordering;
use std::fmt;

/// Column data types supported by the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize)]
pub enum DataType {
    /// 64-bit signed integer.
    Int,
    /// 64-bit IEEE float.
    Float,
    /// Variable-length UTF-8 string.
    Str,
    /// Boolean.
    Bool,
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataType::Int => write!(f, "INT"),
            DataType::Float => write!(f, "FLOAT"),
            DataType::Str => write!(f, "VARCHAR"),
            DataType::Bool => write!(f, "BOOL"),
        }
    }
}

/// A runtime value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// Integer.
    Int(i64),
    /// Float.
    Float(f64),
    /// String.
    Str(String),
    /// Boolean.
    Bool(bool),
}

impl Value {
    /// The value's type, `None` for NULL.
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Int(_) => Some(DataType::Int),
            Value::Float(_) => Some(DataType::Float),
            Value::Str(_) => Some(DataType::Str),
            Value::Bool(_) => Some(DataType::Bool),
        }
    }

    /// True if the value is NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Integer content, coercing floats; `None` otherwise.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Float(f) => Some(*f as i64),
            _ => None,
        }
    }

    /// Float content, coercing ints; `None` otherwise.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(f) => Some(*f),
            Value::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// String content.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean content.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// SQL comparison: NULL compares as unknown (`None`); numeric types
    /// compare across Int/Float.
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => None,
            (Value::Int(a), Value::Int(b)) => Some(a.cmp(b)),
            (Value::Str(a), Value::Str(b)) => Some(a.cmp(b)),
            (Value::Bool(a), Value::Bool(b)) => Some(a.cmp(b)),
            _ => {
                let a = self.as_float()?;
                let b = other.as_float()?;
                a.partial_cmp(&b)
            }
        }
    }

    /// Total order for sorting: NULLs first, then by value; used by ORDER BY
    /// and the sort-merge join.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        match (self, other) {
            (Value::Null, Value::Null) => Ordering::Equal,
            (Value::Null, _) => Ordering::Less,
            (_, Value::Null) => Ordering::Greater,
            _ => self.sql_cmp(other).unwrap_or_else(|| {
                // Different non-numeric types: order by type tag for stability.
                self.type_rank().cmp(&other.type_rank())
            }),
        }
    }

    fn type_rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) => 2,
            Value::Float(_) => 3,
            Value::Str(_) => 4,
        }
    }

    /// Size of the encoded form in bytes.
    pub fn encoded_len(&self) -> usize {
        1 + match self {
            Value::Null => 0,
            Value::Int(_) | Value::Float(_) => 8,
            Value::Str(s) => 2 + s.len(),
            Value::Bool(_) => 1,
        }
    }

    /// Append the encoded form to `buf`.
    pub fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            Value::Null => buf.put_u8(0),
            Value::Int(i) => {
                buf.put_u8(1);
                buf.put_i64_le(*i);
            }
            Value::Float(x) => {
                buf.put_u8(2);
                buf.put_f64_le(*x);
            }
            Value::Str(s) => {
                buf.put_u8(3);
                debug_assert!(s.len() <= u16::MAX as usize);
                buf.put_u16_le(s.len() as u16);
                buf.put_slice(s.as_bytes());
            }
            Value::Bool(b) => {
                buf.put_u8(4);
                buf.put_u8(*b as u8);
            }
        }
    }

    /// Skip one encoded value at the front of `buf`, advancing past it
    /// without materializing it (no string allocation, no UTF-8 check —
    /// validation happens whenever the value is actually decoded). This is
    /// what makes column-pruned page scans cheap: unread columns cost a
    /// few branches instead of an allocation.
    pub fn skip(buf: &mut &[u8]) -> StorageResult<()> {
        if buf.is_empty() {
            return Err(StorageError::Corrupt("empty buffer skipping value".into()));
        }
        let tag = buf.get_u8();
        let n = match tag {
            0 => 0,
            1 | 2 => 8,
            3 => {
                ensure(buf.len() >= 2)?;
                buf.get_u16_le() as usize
            }
            4 => 1,
            t => return Err(StorageError::Corrupt(format!("unknown value tag {t}"))),
        };
        ensure(buf.len() >= n)?;
        buf.advance(n);
        Ok(())
    }

    /// Decode one value from the front of `buf`, advancing it.
    pub fn decode(buf: &mut &[u8]) -> StorageResult<Value> {
        if buf.is_empty() {
            return Err(StorageError::Corrupt("empty buffer decoding value".into()));
        }
        let tag = buf.get_u8();
        match tag {
            0 => Ok(Value::Null),
            1 => {
                ensure(buf.len() >= 8)?;
                Ok(Value::Int(buf.get_i64_le()))
            }
            2 => {
                ensure(buf.len() >= 8)?;
                Ok(Value::Float(buf.get_f64_le()))
            }
            3 => {
                ensure(buf.len() >= 2)?;
                let n = buf.get_u16_le() as usize;
                ensure(buf.len() >= n)?;
                let s = std::str::from_utf8(&buf[..n])
                    .map_err(|_| StorageError::Corrupt("invalid utf-8 in string".into()))?
                    .to_string();
                buf.advance(n);
                Ok(Value::Str(s))
            }
            4 => {
                ensure(!buf.is_empty())?;
                Ok(Value::Bool(buf.get_u8() != 0))
            }
            t => Err(StorageError::Corrupt(format!("unknown value tag {t}"))),
        }
    }
}

fn ensure(cond: bool) -> StorageResult<()> {
    if cond {
        Ok(())
    } else {
        Err(StorageError::Corrupt("truncated value".into()))
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "'{s}'"),
            Value::Bool(b) => write!(f, "{}", if *b { "TRUE" } else { "FALSE" }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_types() {
        let values = vec![
            Value::Null,
            Value::Int(-42),
            Value::Int(i64::MAX),
            Value::Float(3.25),
            Value::Str("hello world".into()),
            Value::Str(String::new()),
            Value::Bool(true),
            Value::Bool(false),
        ];
        let mut buf = Vec::new();
        for v in &values {
            v.encode(&mut buf);
        }
        let mut slice = buf.as_slice();
        for v in &values {
            assert_eq!(&Value::decode(&mut slice).unwrap(), v);
        }
        assert!(slice.is_empty());
    }

    #[test]
    fn encoded_len_matches_encoding() {
        for v in [
            Value::Null,
            Value::Int(5),
            Value::Float(1.0),
            Value::Str("abc".into()),
            Value::Bool(true),
        ] {
            let mut buf = Vec::new();
            v.encode(&mut buf);
            assert_eq!(buf.len(), v.encoded_len());
        }
    }

    #[test]
    fn sql_cmp_mixed_numeric() {
        assert_eq!(Value::Int(2).sql_cmp(&Value::Float(2.5)), Some(Ordering::Less));
        assert_eq!(Value::Float(2.0).sql_cmp(&Value::Int(2)), Some(Ordering::Equal));
        assert_eq!(Value::Null.sql_cmp(&Value::Int(1)), None);
        assert_eq!(Value::Str("a".into()).sql_cmp(&Value::Str("b".into())), Some(Ordering::Less));
    }

    #[test]
    fn total_cmp_sorts_nulls_first() {
        let mut vals = [Value::Int(3), Value::Null, Value::Int(1)];
        vals.sort_by(|a, b| a.total_cmp(b));
        assert_eq!(vals[0], Value::Null);
        assert_eq!(vals[1], Value::Int(1));
    }

    #[test]
    fn corrupt_decode_is_an_error_not_a_panic() {
        let mut empty: &[u8] = &[];
        assert!(Value::decode(&mut empty).is_err());
        let mut bad_tag: &[u8] = &[99];
        assert!(Value::decode(&mut bad_tag).is_err());
        let mut truncated_int: &[u8] = &[1, 0, 0];
        assert!(Value::decode(&mut truncated_int).is_err());
        let mut truncated_str: &[u8] = &[3, 10, 0, b'a'];
        assert!(Value::decode(&mut truncated_str).is_err());
        let mut bad_utf8: &[u8] = &[3, 2, 0, 0xff, 0xfe];
        assert!(Value::decode(&mut bad_utf8).is_err());
    }
}
