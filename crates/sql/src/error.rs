//! SQL front-end errors.

use std::fmt;

/// Result alias for the SQL layer.
pub type SqlResult<T> = Result<T, SqlError>;

/// A lexing, parsing, binding or rewrite error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SqlError {
    /// What went wrong.
    pub message: String,
    /// Byte offset into the SQL text, when known.
    pub offset: Option<usize>,
}

impl SqlError {
    /// Error at a known offset.
    pub fn at(offset: usize, message: impl Into<String>) -> Self {
        Self { message: message.into(), offset: Some(offset) }
    }

    /// Error without position information (binder/rewriter).
    pub fn new(message: impl Into<String>) -> Self {
        Self { message: message.into(), offset: None }
    }
}

impl fmt::Display for SqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.offset {
            Some(o) => write!(f, "sql error at byte {o}: {}", self.message),
            None => write!(f, "sql error: {}", self.message),
        }
    }
}

impl std::error::Error for SqlError {}
