//! SQL lexer.

use crate::error::{SqlError, SqlResult};

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Keyword (upper-cased) — `SELECT`, `FROM`, …
    Keyword(String),
    /// Identifier (lower-cased).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal (single-quoted, `''` escapes a quote).
    Str(String),
    /// Punctuation / operator.
    Symbol(Sym),
    /// End of input.
    Eof,
}

/// Operator and punctuation tokens.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sym {
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `;`
    Semicolon,
    /// `*`
    Star,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `=`
    Eq,
    /// `<>` or `!=`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    LtEq,
    /// `>`
    Gt,
    /// `>=`
    GtEq,
    /// `.`
    Dot,
}

/// All recognized keywords.
pub const KEYWORDS: &[&str] = &[
    "SELECT", "FROM", "WHERE", "GROUP", "BY", "HAVING", "ORDER", "LIMIT", "ASC", "DESC", "INSERT",
    "INTO", "VALUES", "UPDATE", "SET", "DELETE", "CREATE", "TABLE", "INDEX", "DROP", "ON", "JOIN",
    "INNER", "AS", "AND", "OR", "NOT", "NULL", "IS", "IN", "BETWEEN", "LIKE", "TRUE", "FALSE",
    "INT", "INTEGER", "FLOAT", "VARCHAR", "TEXT", "BOOL", "BOOLEAN", "COUNT", "SUM", "AVG", "MIN",
    "MAX", "DISTINCT", "BEGIN", "COMMIT", "ROLLBACK", "ABORT", "ANALYZE", "EXPLAIN", "PREPARE",
    "EXECUTE", "READ", "ONLY",
];

/// A token plus its byte offset.
#[derive(Debug, Clone, PartialEq)]
pub struct Spanned {
    /// The token.
    pub token: Token,
    /// Byte offset of the token start.
    pub offset: usize,
}

/// Streaming lexer over SQL text.
pub struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
}

impl<'a> Lexer<'a> {
    /// Lex the given SQL text.
    pub fn new(src: &'a str) -> Self {
        Self { src: src.as_bytes(), pos: 0 }
    }

    /// Tokenize everything.
    pub fn tokenize(mut self) -> SqlResult<Vec<Spanned>> {
        let mut out = Vec::new();
        loop {
            let t = self.next_token()?;
            let eof = t.token == Token::Eof;
            out.push(t);
            if eof {
                return Ok(out);
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek();
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    fn skip_ws(&mut self) {
        while let Some(c) = self.peek() {
            if c.is_ascii_whitespace() {
                self.pos += 1;
            } else if c == b'-' && self.src.get(self.pos + 1) == Some(&b'-') {
                // -- line comment
                while let Some(c) = self.peek() {
                    self.pos += 1;
                    if c == b'\n' {
                        break;
                    }
                }
            } else {
                break;
            }
        }
    }

    /// Produce the next token.
    pub fn next_token(&mut self) -> SqlResult<Spanned> {
        self.skip_ws();
        let offset = self.pos;
        let Some(c) = self.bump() else {
            return Ok(Spanned { token: Token::Eof, offset });
        };
        let token = match c {
            b'(' => Token::Symbol(Sym::LParen),
            b')' => Token::Symbol(Sym::RParen),
            b',' => Token::Symbol(Sym::Comma),
            b';' => Token::Symbol(Sym::Semicolon),
            b'*' => Token::Symbol(Sym::Star),
            b'+' => Token::Symbol(Sym::Plus),
            b'-' => Token::Symbol(Sym::Minus),
            b'/' => Token::Symbol(Sym::Slash),
            b'%' => Token::Symbol(Sym::Percent),
            b'.' => Token::Symbol(Sym::Dot),
            b'=' => Token::Symbol(Sym::Eq),
            b'!' => {
                if self.peek() == Some(b'=') {
                    self.pos += 1;
                    Token::Symbol(Sym::NotEq)
                } else {
                    return Err(SqlError::at(offset, "unexpected '!'"));
                }
            }
            b'<' => match self.peek() {
                Some(b'=') => {
                    self.pos += 1;
                    Token::Symbol(Sym::LtEq)
                }
                Some(b'>') => {
                    self.pos += 1;
                    Token::Symbol(Sym::NotEq)
                }
                _ => Token::Symbol(Sym::Lt),
            },
            b'>' => {
                if self.peek() == Some(b'=') {
                    self.pos += 1;
                    Token::Symbol(Sym::GtEq)
                } else {
                    Token::Symbol(Sym::Gt)
                }
            }
            b'\'' => {
                let mut s = String::new();
                loop {
                    match self.bump() {
                        Some(b'\'') => {
                            if self.peek() == Some(b'\'') {
                                self.pos += 1;
                                s.push('\'');
                            } else {
                                break;
                            }
                        }
                        Some(c) => s.push(c as char),
                        None => return Err(SqlError::at(offset, "unterminated string")),
                    }
                }
                Token::Str(s)
            }
            c if c.is_ascii_digit() => {
                let mut end = self.pos;
                let mut is_float = false;
                while let Some(&d) = self.src.get(end) {
                    if d.is_ascii_digit() {
                        end += 1;
                    } else if d == b'.'
                        && !is_float
                        && self.src.get(end + 1).is_some_and(u8::is_ascii_digit)
                    {
                        is_float = true;
                        end += 1;
                    } else {
                        break;
                    }
                }
                let text = std::str::from_utf8(&self.src[offset..end]).unwrap();
                self.pos = end;
                if is_float {
                    Token::Float(
                        text.parse().map_err(|_| SqlError::at(offset, "bad float literal"))?,
                    )
                } else {
                    Token::Int(text.parse().map_err(|_| SqlError::at(offset, "bad int literal"))?)
                }
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let mut end = self.pos;
                while let Some(&d) = self.src.get(end) {
                    if d.is_ascii_alphanumeric() || d == b'_' {
                        end += 1;
                    } else {
                        break;
                    }
                }
                let word = std::str::from_utf8(&self.src[offset..end]).unwrap();
                self.pos = end;
                let upper = word.to_ascii_uppercase();
                if KEYWORDS.contains(&upper.as_str()) {
                    Token::Keyword(upper)
                } else {
                    Token::Ident(word.to_ascii_lowercase())
                }
            }
            c => return Err(SqlError::at(offset, format!("unexpected character {:?}", c as char))),
        };
        Ok(Spanned { token, offset })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(sql: &str) -> Vec<Token> {
        Lexer::new(sql).tokenize().unwrap().into_iter().map(|s| s.token).collect()
    }

    #[test]
    fn lexes_select_statement() {
        let t = kinds("SELECT a, b FROM t WHERE a >= 10;");
        assert_eq!(t[0], Token::Keyword("SELECT".into()));
        assert_eq!(t[1], Token::Ident("a".into()));
        assert_eq!(t[2], Token::Symbol(Sym::Comma));
        assert!(t.contains(&Token::Symbol(Sym::GtEq)));
        assert_eq!(*t.last().unwrap(), Token::Eof);
    }

    #[test]
    fn keywords_are_case_insensitive_idents_lowered() {
        let t = kinds("select FooBar");
        assert_eq!(t[0], Token::Keyword("SELECT".into()));
        assert_eq!(t[1], Token::Ident("foobar".into()));
    }

    #[test]
    fn numbers_and_strings() {
        let t = kinds("42 3.5 'it''s'");
        assert_eq!(t[0], Token::Int(42));
        assert_eq!(t[1], Token::Float(3.5));
        assert_eq!(t[2], Token::Str("it's".into()));
    }

    #[test]
    fn comparison_operators() {
        let t = kinds("< <= > >= = <> !=");
        assert_eq!(
            t[..7],
            [
                Token::Symbol(Sym::Lt),
                Token::Symbol(Sym::LtEq),
                Token::Symbol(Sym::Gt),
                Token::Symbol(Sym::GtEq),
                Token::Symbol(Sym::Eq),
                Token::Symbol(Sym::NotEq),
                Token::Symbol(Sym::NotEq)
            ]
        );
    }

    #[test]
    fn line_comments_are_skipped() {
        let t = kinds("SELECT -- the projection\n 1");
        assert_eq!(t[0], Token::Keyword("SELECT".into()));
        assert_eq!(t[1], Token::Int(1));
    }

    #[test]
    fn errors_carry_offsets() {
        let err = Lexer::new("SELECT @").tokenize().unwrap_err();
        assert_eq!(err.offset, Some(7));
        let err = Lexer::new("'oops").tokenize().unwrap_err();
        assert_eq!(err.offset, Some(0));
    }

    #[test]
    fn dotted_names_lex_as_ident_dot_ident() {
        let t = kinds("t1.a");
        assert_eq!(
            t[..3],
            [Token::Ident("t1".into()), Token::Symbol(Sym::Dot), Token::Ident("a".into())]
        );
    }
}
