//! Query rewriting (the "query rewrite" box of the parse stage, Figure 3).
//!
//! Two transforms matter to the planner:
//! * **constant folding** — literal arithmetic, boolean simplification and
//!   degenerate predicates (`1 = 1`) are evaluated at rewrite time;
//! * **conjunct splitting** — predicates are flattened into a list of
//!   AND-ed conjuncts so the optimizer can push each one independently.

use crate::ast::{BinOp, Expr, UnaryOp};
use staged_storage::Value;

/// Fold constants in-place; returns the (possibly simplified) expression.
pub fn fold(expr: Expr) -> Expr {
    match expr {
        Expr::Binary { left, op, right } => {
            let left = fold(*left);
            let right = fold(*right);
            // Boolean short circuits.
            match (op, &left, &right) {
                (BinOp::And, Expr::Literal(Value::Bool(true)), _) => return right,
                (BinOp::And, _, Expr::Literal(Value::Bool(true))) => return left,
                (BinOp::And, Expr::Literal(Value::Bool(false)), _)
                | (BinOp::And, _, Expr::Literal(Value::Bool(false))) => {
                    return Expr::Literal(Value::Bool(false))
                }
                (BinOp::Or, Expr::Literal(Value::Bool(false)), _) => return right,
                (BinOp::Or, _, Expr::Literal(Value::Bool(false))) => return left,
                (BinOp::Or, Expr::Literal(Value::Bool(true)), _)
                | (BinOp::Or, _, Expr::Literal(Value::Bool(true))) => {
                    return Expr::Literal(Value::Bool(true))
                }
                _ => {}
            }
            if let (Expr::Literal(l), Expr::Literal(r)) = (&left, &right) {
                if let Some(v) = eval_const_binary(l, op, r) {
                    return Expr::Literal(v);
                }
            }
            Expr::Binary { left: Box::new(left), op, right: Box::new(right) }
        }
        Expr::Unary { op, expr } => {
            let inner = fold(*expr);
            match (op, &inner) {
                (UnaryOp::Neg, Expr::Literal(Value::Int(i))) => Expr::Literal(Value::Int(-i)),
                (UnaryOp::Neg, Expr::Literal(Value::Float(f))) => Expr::Literal(Value::Float(-f)),
                (UnaryOp::Not, Expr::Literal(Value::Bool(b))) => Expr::Literal(Value::Bool(!b)),
                _ => Expr::Unary { op, expr: Box::new(inner) },
            }
        }
        Expr::Between { expr, lo, hi, negated } => Expr::Between {
            expr: Box::new(fold(*expr)),
            lo: Box::new(fold(*lo)),
            hi: Box::new(fold(*hi)),
            negated,
        },
        Expr::InList { expr, list, negated } => Expr::InList {
            expr: Box::new(fold(*expr)),
            list: list.into_iter().map(fold).collect(),
            negated,
        },
        Expr::IsNull { expr, negated } => {
            let inner = fold(*expr);
            if let Expr::Literal(v) = &inner {
                return Expr::Literal(Value::Bool(v.is_null() != negated));
            }
            Expr::IsNull { expr: Box::new(inner), negated }
        }
        Expr::Agg { func, arg, distinct } => {
            Expr::Agg { func, arg: arg.map(|a| Box::new(fold(*a))), distinct }
        }
        e @ (Expr::Literal(_) | Expr::Column(_) | Expr::Like { .. }) => e,
    }
}

fn eval_const_binary(l: &Value, op: BinOp, r: &Value) -> Option<Value> {
    use BinOp::*;
    if l.is_null() || r.is_null() {
        // NULL propagates through arithmetic; comparisons yield NULL too
        // (treated as false by filters).
        return Some(Value::Null);
    }
    if op.is_comparison() {
        let ord = l.sql_cmp(r)?;
        let b = match op {
            Eq => ord.is_eq(),
            NotEq => !ord.is_eq(),
            Lt => ord.is_lt(),
            LtEq => ord.is_le(),
            Gt => ord.is_gt(),
            GtEq => ord.is_ge(),
            _ => unreachable!("comparison checked"),
        };
        return Some(Value::Bool(b));
    }
    match op {
        And | Or => {
            let (a, b) = (l.as_bool()?, r.as_bool()?);
            Some(Value::Bool(if op == And { a && b } else { a || b }))
        }
        Add | Sub | Mul | Div | Mod => match (l, r) {
            (Value::Int(a), Value::Int(b)) => {
                let v = match op {
                    Add => a.checked_add(*b)?,
                    Sub => a.checked_sub(*b)?,
                    Mul => a.checked_mul(*b)?,
                    Div => a.checked_div(*b)?,
                    Mod => a.checked_rem(*b)?,
                    _ => unreachable!(),
                };
                Some(Value::Int(v))
            }
            _ => {
                let (a, b) = (l.as_float()?, r.as_float()?);
                let v = match op {
                    Add => a + b,
                    Sub => a - b,
                    Mul => a * b,
                    Div => {
                        if b == 0.0 {
                            return None;
                        }
                        a / b
                    }
                    Mod => {
                        if b == 0.0 {
                            return None;
                        }
                        a % b
                    }
                    _ => unreachable!(),
                };
                Some(Value::Float(v))
            }
        },
        _ => None,
    }
}

/// Split a predicate into its AND-ed conjuncts (after folding).
pub fn split_conjuncts(expr: Expr) -> Vec<Expr> {
    let mut out = Vec::new();
    collect_conjuncts(fold(expr), &mut out);
    out
}

fn collect_conjuncts(expr: Expr, out: &mut Vec<Expr>) {
    match expr {
        Expr::Binary { left, op: BinOp::And, right } => {
            collect_conjuncts(*left, out);
            collect_conjuncts(*right, out);
        }
        // TRUE conjuncts are vacuous.
        Expr::Literal(Value::Bool(true)) => {}
        e => out.push(e),
    }
}

/// Re-join conjuncts into one predicate (`None` for an empty list).
pub fn join_conjuncts(mut conjuncts: Vec<Expr>) -> Option<Expr> {
    let first = if conjuncts.is_empty() { None } else { Some(conjuncts.remove(0)) };
    conjuncts.into_iter().fold(first, |acc, c| {
        Some(match acc {
            Some(a) => Expr::binary(a, BinOp::And, c),
            None => c,
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{SelectItem, Statement};
    use crate::parser::parse_statement;

    fn expr(sql: &str) -> Expr {
        let Statement::Select(sel) = parse_statement(&format!("SELECT {sql}")).unwrap() else {
            panic!()
        };
        let SelectItem::Expr { expr, .. } = sel.items.into_iter().next().unwrap() else { panic!() };
        expr
    }

    #[test]
    fn folds_arithmetic() {
        assert_eq!(fold(expr("1 + 2 * 3")), Expr::Literal(Value::Int(7)));
        assert_eq!(fold(expr("10 / 4")), Expr::Literal(Value::Int(2)));
        assert_eq!(fold(expr("10.0 / 4")), Expr::Literal(Value::Float(2.5)));
        assert_eq!(fold(expr("-(3)")), Expr::Literal(Value::Int(-3)));
    }

    #[test]
    fn division_by_zero_is_left_unfolded() {
        // The executor reports the runtime error; folding must not panic.
        let e = fold(expr("1 / 0"));
        assert!(matches!(e, Expr::Binary { .. }));
    }

    #[test]
    fn folds_comparisons_and_boolean_logic() {
        assert_eq!(fold(expr("1 = 1")), Expr::Literal(Value::Bool(true)));
        assert_eq!(fold(expr("2 < 1")), Expr::Literal(Value::Bool(false)));
        assert_eq!(fold(expr("NOT FALSE")), Expr::Literal(Value::Bool(true)));
        assert_eq!(fold(expr("a = 1 AND TRUE")).to_string(), "(a = 1)");
        assert_eq!(fold(expr("a = 1 AND FALSE")), Expr::Literal(Value::Bool(false)));
        assert_eq!(fold(expr("a = 1 OR TRUE")), Expr::Literal(Value::Bool(true)));
    }

    #[test]
    fn folds_null_semantics() {
        assert_eq!(fold(expr("NULL + 1")), Expr::Literal(Value::Null));
        assert_eq!(fold(expr("NULL IS NULL")), Expr::Literal(Value::Bool(true)));
        assert_eq!(fold(expr("1 IS NULL")), Expr::Literal(Value::Bool(false)));
        assert_eq!(fold(expr("1 IS NOT NULL")), Expr::Literal(Value::Bool(true)));
    }

    #[test]
    fn splits_and_rejoins_conjuncts() {
        let e = expr("a = 1 AND b > 2 AND (c < 3 OR d = 4)");
        let cs = split_conjuncts(e.clone());
        assert_eq!(cs.len(), 3);
        let rejoined = join_conjuncts(cs).unwrap();
        // Same leaves survive the round trip.
        let mut names = vec![];
        rejoined.visit_columns(&mut |c| names.push(c.name.clone()));
        assert_eq!(names, vec!["a", "b", "c", "d"]);
        assert_eq!(join_conjuncts(vec![]), None);
    }

    #[test]
    fn vacuous_true_conjuncts_disappear() {
        let cs = split_conjuncts(expr("TRUE AND a = 1 AND 1 = 1"));
        assert_eq!(cs.len(), 1);
    }

    #[test]
    fn overflow_is_not_folded() {
        let e = fold(Expr::binary(
            Expr::Literal(Value::Int(i64::MAX)),
            BinOp::Add,
            Expr::Literal(Value::Int(1)),
        ));
        assert!(matches!(e, Expr::Binary { .. }), "overflow left to runtime");
    }
}
