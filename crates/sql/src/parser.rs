//! Recursive-descent SQL parser.
//!
//! Expressions use precedence climbing (OR < AND < NOT < comparison <
//! additive < multiplicative < unary). `JOIN … ON` conditions are folded
//! into the WHERE conjunction so the planner sees one uniform predicate set.
//!
//! The parser can be *instrumented* ([`ParseInstrument`]): every token
//! touches the parser's code working set, every keyword/identifier touches
//! the shared symbol table, and the query text itself is a private working
//! set — this drives the §3.1.3 parse-affinity experiment with real parsing
//! control flow rather than a synthetic loop.

use crate::ast::*;
use crate::error::{SqlError, SqlResult};
use crate::token::{Lexer, Spanned, Sym, Token};
use staged_cachesim::{CacheProbe, Region};
use staged_storage::{DataType, Value};

/// Cache-instrumentation hooks for the parse stage.
pub struct ParseInstrument<'a> {
    /// The cache being driven.
    pub probe: &'a dyn CacheProbe,
    /// Region standing in for the parser's code footprint (common).
    pub code: Region,
    /// Region standing in for the keyword/symbol table (common data).
    pub symtab: Region,
    /// Region standing in for this query's private text and AST.
    pub private: Region,
}

impl<'a> ParseInstrument<'a> {
    fn token(&self, kind_hash: u64, len: usize) {
        // Token dispatch walks a slice of the parser code...
        self.probe.touch(self.code, (kind_hash % 64) * 256, 256);
        // ...and the raw text is consumed from the private query buffer.
        self.probe.touch(self.private, 0, len as u64);
    }

    fn symbol_lookup(&self, name: &str) {
        let h = fxhash(name);
        self.probe.touch(self.symtab, (h % 128) * 64, 64);
    }

    fn production(&self, rule: u64) {
        self.probe.touch(self.code, 16 * 1024 + (rule % 32) * 512, 512);
    }
}

fn fxhash(s: &str) -> u64 {
    s.bytes().fold(0xcbf29ce484222325u64, |h, b| (h ^ b as u64).wrapping_mul(0x100000001b3))
}

/// Parse one SQL statement (trailing `;` allowed).
pub fn parse_statement(sql: &str) -> SqlResult<Statement> {
    Parser::new(sql, None)?.parse_single()
}

/// Parse a `;`-separated script.
pub fn parse_sql(sql: &str) -> SqlResult<Vec<Statement>> {
    Parser::new(sql, None)?.parse_script()
}

/// The parser.
pub struct Parser<'a> {
    tokens: Vec<Spanned>,
    pos: usize,
    inst: Option<ParseInstrument<'a>>,
}

impl<'a> Parser<'a> {
    /// Tokenize and prepare to parse; `inst` enables cache instrumentation.
    pub fn new(sql: &str, inst: Option<ParseInstrument<'a>>) -> SqlResult<Self> {
        let tokens = Lexer::new(sql).tokenize()?;
        if let Some(i) = &inst {
            for t in &tokens {
                let (hash, len) = match &t.token {
                    Token::Keyword(k) => {
                        i.symbol_lookup(k);
                        (fxhash(k), k.len())
                    }
                    Token::Ident(id) => {
                        i.symbol_lookup(id);
                        (fxhash(id), id.len())
                    }
                    Token::Str(s) => (3, s.len() + 2),
                    Token::Int(_) | Token::Float(_) => (5, 4),
                    Token::Symbol(_) => (7, 1),
                    Token::Eof => (11, 0),
                };
                i.token(hash, len.max(1));
            }
        }
        Ok(Self { tokens, pos: 0, inst })
    }

    fn note(&self, rule: u64) {
        if let Some(i) = &self.inst {
            i.production(rule);
        }
    }

    fn peek(&self) -> &Token {
        &self.tokens[self.pos].token
    }

    fn offset(&self) -> usize {
        self.tokens[self.pos].offset
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos].token.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), Token::Keyword(k) if k == kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> SqlResult<()> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            Err(SqlError::at(self.offset(), format!("expected {kw}, found {:?}", self.peek())))
        }
    }

    fn eat_symbol(&mut self, s: Sym) -> bool {
        if matches!(self.peek(), Token::Symbol(x) if *x == s) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_symbol(&mut self, s: Sym) -> SqlResult<()> {
        if self.eat_symbol(s) {
            Ok(())
        } else {
            Err(SqlError::at(self.offset(), format!("expected {s:?}, found {:?}", self.peek())))
        }
    }

    fn expect_ident(&mut self) -> SqlResult<String> {
        match self.bump() {
            Token::Ident(s) => Ok(s),
            t => Err(SqlError::at(self.offset(), format!("expected identifier, found {t:?}"))),
        }
    }

    /// Parse exactly one statement; error on trailing tokens.
    pub fn parse_single(&mut self) -> SqlResult<Statement> {
        let stmt = self.parse_stmt()?;
        self.eat_symbol(Sym::Semicolon);
        if *self.peek() != Token::Eof {
            return Err(SqlError::at(self.offset(), "unexpected trailing input"));
        }
        Ok(stmt)
    }

    /// Parse a script of statements.
    pub fn parse_script(&mut self) -> SqlResult<Vec<Statement>> {
        let mut out = Vec::new();
        loop {
            while self.eat_symbol(Sym::Semicolon) {}
            if *self.peek() == Token::Eof {
                return Ok(out);
            }
            out.push(self.parse_stmt()?);
        }
    }

    fn parse_stmt(&mut self) -> SqlResult<Statement> {
        self.note(1);
        match self.peek().clone() {
            Token::Keyword(k) => match k.as_str() {
                "SELECT" => Ok(Statement::Select(self.parse_select()?)),
                "CREATE" => self.parse_create(),
                "DROP" => {
                    self.bump();
                    self.expect_keyword("TABLE")?;
                    Ok(Statement::DropTable { name: self.expect_ident()? })
                }
                "INSERT" => self.parse_insert(),
                "UPDATE" => self.parse_update(),
                "DELETE" => self.parse_delete(),
                "BEGIN" => {
                    self.bump();
                    let read_only = if self.eat_keyword("READ") {
                        self.expect_keyword("ONLY")?;
                        true
                    } else {
                        false
                    };
                    Ok(Statement::Begin { read_only })
                }
                "COMMIT" => {
                    self.bump();
                    Ok(Statement::Commit)
                }
                "ROLLBACK" | "ABORT" => {
                    self.bump();
                    Ok(Statement::Rollback)
                }
                "ANALYZE" => {
                    self.bump();
                    Ok(Statement::Analyze { table: self.expect_ident()? })
                }
                "EXPLAIN" => {
                    self.bump();
                    Ok(Statement::Explain(Box::new(self.parse_stmt()?)))
                }
                other => Err(SqlError::at(self.offset(), format!("unexpected keyword {other}"))),
            },
            t => Err(SqlError::at(self.offset(), format!("unexpected token {t:?}"))),
        }
    }

    fn parse_create(&mut self) -> SqlResult<Statement> {
        self.bump(); // CREATE
        if self.eat_keyword("TABLE") {
            let name = self.expect_ident()?;
            self.expect_symbol(Sym::LParen)?;
            let mut columns = Vec::new();
            loop {
                let col = self.expect_ident()?;
                let ty = self.parse_type()?;
                let mut nullable = true;
                if self.eat_keyword("NOT") {
                    self.expect_keyword("NULL")?;
                    nullable = false;
                } else if self.eat_keyword("NULL") {
                    nullable = true;
                }
                columns.push(ColumnDef { name: col, ty, nullable });
                if !self.eat_symbol(Sym::Comma) {
                    break;
                }
            }
            self.expect_symbol(Sym::RParen)?;
            Ok(Statement::CreateTable { name, columns })
        } else if self.eat_keyword("INDEX") {
            let name = self.expect_ident()?;
            self.expect_keyword("ON")?;
            let table = self.expect_ident()?;
            self.expect_symbol(Sym::LParen)?;
            let column = self.expect_ident()?;
            self.expect_symbol(Sym::RParen)?;
            Ok(Statement::CreateIndex { name, table, column })
        } else {
            Err(SqlError::at(self.offset(), "expected TABLE or INDEX after CREATE"))
        }
    }

    fn parse_type(&mut self) -> SqlResult<DataType> {
        match self.bump() {
            Token::Keyword(k) => {
                let ty = match k.as_str() {
                    "INT" | "INTEGER" => DataType::Int,
                    "FLOAT" => DataType::Float,
                    "VARCHAR" | "TEXT" => {
                        // Optional length, ignored: VARCHAR(32).
                        if self.eat_symbol(Sym::LParen) {
                            self.bump();
                            self.expect_symbol(Sym::RParen)?;
                        }
                        DataType::Str
                    }
                    "BOOL" | "BOOLEAN" => DataType::Bool,
                    other => {
                        return Err(SqlError::at(self.offset(), format!("unknown type {other}")))
                    }
                };
                Ok(ty)
            }
            t => Err(SqlError::at(self.offset(), format!("expected type, found {t:?}"))),
        }
    }

    fn parse_insert(&mut self) -> SqlResult<Statement> {
        self.bump(); // INSERT
        self.expect_keyword("INTO")?;
        let table = self.expect_ident()?;
        let columns = if self.eat_symbol(Sym::LParen) {
            let mut cols = vec![self.expect_ident()?];
            while self.eat_symbol(Sym::Comma) {
                cols.push(self.expect_ident()?);
            }
            self.expect_symbol(Sym::RParen)?;
            Some(cols)
        } else {
            None
        };
        self.expect_keyword("VALUES")?;
        let mut rows = Vec::new();
        loop {
            self.expect_symbol(Sym::LParen)?;
            let mut row = vec![self.parse_expr()?];
            while self.eat_symbol(Sym::Comma) {
                row.push(self.parse_expr()?);
            }
            self.expect_symbol(Sym::RParen)?;
            rows.push(row);
            if !self.eat_symbol(Sym::Comma) {
                break;
            }
        }
        Ok(Statement::Insert { table, columns, rows })
    }

    fn parse_update(&mut self) -> SqlResult<Statement> {
        self.bump(); // UPDATE
        let table = self.expect_ident()?;
        self.expect_keyword("SET")?;
        let mut sets = Vec::new();
        loop {
            let col = self.expect_ident()?;
            self.expect_symbol(Sym::Eq)?;
            sets.push((col, self.parse_expr()?));
            if !self.eat_symbol(Sym::Comma) {
                break;
            }
        }
        let filter = if self.eat_keyword("WHERE") { Some(self.parse_expr()?) } else { None };
        Ok(Statement::Update { table, sets, filter })
    }

    fn parse_delete(&mut self) -> SqlResult<Statement> {
        self.bump(); // DELETE
        self.expect_keyword("FROM")?;
        let table = self.expect_ident()?;
        let filter = if self.eat_keyword("WHERE") { Some(self.parse_expr()?) } else { None };
        Ok(Statement::Delete { table, filter })
    }

    fn parse_select(&mut self) -> SqlResult<SelectStmt> {
        self.note(2);
        self.expect_keyword("SELECT")?;
        let distinct = self.eat_keyword("DISTINCT");
        let mut items = vec![self.parse_select_item()?];
        while self.eat_symbol(Sym::Comma) {
            items.push(self.parse_select_item()?);
        }
        let mut from = Vec::new();
        let mut join_filters: Vec<Expr> = Vec::new();
        if self.eat_keyword("FROM") {
            from.push(self.parse_table_ref()?);
            loop {
                if self.eat_symbol(Sym::Comma) {
                    from.push(self.parse_table_ref()?);
                } else if self.eat_keyword("JOIN")
                    || (self.eat_keyword("INNER") && {
                        self.expect_keyword("JOIN")?;
                        true
                    })
                {
                    from.push(self.parse_table_ref()?);
                    self.expect_keyword("ON")?;
                    join_filters.push(self.parse_expr()?);
                } else {
                    break;
                }
            }
        }
        let mut filter = if self.eat_keyword("WHERE") { Some(self.parse_expr()?) } else { None };
        // Fold JOIN ... ON conditions into the WHERE conjunction.
        for jf in join_filters {
            filter = Some(match filter {
                Some(f) => Expr::binary(f, BinOp::And, jf),
                None => jf,
            });
        }
        let mut group_by = Vec::new();
        if self.eat_keyword("GROUP") {
            self.expect_keyword("BY")?;
            group_by.push(self.parse_expr()?);
            while self.eat_symbol(Sym::Comma) {
                group_by.push(self.parse_expr()?);
            }
        }
        let having = if self.eat_keyword("HAVING") { Some(self.parse_expr()?) } else { None };
        let mut order_by = Vec::new();
        if self.eat_keyword("ORDER") {
            self.expect_keyword("BY")?;
            loop {
                let e = self.parse_expr()?;
                let asc = if self.eat_keyword("DESC") {
                    false
                } else {
                    self.eat_keyword("ASC");
                    true
                };
                order_by.push((e, asc));
                if !self.eat_symbol(Sym::Comma) {
                    break;
                }
            }
        }
        let limit = if self.eat_keyword("LIMIT") {
            match self.bump() {
                Token::Int(n) if n >= 0 => Some(n as u64),
                t => return Err(SqlError::at(self.offset(), format!("bad LIMIT {t:?}"))),
            }
        } else {
            None
        };
        Ok(SelectStmt { items, from, filter, group_by, having, order_by, limit, distinct })
    }

    fn parse_select_item(&mut self) -> SqlResult<SelectItem> {
        if self.eat_symbol(Sym::Star) {
            return Ok(SelectItem::Star);
        }
        let expr = self.parse_expr()?;
        let alias = if self.eat_keyword("AS") {
            Some(self.expect_ident()?)
        } else if let Token::Ident(_) = self.peek() {
            // Bare alias: SELECT a b FROM ... — disallowed to keep the
            // grammar unambiguous; identifiers here are an error.
            None
        } else {
            None
        };
        Ok(SelectItem::Expr { expr, alias })
    }

    fn parse_table_ref(&mut self) -> SqlResult<TableRef> {
        let name = self.expect_ident()?;
        let alias = if self.eat_keyword("AS") {
            Some(self.expect_ident()?)
        } else if let Token::Ident(_) = self.peek() {
            Some(self.expect_ident()?)
        } else {
            None
        };
        Ok(TableRef { name, alias })
    }

    /// Entry point for expressions.
    pub fn parse_expr(&mut self) -> SqlResult<Expr> {
        self.parse_or()
    }

    fn parse_or(&mut self) -> SqlResult<Expr> {
        let mut left = self.parse_and()?;
        while self.eat_keyword("OR") {
            let right = self.parse_and()?;
            left = Expr::binary(left, BinOp::Or, right);
        }
        Ok(left)
    }

    fn parse_and(&mut self) -> SqlResult<Expr> {
        let mut left = self.parse_not()?;
        while self.eat_keyword("AND") {
            let right = self.parse_not()?;
            left = Expr::binary(left, BinOp::And, right);
        }
        Ok(left)
    }

    fn parse_not(&mut self) -> SqlResult<Expr> {
        if self.eat_keyword("NOT") {
            let e = self.parse_not()?;
            Ok(Expr::Unary { op: UnaryOp::Not, expr: Box::new(e) })
        } else {
            self.parse_comparison()
        }
    }

    fn parse_comparison(&mut self) -> SqlResult<Expr> {
        self.note(3);
        let left = self.parse_additive()?;
        // IS [NOT] NULL
        if self.eat_keyword("IS") {
            let negated = self.eat_keyword("NOT");
            self.expect_keyword("NULL")?;
            return Ok(Expr::IsNull { expr: Box::new(left), negated });
        }
        let negated = if matches!(self.peek(), Token::Keyword(k) if k == "NOT") {
            // NOT BETWEEN / NOT IN / NOT LIKE
            self.bump();
            true
        } else {
            false
        };
        if self.eat_keyword("BETWEEN") {
            let lo = self.parse_additive()?;
            self.expect_keyword("AND")?;
            let hi = self.parse_additive()?;
            return Ok(Expr::Between {
                expr: Box::new(left),
                lo: Box::new(lo),
                hi: Box::new(hi),
                negated,
            });
        }
        if self.eat_keyword("IN") {
            self.expect_symbol(Sym::LParen)?;
            let mut list = vec![self.parse_expr()?];
            while self.eat_symbol(Sym::Comma) {
                list.push(self.parse_expr()?);
            }
            self.expect_symbol(Sym::RParen)?;
            return Ok(Expr::InList { expr: Box::new(left), list, negated });
        }
        if self.eat_keyword("LIKE") {
            match self.bump() {
                Token::Str(p) => {
                    return Ok(Expr::Like { expr: Box::new(left), pattern: p, negated })
                }
                t => return Err(SqlError::at(self.offset(), format!("bad LIKE pattern {t:?}"))),
            }
        }
        if negated {
            return Err(SqlError::at(self.offset(), "NOT must precede BETWEEN/IN/LIKE here"));
        }
        let op = match self.peek() {
            Token::Symbol(Sym::Eq) => Some(BinOp::Eq),
            Token::Symbol(Sym::NotEq) => Some(BinOp::NotEq),
            Token::Symbol(Sym::Lt) => Some(BinOp::Lt),
            Token::Symbol(Sym::LtEq) => Some(BinOp::LtEq),
            Token::Symbol(Sym::Gt) => Some(BinOp::Gt),
            Token::Symbol(Sym::GtEq) => Some(BinOp::GtEq),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let right = self.parse_additive()?;
            Ok(Expr::binary(left, op, right))
        } else {
            Ok(left)
        }
    }

    fn parse_additive(&mut self) -> SqlResult<Expr> {
        let mut left = self.parse_multiplicative()?;
        loop {
            let op = match self.peek() {
                Token::Symbol(Sym::Plus) => BinOp::Add,
                Token::Symbol(Sym::Minus) => BinOp::Sub,
                _ => break,
            };
            self.bump();
            let right = self.parse_multiplicative()?;
            left = Expr::binary(left, op, right);
        }
        Ok(left)
    }

    fn parse_multiplicative(&mut self) -> SqlResult<Expr> {
        let mut left = self.parse_unary()?;
        loop {
            let op = match self.peek() {
                Token::Symbol(Sym::Star) => BinOp::Mul,
                Token::Symbol(Sym::Slash) => BinOp::Div,
                Token::Symbol(Sym::Percent) => BinOp::Mod,
                _ => break,
            };
            self.bump();
            let right = self.parse_unary()?;
            left = Expr::binary(left, op, right);
        }
        Ok(left)
    }

    fn parse_unary(&mut self) -> SqlResult<Expr> {
        if self.eat_symbol(Sym::Minus) {
            let e = self.parse_unary()?;
            return Ok(Expr::Unary { op: UnaryOp::Neg, expr: Box::new(e) });
        }
        self.parse_primary()
    }

    fn parse_primary(&mut self) -> SqlResult<Expr> {
        self.note(4);
        match self.bump() {
            Token::Int(i) => Ok(Expr::Literal(Value::Int(i))),
            Token::Float(x) => Ok(Expr::Literal(Value::Float(x))),
            Token::Str(s) => Ok(Expr::Literal(Value::Str(s))),
            Token::Keyword(k) => match k.as_str() {
                "TRUE" => Ok(Expr::Literal(Value::Bool(true))),
                "FALSE" => Ok(Expr::Literal(Value::Bool(false))),
                "NULL" => Ok(Expr::Literal(Value::Null)),
                "COUNT" | "SUM" | "AVG" | "MIN" | "MAX" => self.parse_agg(&k),
                other => Err(SqlError::at(
                    self.offset(),
                    format!("unexpected keyword {other} in expression"),
                )),
            },
            Token::Ident(first) => {
                if self.eat_symbol(Sym::Dot) {
                    let col = self.expect_ident()?;
                    Ok(Expr::Column(ColumnRef::new(Some(first), col)))
                } else {
                    Ok(Expr::Column(ColumnRef::new(None, first)))
                }
            }
            Token::Symbol(Sym::LParen) => {
                let e = self.parse_expr()?;
                self.expect_symbol(Sym::RParen)?;
                Ok(e)
            }
            t => Err(SqlError::at(self.offset(), format!("unexpected token {t:?} in expression"))),
        }
    }

    fn parse_agg(&mut self, name: &str) -> SqlResult<Expr> {
        let func = match name {
            "COUNT" => AggFunc::Count,
            "SUM" => AggFunc::Sum,
            "AVG" => AggFunc::Avg,
            "MIN" => AggFunc::Min,
            "MAX" => AggFunc::Max,
            _ => unreachable!("checked by caller"),
        };
        self.expect_symbol(Sym::LParen)?;
        if self.eat_symbol(Sym::Star) {
            if func != AggFunc::Count {
                return Err(SqlError::at(self.offset(), "only COUNT accepts *"));
            }
            self.expect_symbol(Sym::RParen)?;
            return Ok(Expr::Agg { func, arg: None, distinct: false });
        }
        let distinct = self.eat_keyword("DISTINCT");
        let arg = self.parse_expr()?;
        self.expect_symbol(Sym::RParen)?;
        Ok(Expr::Agg { func, arg: Some(Box::new(arg)), distinct })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_select() {
        let s =
            parse_statement("SELECT a, b FROM t WHERE a = 1 ORDER BY b DESC LIMIT 10;").unwrap();
        let Statement::Select(sel) = s else { panic!("not a select") };
        assert_eq!(sel.items.len(), 2);
        assert_eq!(sel.from[0].name, "t");
        assert!(sel.filter.is_some());
        assert_eq!(sel.order_by.len(), 1);
        assert!(!sel.order_by[0].1);
        assert_eq!(sel.limit, Some(10));
    }

    #[test]
    fn join_on_folds_into_where() {
        let s = parse_statement("SELECT * FROM a JOIN b ON a.x = b.y WHERE a.z > 3").unwrap();
        let Statement::Select(sel) = s else { panic!() };
        assert_eq!(sel.from.len(), 2);
        let f = sel.filter.unwrap().to_string();
        assert!(f.contains("a.x = b.y") || f.contains("(a.x = b.y)"), "{f}");
        assert!(f.contains("AND"));
    }

    #[test]
    fn operator_precedence() {
        let Statement::Select(sel) = parse_statement("SELECT 1 + 2 * 3").unwrap() else { panic!() };
        let SelectItem::Expr { expr, .. } = &sel.items[0] else { panic!() };
        assert_eq!(expr.to_string(), "(1 + (2 * 3))");
        let Statement::Select(sel) = parse_statement("SELECT a OR b AND NOT c = 1").unwrap() else {
            panic!()
        };
        let SelectItem::Expr { expr, .. } = &sel.items[0] else { panic!() };
        assert_eq!(expr.to_string(), "(a OR (b AND (NOT (c = 1))))");
    }

    #[test]
    fn aggregates_group_by_having() {
        let s =
            parse_statement("SELECT grp, COUNT(*), AVG(v) FROM t GROUP BY grp HAVING COUNT(*) > 2")
                .unwrap();
        let Statement::Select(sel) = s else { panic!() };
        assert_eq!(sel.group_by.len(), 1);
        assert!(sel.having.unwrap().contains_agg());
    }

    #[test]
    fn between_in_like_isnull() {
        let sql = "SELECT * FROM t WHERE a BETWEEN 1 AND 5 AND b IN (1, 2) \
                   AND c LIKE 'x%' AND d IS NOT NULL AND e NOT IN (3)";
        let Statement::Select(sel) = parse_statement(sql).unwrap() else { panic!() };
        let f = sel.filter.unwrap().to_string();
        assert!(f.contains("BETWEEN"));
        assert!(f.contains("IN"));
        assert!(f.contains("LIKE"));
        assert!(f.contains("IS NOT NULL"));
    }

    #[test]
    fn ddl_and_dml_statements() {
        assert!(matches!(
            parse_statement("CREATE TABLE t (a INT NOT NULL, b VARCHAR(10))").unwrap(),
            Statement::CreateTable { ref columns, .. } if columns.len() == 2 && !columns[0].nullable
        ));
        assert!(matches!(
            parse_statement("CREATE INDEX i ON t (a)").unwrap(),
            Statement::CreateIndex { .. }
        ));
        assert!(matches!(
            parse_statement("INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')").unwrap(),
            Statement::Insert { ref rows, .. } if rows.len() == 2
        ));
        assert!(matches!(
            parse_statement("UPDATE t SET a = a + 1 WHERE b = 2").unwrap(),
            Statement::Update { ref sets, .. } if sets.len() == 1
        ));
        assert!(matches!(
            parse_statement("DELETE FROM t WHERE a < 0").unwrap(),
            Statement::Delete { .. }
        ));
        assert!(matches!(parse_statement("BEGIN").unwrap(), Statement::Begin { read_only: false }));
        assert!(matches!(
            parse_statement("BEGIN READ ONLY").unwrap(),
            Statement::Begin { read_only: true }
        ));
        assert!(parse_statement("BEGIN READ").is_err());
        assert!(matches!(parse_statement("COMMIT").unwrap(), Statement::Commit));
        assert!(matches!(parse_statement("ANALYZE t").unwrap(), Statement::Analyze { .. }));
        assert!(matches!(
            parse_statement("EXPLAIN SELECT * FROM t").unwrap(),
            Statement::Explain(_)
        ));
    }

    #[test]
    fn script_parses_multiple_statements() {
        let stmts = parse_sql("BEGIN; INSERT INTO t VALUES (1); COMMIT;").unwrap();
        assert_eq!(stmts.len(), 3);
    }

    #[test]
    fn trailing_garbage_is_an_error() {
        assert!(parse_statement("SELECT 1 garbage garbage").is_err());
        assert!(parse_statement("SELECT FROM").is_err());
        assert!(parse_statement("").is_err());
    }

    #[test]
    fn print_reparse_fixpoint_on_samples() {
        let samples = [
            "SELECT a, b AS bee FROM t AS x WHERE ((a = 1) AND (b < 3.5)) ORDER BY a ASC LIMIT 5",
            "SELECT DISTINCT grp, SUM(v) FROM t GROUP BY grp HAVING (COUNT(*) > 2)",
            "DELETE FROM t WHERE (name LIKE 'a%')",
            "INSERT INTO t (a) VALUES (1), (2)",
            "UPDATE t SET a = (a + 1)",
        ];
        for sql in samples {
            let s1 = parse_statement(sql).unwrap();
            let printed = s1.to_string();
            let s2 = parse_statement(&printed)
                .unwrap_or_else(|e| panic!("reparse of {printed:?} failed: {e}"));
            assert_eq!(s1, s2, "fixpoint for {sql}");
        }
    }

    #[test]
    fn instrumented_parse_touches_cache() {
        use staged_cachesim::{AddressSpace, CacheConfig, CacheSim, SimProbe};
        let mut space = AddressSpace::new();
        let code = space.alloc(32 * 1024);
        let symtab = space.alloc(8 * 1024);
        let private = space.alloc(1024);
        let probe = SimProbe::new(CacheSim::new(CacheConfig::l1_like()), 1e-9, 1e-7);
        let inst = ParseInstrument { probe: &probe, code, symtab, private };
        let mut p = Parser::new("SELECT a FROM t WHERE a = 1", Some(inst)).unwrap();
        p.parse_single().unwrap();
        let stats = probe.stats();
        assert!(stats.hits + stats.misses > 0, "instrumentation must touch the cache");
        assert!(probe.cost() > 0.0);
    }
}
