//! # staged-sql — the SQL front end
//!
//! The parse stage of the staged DBMS (paper Figure 3: "syntactic/semantic
//! check, graph construct, type check, query rewrite"). A hand-written
//! lexer and recursive-descent parser produce an AST; the binder resolves
//! names against the catalog (the *common* symbol table of Table 1), type-
//! checks expressions and validates aggregate usage; the rewriter folds
//! constants and normalizes predicates into conjunctive form for the
//! optimizer.
//!
//! For the §3.1.3 parse-affinity experiment the lexer and parser can be
//! instrumented with a [`staged_cachesim::CacheProbe`] via
//! [`parser::ParseInstrument`]: every token, keyword lookup and symbol-table
//! probe touches a synthetic working set, so the measured cache behaviour is
//! driven by real parsing control flow.

#![deny(missing_docs)]

pub mod ast;
pub mod binder;
pub mod error;
pub mod parser;
pub mod rewrite;
pub mod token;

pub use ast::{Expr, SelectStmt, Statement};
pub use binder::{BindContext, Binder};
pub use error::{SqlError, SqlResult};
pub use parser::{parse_sql, parse_statement, ParseInstrument, Parser};
pub use token::{Lexer, Token};
