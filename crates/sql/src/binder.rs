//! Name resolution, type checking and aggregate validation.
//!
//! The binder resolves column references against the catalog — in Table 1
//! terms it reads the *common* catalog/symbol-table structures on behalf of
//! every query — fills in column indexes relative to the flattened FROM
//! scope, expands `*`, and computes the output schema.

use crate::ast::*;
use crate::error::{SqlError, SqlResult};
use staged_cachesim::tracker::{RefClass, RefKind, RefTracker};
use staged_storage::catalog::TableInfo;
use staged_storage::{Catalog, Column, DataType, Schema};
use std::sync::Arc;

/// Result of binding a SELECT: resolved tables and the output schema.
pub struct BoundSelect {
    /// The bound (mutated) statement.
    pub stmt: SelectStmt,
    /// Tables in FROM order.
    pub tables: Vec<BoundTable>,
    /// Flattened input schema of the FROM product.
    pub scope: Schema,
    /// Schema of the query result.
    pub output: Schema,
    /// Projection expressions after `*` expansion, aligned with `output`.
    pub projections: Vec<Expr>,
}

/// A resolved FROM entry.
#[derive(Clone)]
pub struct BoundTable {
    /// Binding name (alias or table name).
    pub binding: String,
    /// Catalog entry.
    pub info: Arc<TableInfo>,
    /// Offset of this table's first column in the flattened scope.
    pub offset: usize,
}

/// Binder context: catalog plus optional Table-1 instrumentation.
pub struct BindContext<'a> {
    /// The catalog.
    pub catalog: &'a Catalog,
    /// Reference tracker (catalog lookups are common data references).
    pub tracker: Option<&'a RefTracker>,
}

impl<'a> BindContext<'a> {
    /// A context without instrumentation.
    pub fn new(catalog: &'a Catalog) -> Self {
        Self { catalog, tracker: None }
    }

    /// Attach a reference tracker.
    pub fn with_tracker(mut self, tracker: &'a RefTracker) -> Self {
        self.tracker = Some(tracker);
        self
    }

    fn note_catalog_lookup(&self, bytes: u64) {
        if let Some(t) = self.tracker {
            t.record(RefClass::Common, RefKind::Data, bytes);
        }
    }
}

/// The binder.
pub struct Binder<'a> {
    ctx: BindContext<'a>,
}

impl<'a> Binder<'a> {
    /// A binder over the given context.
    pub fn new(ctx: BindContext<'a>) -> Self {
        Self { ctx }
    }

    /// Bind a SELECT statement.
    pub fn bind_select(&self, mut stmt: SelectStmt) -> SqlResult<BoundSelect> {
        if stmt.from.is_empty() && stmt.items.iter().any(|i| matches!(i, SelectItem::Star)) {
            return Err(SqlError::new("SELECT * requires a FROM clause"));
        }
        // Resolve FROM tables and build the flattened scope.
        let mut tables = Vec::new();
        let mut scope_cols: Vec<Column> = Vec::new();
        for tref in &stmt.from {
            let info =
                self.ctx.catalog.table(&tref.name).map_err(|e| SqlError::new(e.to_string()))?;
            self.ctx.note_catalog_lookup(64 + info.schema.len() as u64 * 24);
            let binding = tref.binding_name().to_string();
            if tables.iter().any(|t: &BoundTable| t.binding == binding) {
                return Err(SqlError::new(format!("duplicate table binding {binding}")));
            }
            let offset = scope_cols.len();
            for c in info.schema.columns() {
                scope_cols.push(Column {
                    name: format!("{binding}.{}", c.name),
                    ty: c.ty,
                    nullable: c.nullable,
                });
            }
            tables.push(BoundTable { binding, info, offset });
        }
        let scope = Schema::new(scope_cols);

        // Bind all expressions in place.
        if let Some(f) = &mut stmt.filter {
            bind_expr(f, &tables, &scope)?;
            if f.contains_agg() {
                return Err(SqlError::new("aggregates are not allowed in WHERE"));
            }
        }
        for g in &mut stmt.group_by {
            bind_expr(g, &tables, &scope)?;
        }
        if let Some(h) = &mut stmt.having {
            bind_expr(h, &tables, &scope)?;
        }
        for (e, _) in &mut stmt.order_by {
            bind_expr(e, &tables, &scope)?;
        }
        for row_exprs in stmt.items.iter_mut() {
            if let SelectItem::Expr { expr, .. } = row_exprs {
                bind_expr(expr, &tables, &scope)?;
            }
        }

        // Expand * and compute projections + output schema.
        let mut projections = Vec::new();
        let mut out_cols = Vec::new();
        for item in &stmt.items {
            match item {
                SelectItem::Star => {
                    for (i, c) in scope.columns().iter().enumerate() {
                        projections.push(Expr::Column(ColumnRef {
                            table: None,
                            name: c.name.clone(),
                            index: Some(i),
                        }));
                        // Unqualify the output name: `t.a` → `a` (suffix
                        // disambiguation happens in Schema::join).
                        let bare = c.name.rsplit('.').next().unwrap_or(&c.name).to_string();
                        out_cols.push((bare, c.ty, c.nullable));
                    }
                }
                SelectItem::Expr { expr, alias } => {
                    let ty = infer_type(expr, &scope)?;
                    let name = alias.clone().unwrap_or_else(|| display_name(expr));
                    projections.push(expr.clone());
                    out_cols.push((name, ty.unwrap_or(DataType::Int), true));
                }
            }
        }
        // Disambiguate duplicate output names.
        let mut cols = Vec::new();
        for (name, ty, nullable) in out_cols {
            let mut n = name.clone();
            let mut k = 1;
            while cols.iter().any(|c: &Column| c.name == n) {
                n = format!("{name}_{k}");
                k += 1;
            }
            let col = Column { name: n, ty, nullable };
            cols.push(col);
        }
        let output = Schema::new(cols);

        // Aggregate validation.
        let grouped = !stmt.group_by.is_empty()
            || projections.iter().any(Expr::contains_agg)
            || stmt.having.as_ref().is_some_and(|h| h.contains_agg());
        if grouped {
            for p in &projections {
                validate_grouped_expr(p, &stmt.group_by)?;
            }
            if let Some(h) = &stmt.having {
                validate_grouped_expr(h, &stmt.group_by)?;
            }
        } else if stmt.having.is_some() {
            return Err(SqlError::new("HAVING requires GROUP BY or aggregates"));
        }

        Ok(BoundSelect { stmt, tables, scope, output, projections })
    }

    /// Bind a standalone predicate against one table (UPDATE/DELETE).
    pub fn bind_table_predicate(&self, expr: &mut Expr, table: &Arc<TableInfo>) -> SqlResult<()> {
        self.ctx.note_catalog_lookup(64);
        let tables =
            vec![BoundTable { binding: table.name.clone(), info: Arc::clone(table), offset: 0 }];
        let scope = Schema::new(
            table
                .schema
                .columns()
                .iter()
                .map(|c| Column {
                    name: format!("{}.{}", table.name, c.name),
                    ty: c.ty,
                    nullable: c.nullable,
                })
                .collect(),
        );
        bind_expr(expr, &tables, &scope)?;
        if expr.contains_agg() {
            return Err(SqlError::new("aggregates are not allowed here"));
        }
        Ok(())
    }
}

/// In grouped queries, bare columns must appear in GROUP BY (standard SQL
/// single-value rule); anything under an aggregate is fine.
fn validate_grouped_expr(expr: &Expr, group_by: &[Expr]) -> SqlResult<()> {
    if group_by.iter().any(|g| g == expr) {
        return Ok(());
    }
    match expr {
        Expr::Agg { .. } | Expr::Literal(_) => Ok(()),
        Expr::Column(c) => Err(SqlError::new(format!(
            "column {} must appear in GROUP BY or inside an aggregate",
            c.name
        ))),
        Expr::Unary { expr, .. } | Expr::IsNull { expr, .. } | Expr::Like { expr, .. } => {
            validate_grouped_expr(expr, group_by)
        }
        Expr::Binary { left, right, .. } => {
            validate_grouped_expr(left, group_by)?;
            validate_grouped_expr(right, group_by)
        }
        Expr::Between { expr, lo, hi, .. } => {
            validate_grouped_expr(expr, group_by)?;
            validate_grouped_expr(lo, group_by)?;
            validate_grouped_expr(hi, group_by)
        }
        Expr::InList { expr, list, .. } => {
            validate_grouped_expr(expr, group_by)?;
            list.iter().try_for_each(|e| validate_grouped_expr(e, group_by))
        }
    }
}

/// Resolve every column reference in `expr` against the scope.
fn bind_expr(expr: &mut Expr, tables: &[BoundTable], scope: &Schema) -> SqlResult<()> {
    match expr {
        Expr::Column(c) => {
            let idx = resolve_column(c, tables, scope)?;
            c.index = Some(idx);
            Ok(())
        }
        Expr::Literal(_) => Ok(()),
        Expr::Unary { expr, .. } | Expr::IsNull { expr, .. } | Expr::Like { expr, .. } => {
            bind_expr(expr, tables, scope)
        }
        Expr::Binary { left, right, .. } => {
            bind_expr(left, tables, scope)?;
            bind_expr(right, tables, scope)
        }
        Expr::Between { expr, lo, hi, .. } => {
            bind_expr(expr, tables, scope)?;
            bind_expr(lo, tables, scope)?;
            bind_expr(hi, tables, scope)
        }
        Expr::InList { expr, list, .. } => {
            bind_expr(expr, tables, scope)?;
            list.iter_mut().try_for_each(|e| bind_expr(e, tables, scope))
        }
        Expr::Agg { arg, .. } => match arg {
            Some(a) => bind_expr(a, tables, scope),
            None => Ok(()),
        },
    }
}

fn resolve_column(c: &ColumnRef, tables: &[BoundTable], scope: &Schema) -> SqlResult<usize> {
    match &c.table {
        Some(t) => {
            let table = tables
                .iter()
                .find(|b| b.binding == *t)
                .ok_or_else(|| SqlError::new(format!("unknown table {t}")))?;
            let idx = table
                .info
                .schema
                .index_of(&c.name)
                .ok_or_else(|| SqlError::new(format!("unknown column {t}.{}", c.name)))?;
            Ok(table.offset + idx)
        }
        None => {
            // Ambiguity check across all tables.
            let mut found = None;
            for table in tables {
                if let Some(idx) = table.info.schema.index_of(&c.name) {
                    if found.is_some() {
                        return Err(SqlError::new(format!("ambiguous column {}", c.name)));
                    }
                    found = Some(table.offset + idx);
                }
            }
            // Also allow references to already-qualified scope names
            // (used by * expansion round trips).
            if found.is_none() {
                found = scope.index_of(&c.name);
            }
            found.ok_or_else(|| SqlError::new(format!("unknown column {}", c.name)))
        }
    }
}

/// Best-effort type inference for an expression over `scope`.
pub fn infer_type(expr: &Expr, scope: &Schema) -> SqlResult<Option<DataType>> {
    Ok(match expr {
        Expr::Literal(v) => v.data_type(),
        Expr::Column(c) => {
            let idx = c.index.ok_or_else(|| SqlError::new(format!("unbound column {}", c.name)))?;
            Some(scope.column(idx).ty)
        }
        Expr::Unary { op, expr } => match op {
            UnaryOp::Neg => {
                let t = infer_type(expr, scope)?;
                match t {
                    Some(DataType::Int) | Some(DataType::Float) | None => t,
                    Some(other) => {
                        return Err(SqlError::new(format!("cannot negate {other}")));
                    }
                }
            }
            UnaryOp::Not => Some(DataType::Bool),
        },
        Expr::Binary { left, op, right } => {
            let lt = infer_type(left, scope)?;
            let rt = infer_type(right, scope)?;
            if op.is_comparison() || matches!(op, BinOp::And | BinOp::Or) {
                Some(DataType::Bool)
            } else {
                match (lt, rt) {
                    (Some(DataType::Str), _) | (_, Some(DataType::Str)) => {
                        return Err(SqlError::new(format!(
                            "arithmetic {} on string operand",
                            op.sql()
                        )));
                    }
                    (Some(DataType::Float), _) | (_, Some(DataType::Float)) => {
                        Some(DataType::Float)
                    }
                    _ => Some(DataType::Int),
                }
            }
        }
        Expr::Agg { func, arg, .. } => match func {
            AggFunc::Count => Some(DataType::Int),
            AggFunc::Avg => Some(DataType::Float),
            AggFunc::Sum | AggFunc::Min | AggFunc::Max => match arg {
                Some(a) => infer_type(a, scope)?,
                None => Some(DataType::Int),
            },
        },
        Expr::IsNull { .. } | Expr::Between { .. } | Expr::InList { .. } | Expr::Like { .. } => {
            Some(DataType::Bool)
        }
    })
}

fn display_name(expr: &Expr) -> String {
    match expr {
        Expr::Column(c) => c.name.clone(),
        Expr::Agg { func, .. } => func.sql().to_ascii_lowercase(),
        _ => "expr".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_statement;
    use staged_storage::{BufferPool, MemDisk};

    fn catalog() -> Catalog {
        let c = Catalog::new(BufferPool::new(Arc::new(MemDisk::new()), 64));
        c.create_table(
            "t",
            Schema::new(vec![
                Column::new("a", DataType::Int),
                Column::new("b", DataType::Str),
                Column::new("v", DataType::Float).nullable(),
            ]),
        )
        .unwrap();
        c.create_table(
            "u",
            Schema::new(vec![Column::new("a", DataType::Int), Column::new("w", DataType::Int)]),
        )
        .unwrap();
        c
    }

    fn bind(sql: &str) -> SqlResult<BoundSelect> {
        let cat = catalog();
        let Statement::Select(sel) = parse_statement(sql).unwrap() else { panic!() };
        Binder::new(BindContext::new(&cat)).bind_select(sel)
    }

    #[test]
    fn binds_columns_with_indices() {
        let b = bind("SELECT a, v FROM t WHERE b = 'x'").unwrap();
        assert_eq!(b.scope.len(), 3);
        let Expr::Column(c) = &b.projections[0] else { panic!() };
        assert_eq!(c.index, Some(0));
        let Expr::Column(c) = &b.projections[1] else { panic!() };
        assert_eq!(c.index, Some(2));
        assert_eq!(b.output.columns()[0].name, "a");
    }

    #[test]
    fn star_expansion_covers_all_tables() {
        let b = bind("SELECT * FROM t, u WHERE t.a = u.a").unwrap();
        assert_eq!(b.projections.len(), 5);
        assert_eq!(b.output.len(), 5);
        // Duplicate bare name `a` is disambiguated.
        assert!(b.output.index_of("a").is_some());
        assert!(b.output.index_of("a_1").is_some());
    }

    #[test]
    fn qualified_and_ambiguous_references() {
        let b = bind("SELECT t.a, u.a FROM t, u").unwrap();
        let Expr::Column(c0) = &b.projections[0] else { panic!() };
        let Expr::Column(c1) = &b.projections[1] else { panic!() };
        assert_eq!(c0.index, Some(0));
        assert_eq!(c1.index, Some(3));
        assert!(bind("SELECT a FROM t, u").is_err(), "bare `a` is ambiguous");
        assert!(bind("SELECT w FROM t, u").is_ok(), "unique bare name resolves");
    }

    #[test]
    fn alias_binding() {
        let b = bind("SELECT x.a FROM t AS x WHERE x.v > 0").unwrap();
        assert_eq!(b.tables[0].binding, "x");
    }

    #[test]
    fn unknown_names_error() {
        assert!(bind("SELECT nope FROM t").is_err());
        assert!(bind("SELECT a FROM missing").is_err());
        assert!(bind("SELECT z.a FROM t").is_err());
    }

    #[test]
    fn aggregate_rules() {
        assert!(bind("SELECT COUNT(*) FROM t WHERE a > 0").is_ok());
        assert!(bind("SELECT a FROM t WHERE SUM(a) > 0").is_err(), "agg in WHERE");
        assert!(bind("SELECT a, COUNT(*) FROM t").is_err(), "bare col with agg, no GROUP BY");
        assert!(bind("SELECT a, COUNT(*) FROM t GROUP BY a").is_ok());
        assert!(bind("SELECT b FROM t GROUP BY a").is_err(), "b not grouped");
        assert!(bind("SELECT a FROM t HAVING a > 0").is_err(), "HAVING without grouping");
    }

    #[test]
    fn type_errors_detected() {
        assert!(bind("SELECT b + 1 FROM t").is_err(), "string arithmetic");
        assert!(bind("SELECT -b FROM t").is_err(), "negating a string");
        assert!(bind("SELECT a + v FROM t").is_ok(), "int + float ok");
    }

    #[test]
    fn output_schema_types() {
        let b = bind("SELECT a + 1, AVG(v), COUNT(*) FROM t GROUP BY a + 1").unwrap();
        assert_eq!(b.output.columns()[0].ty, DataType::Int);
        assert_eq!(b.output.columns()[1].ty, DataType::Float);
        assert_eq!(b.output.columns()[2].ty, DataType::Int);
    }

    #[test]
    fn tracker_records_catalog_lookups() {
        let cat = catalog();
        let tracker = RefTracker::new();
        let Statement::Select(sel) = parse_statement("SELECT a FROM t").unwrap() else { panic!() };
        Binder::new(BindContext::new(&cat).with_tracker(&tracker)).bind_select(sel).unwrap();
        assert!(tracker.count(RefClass::Common, RefKind::Data) > 0);
    }
}
