//! Abstract syntax tree for the SQL subset.
//!
//! `Display` implementations render back to parseable SQL, which enables
//! the print→reparse fixpoint property tests and `EXPLAIN` output.

use staged_storage::{DataType, Value};
use std::fmt;

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Mod,
    /// `=`
    Eq,
    /// `<>`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    LtEq,
    /// `>`
    Gt,
    /// `>=`
    GtEq,
    /// `AND`
    And,
    /// `OR`
    Or,
}

impl BinOp {
    /// True for comparison operators producing booleans.
    pub fn is_comparison(&self) -> bool {
        matches!(self, BinOp::Eq | BinOp::NotEq | BinOp::Lt | BinOp::LtEq | BinOp::Gt | BinOp::GtEq)
    }

    /// True for arithmetic operators.
    pub fn is_arithmetic(&self) -> bool {
        matches!(self, BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Mod)
    }

    /// SQL spelling.
    pub fn sql(&self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Mod => "%",
            BinOp::Eq => "=",
            BinOp::NotEq => "<>",
            BinOp::Lt => "<",
            BinOp::LtEq => "<=",
            BinOp::Gt => ">",
            BinOp::GtEq => ">=",
            BinOp::And => "AND",
            BinOp::Or => "OR",
        }
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnaryOp {
    /// Numeric negation.
    Neg,
    /// Logical NOT.
    Not,
}

/// Aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    /// `COUNT`
    Count,
    /// `SUM`
    Sum,
    /// `AVG`
    Avg,
    /// `MIN`
    Min,
    /// `MAX`
    Max,
}

impl AggFunc {
    /// SQL spelling.
    pub fn sql(&self) -> &'static str {
        match self {
            AggFunc::Count => "COUNT",
            AggFunc::Sum => "SUM",
            AggFunc::Avg => "AVG",
            AggFunc::Min => "MIN",
            AggFunc::Max => "MAX",
        }
    }
}

/// A column reference; `index` is filled by the binder relative to the
/// enclosing scope's flattened schema.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnRef {
    /// Optional table/alias qualifier.
    pub table: Option<String>,
    /// Column name (lower-cased).
    pub name: String,
    /// Resolved position in the scope schema (post-binding).
    pub index: Option<usize>,
}

impl ColumnRef {
    /// An unresolved reference.
    pub fn new(table: Option<String>, name: impl Into<String>) -> Self {
        Self { table, name: name.into(), index: None }
    }
}

/// An expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Literal value.
    Literal(Value),
    /// Column reference.
    Column(ColumnRef),
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnaryOp,
        /// Operand.
        expr: Box<Expr>,
    },
    /// Binary operation.
    Binary {
        /// Left operand.
        left: Box<Expr>,
        /// Operator.
        op: BinOp,
        /// Right operand.
        right: Box<Expr>,
    },
    /// Aggregate call; `arg == None` means `COUNT(*)`.
    Agg {
        /// Function.
        func: AggFunc,
        /// Argument (`None` only for COUNT(*)).
        arg: Option<Box<Expr>>,
        /// DISTINCT aggregation.
        distinct: bool,
    },
    /// `expr IS [NOT] NULL`.
    IsNull {
        /// Tested expression.
        expr: Box<Expr>,
        /// IS NOT NULL when true.
        negated: bool,
    },
    /// `expr [NOT] BETWEEN lo AND hi`.
    Between {
        /// Tested expression.
        expr: Box<Expr>,
        /// Lower bound (inclusive).
        lo: Box<Expr>,
        /// Upper bound (inclusive).
        hi: Box<Expr>,
        /// Negated form.
        negated: bool,
    },
    /// `expr [NOT] IN (v1, v2, …)`.
    InList {
        /// Tested expression.
        expr: Box<Expr>,
        /// Candidate values.
        list: Vec<Expr>,
        /// Negated form.
        negated: bool,
    },
    /// `expr [NOT] LIKE 'pattern'` (`%` and `_` wildcards).
    Like {
        /// Tested expression.
        expr: Box<Expr>,
        /// Pattern literal.
        pattern: String,
        /// Negated form.
        negated: bool,
    },
}

impl Expr {
    /// Convenience: integer literal.
    pub fn int(i: i64) -> Expr {
        Expr::Literal(Value::Int(i))
    }

    /// Convenience: column reference by bare name.
    pub fn col(name: &str) -> Expr {
        Expr::Column(ColumnRef::new(None, name))
    }

    /// Convenience: binary expression.
    pub fn binary(left: Expr, op: BinOp, right: Expr) -> Expr {
        Expr::Binary { left: Box::new(left), op, right: Box::new(right) }
    }

    /// True if any sub-expression is an aggregate call.
    pub fn contains_agg(&self) -> bool {
        match self {
            Expr::Agg { .. } => true,
            Expr::Literal(_) | Expr::Column(_) => false,
            Expr::Unary { expr, .. } | Expr::IsNull { expr, .. } => expr.contains_agg(),
            Expr::Binary { left, right, .. } => left.contains_agg() || right.contains_agg(),
            Expr::Between { expr, lo, hi, .. } => {
                expr.contains_agg() || lo.contains_agg() || hi.contains_agg()
            }
            Expr::InList { expr, list, .. } => {
                expr.contains_agg() || list.iter().any(Expr::contains_agg)
            }
            Expr::Like { expr, .. } => expr.contains_agg(),
        }
    }

    /// Visit every column reference.
    pub fn visit_columns<'a>(&'a self, f: &mut impl FnMut(&'a ColumnRef)) {
        match self {
            Expr::Column(c) => f(c),
            Expr::Literal(_) => {}
            Expr::Unary { expr, .. } | Expr::IsNull { expr, .. } | Expr::Like { expr, .. } => {
                expr.visit_columns(f)
            }
            Expr::Binary { left, right, .. } => {
                left.visit_columns(f);
                right.visit_columns(f);
            }
            Expr::Between { expr, lo, hi, .. } => {
                expr.visit_columns(f);
                lo.visit_columns(f);
                hi.visit_columns(f);
            }
            Expr::InList { expr, list, .. } => {
                expr.visit_columns(f);
                for e in list {
                    e.visit_columns(f);
                }
            }
            Expr::Agg { arg, .. } => {
                if let Some(a) = arg {
                    a.visit_columns(f);
                }
            }
        }
    }
}

/// One item of the SELECT list.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`
    Star,
    /// An expression with an optional alias.
    Expr {
        /// The expression.
        expr: Expr,
        /// `AS alias`.
        alias: Option<String>,
    },
}

/// A table in the FROM clause.
#[derive(Debug, Clone, PartialEq)]
pub struct TableRef {
    /// Table name (lower-cased).
    pub name: String,
    /// Optional alias (lower-cased).
    pub alias: Option<String>,
}

impl TableRef {
    /// Name used for qualification (alias wins).
    pub fn binding_name(&self) -> &str {
        self.alias.as_deref().unwrap_or(&self.name)
    }
}

/// A SELECT statement.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectStmt {
    /// Projection list.
    pub items: Vec<SelectItem>,
    /// FROM tables (explicit JOIN … ON conditions are folded into `filter`
    /// by the parser; the optimizer re-extracts equijoins).
    pub from: Vec<TableRef>,
    /// WHERE predicate.
    pub filter: Option<Expr>,
    /// GROUP BY expressions.
    pub group_by: Vec<Expr>,
    /// HAVING predicate.
    pub having: Option<Expr>,
    /// ORDER BY (expression, ascending).
    pub order_by: Vec<(Expr, bool)>,
    /// LIMIT row count.
    pub limit: Option<u64>,
    /// SELECT DISTINCT.
    pub distinct: bool,
}

/// A column definition in CREATE TABLE.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnDef {
    /// Name.
    pub name: String,
    /// Type.
    pub ty: DataType,
    /// NULLs allowed.
    pub nullable: bool,
}

/// A SQL statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// `CREATE TABLE name (col type [NOT NULL], …)`.
    CreateTable {
        /// Table name.
        name: String,
        /// Column definitions.
        columns: Vec<ColumnDef>,
    },
    /// `CREATE INDEX name ON table (column)`.
    CreateIndex {
        /// Index name.
        name: String,
        /// Indexed table.
        table: String,
        /// Indexed column.
        column: String,
    },
    /// `DROP TABLE name`.
    DropTable {
        /// Table name.
        name: String,
    },
    /// `INSERT INTO table [(cols)] VALUES (…), (…)`.
    Insert {
        /// Target table.
        table: String,
        /// Optional explicit column list.
        columns: Option<Vec<String>>,
        /// Rows of value expressions.
        rows: Vec<Vec<Expr>>,
    },
    /// A query.
    Select(SelectStmt),
    /// `UPDATE table SET col = expr, … [WHERE …]`.
    Update {
        /// Target table.
        table: String,
        /// Assignments.
        sets: Vec<(String, Expr)>,
        /// Row filter.
        filter: Option<Expr>,
    },
    /// `DELETE FROM table [WHERE …]`.
    Delete {
        /// Target table.
        table: String,
        /// Row filter.
        filter: Option<Expr>,
    },
    /// `BEGIN` / `BEGIN READ ONLY`.
    Begin {
        /// `READ ONLY`: the transaction runs against an MVCC snapshot,
        /// acquires no locks, and refuses DML.
        read_only: bool,
    },
    /// `COMMIT`.
    Commit,
    /// `ROLLBACK` / `ABORT`.
    Rollback,
    /// `ANALYZE table`.
    Analyze {
        /// Table to analyze.
        table: String,
    },
    /// `EXPLAIN stmt`.
    Explain(Box<Statement>),
}

impl Statement {
    /// True for statements that bypass the optimizer in the staged pipeline
    /// (DDL and transaction control route connect → execute, paper §4.1).
    pub fn bypasses_optimizer(&self) -> bool {
        !matches!(self, Statement::Select(_) | Statement::Update { .. } | Statement::Delete { .. })
    }

    /// True for `BEGIN` / `COMMIT` / `ROLLBACK` — statements that drive the
    /// session's transaction state rather than touching any table.
    pub fn is_txn_control(&self) -> bool {
        matches!(self, Statement::Begin { .. } | Statement::Commit | Statement::Rollback)
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Literal(v) => write!(f, "{v}"),
            Expr::Column(c) => match &c.table {
                Some(t) => write!(f, "{t}.{}", c.name),
                None => write!(f, "{}", c.name),
            },
            Expr::Unary { op, expr } => match op {
                UnaryOp::Neg => write!(f, "(-{expr})"),
                UnaryOp::Not => write!(f, "(NOT {expr})"),
            },
            Expr::Binary { left, op, right } => write!(f, "({left} {} {right})", op.sql()),
            Expr::Agg { func, arg, distinct } => {
                let d = if *distinct { "DISTINCT " } else { "" };
                match arg {
                    Some(a) => write!(f, "{}({d}{a})", func.sql()),
                    None => write!(f, "{}(*)", func.sql()),
                }
            }
            Expr::IsNull { expr, negated } => {
                write!(f, "({expr} IS {}NULL)", if *negated { "NOT " } else { "" })
            }
            Expr::Between { expr, lo, hi, negated } => {
                write!(f, "({expr} {}BETWEEN {lo} AND {hi})", if *negated { "NOT " } else { "" })
            }
            Expr::InList { expr, list, negated } => {
                write!(f, "({expr} {}IN (", if *negated { "NOT " } else { "" })?;
                for (i, e) in list.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, "))")
            }
            Expr::Like { expr, pattern, negated } => {
                write!(f, "({expr} {}LIKE '{pattern}')", if *negated { "NOT " } else { "" })
            }
        }
    }
}

impl fmt::Display for SelectStmt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SELECT {}", if self.distinct { "DISTINCT " } else { "" })?;
        for (i, item) in self.items.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            match item {
                SelectItem::Star => write!(f, "*")?,
                SelectItem::Expr { expr, alias } => {
                    write!(f, "{expr}")?;
                    if let Some(a) = alias {
                        write!(f, " AS {a}")?;
                    }
                }
            }
        }
        if !self.from.is_empty() {
            write!(f, " FROM ")?;
            for (i, t) in self.from.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{}", t.name)?;
                if let Some(a) = &t.alias {
                    write!(f, " AS {a}")?;
                }
            }
        }
        if let Some(w) = &self.filter {
            write!(f, " WHERE {w}")?;
        }
        if !self.group_by.is_empty() {
            write!(f, " GROUP BY ")?;
            for (i, g) in self.group_by.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{g}")?;
            }
        }
        if let Some(h) = &self.having {
            write!(f, " HAVING {h}")?;
        }
        if !self.order_by.is_empty() {
            write!(f, " ORDER BY ")?;
            for (i, (e, asc)) in self.order_by.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{e} {}", if *asc { "ASC" } else { "DESC" })?;
            }
        }
        if let Some(l) = self.limit {
            write!(f, " LIMIT {l}")?;
        }
        Ok(())
    }
}

impl fmt::Display for Statement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Statement::CreateTable { name, columns } => {
                write!(f, "CREATE TABLE {name} (")?;
                for (i, c) in columns.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{} {}", c.name, c.ty)?;
                    if !c.nullable {
                        write!(f, " NOT NULL")?;
                    }
                }
                write!(f, ")")
            }
            Statement::CreateIndex { name, table, column } => {
                write!(f, "CREATE INDEX {name} ON {table} ({column})")
            }
            Statement::DropTable { name } => write!(f, "DROP TABLE {name}"),
            Statement::Insert { table, columns, rows } => {
                write!(f, "INSERT INTO {table}")?;
                if let Some(cols) = columns {
                    write!(f, " ({})", cols.join(", "))?;
                }
                write!(f, " VALUES ")?;
                for (i, row) in rows.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "(")?;
                    for (j, e) in row.iter().enumerate() {
                        if j > 0 {
                            write!(f, ", ")?;
                        }
                        write!(f, "{e}")?;
                    }
                    write!(f, ")")?;
                }
                Ok(())
            }
            Statement::Select(s) => write!(f, "{s}"),
            Statement::Update { table, sets, filter } => {
                write!(f, "UPDATE {table} SET ")?;
                for (i, (c, e)) in sets.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{c} = {e}")?;
                }
                if let Some(w) = filter {
                    write!(f, " WHERE {w}")?;
                }
                Ok(())
            }
            Statement::Delete { table, filter } => {
                write!(f, "DELETE FROM {table}")?;
                if let Some(w) = filter {
                    write!(f, " WHERE {w}")?;
                }
                Ok(())
            }
            Statement::Begin { read_only: false } => write!(f, "BEGIN"),
            Statement::Begin { read_only: true } => write!(f, "BEGIN READ ONLY"),
            Statement::Commit => write!(f, "COMMIT"),
            Statement::Rollback => write!(f, "ROLLBACK"),
            Statement::Analyze { table } => write!(f, "ANALYZE {table}"),
            Statement::Explain(s) => write!(f, "EXPLAIN {s}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contains_agg_descends() {
        let e = Expr::binary(
            Expr::col("a"),
            BinOp::Add,
            Expr::Agg { func: AggFunc::Sum, arg: Some(Box::new(Expr::col("b"))), distinct: false },
        );
        assert!(e.contains_agg());
        assert!(!Expr::col("a").contains_agg());
    }

    #[test]
    fn visit_columns_finds_all() {
        let e = Expr::Between {
            expr: Box::new(Expr::col("a")),
            lo: Box::new(Expr::col("b")),
            hi: Box::new(Expr::int(5)),
            negated: false,
        };
        let mut names = vec![];
        e.visit_columns(&mut |c| names.push(c.name.clone()));
        assert_eq!(names, vec!["a", "b"]);
    }

    #[test]
    fn display_renders_sql() {
        let e = Expr::binary(Expr::col("a"), BinOp::LtEq, Expr::int(3));
        assert_eq!(e.to_string(), "(a <= 3)");
        let s = Statement::Delete { table: "t".into(), filter: Some(e) };
        assert_eq!(s.to_string(), "DELETE FROM t WHERE (a <= 3)");
    }
}
