//! # staged-core — the staging runtime
//!
//! This crate implements the primary contribution of *"A Case for Staged
//! Database Systems"* (Harizopoulos & Ailamaki, CIDR 2003): a server design
//! in which the software is broken into self-contained **stages** connected
//! by **queues**. Work travels between stages as **packets** that carry a
//! query's state (its *backpack*). Each stage owns its data structures, has
//! its own worker-thread pool and makes local scheduling decisions; a global
//! scheduler arbitrates the CPU between stages.
//!
//! The crate provides two runtimes:
//!
//! * [`runtime::StagedRuntime`] — a production, OS-threaded runtime. Each
//!   stage gets a bounded [`queue::StageQueue`] and a resizable worker pool.
//!   Full queues exert **back-pressure**: `enqueue` blocks the producer, so
//!   demand beyond capacity conditions the pipeline instead of collapsing it
//!   (paper §4.1.1). Workers serve the queue in **cohorts** — gated batches
//!   per queue visit ([`stage::BatchPolicy`], paper §4.2's cohort
//!   scheduling), with the cohort bound tunable at run time
//!   ([`runtime::StagedRuntime::set_batch`]). On an SMP this is the natural
//!   "stage per CPU" mapping of paper §5.3.
//! * [`coop::CoopExecutor`] — a deterministic, virtual-time, single-CPU
//!   cooperative executor used to study the scheduling trade-off of paper
//!   §4.2. It charges an explicit *module load time* `l_i` whenever the CPU
//!   switches to a stage whose common working set is not cached, and runs one
//!   of the [`policy::Policy`] disciplines (PS, FCFS, non-gated, D-gated,
//!   T-gated(k)).
//!
//! The [`tune`] module implements the self-tuning loop sketched in paper
//! §4.4: per-stage monitoring feeds an autotuner that resizes worker pools.
//!
//! The crate is dependency-light and knows nothing about databases; the
//! `staged-server` crate assembles an actual DBMS from it.

#![deny(missing_docs)]

pub mod coop;
pub mod error;
pub mod monitor;
pub mod packet;
pub mod policy;
pub mod queue;
pub mod runtime;
pub mod stage;
pub mod tune;

pub use error::{EnqueueError, StageError};
pub use packet::{ClientInfo, Packet, QueryId, RouteInfo};
pub use policy::Policy;
pub use queue::StageQueue;
pub use runtime::{RuntimeBuilder, StagedRuntime};
pub use stage::{BatchPolicy, StageCtx, StageId, StageLogic, StageSpec};

/// Convenient glob import for downstream crates.
pub mod prelude {
    pub use crate::coop::{CoopConfig, CoopExecutor, Job, SegKind, Segment};
    pub use crate::error::{EnqueueError, StageError};
    pub use crate::monitor::StageStats;
    pub use crate::packet::{ClientInfo, Packet, QueryId, RouteInfo};
    pub use crate::policy::Policy;
    pub use crate::queue::StageQueue;
    pub use crate::runtime::{RuntimeBuilder, StagedRuntime};
    pub use crate::stage::{BatchPolicy, StageCtx, StageId, StageLogic, StageSpec};
    pub use crate::tune::{AutoTuner, PageKnob, TuneConfig};
}
