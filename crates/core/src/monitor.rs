//! Per-stage monitoring.
//!
//! "Each stage provides its own monitoring and self-tuning mechanism. The
//! utilization of both the system's hardware resources and software
//! components (at a stage granularity) can be exploited during the
//! self-tuning process" (paper §5.2). These counters are the raw material
//! for the autotuner in [`crate::tune`] and for the monitoring tables the
//! benchmarks print.

use crate::queue::QueueStats;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Duration;

/// Live counters attached to one stage.
#[derive(Debug, Default)]
pub struct StageMonitor {
    processed: AtomicU64,
    errors: AtomicU64,
    busy_nanos: AtomicU64,
    idle_polls: AtomicU64,
    io_blocked_nanos: AtomicU64,
    retries: AtomicU64,
    cohorts: AtomicU64,
    max_cohort: AtomicUsize,
    cutoff_preempts: AtomicU64,
    pub(crate) active_workers: AtomicUsize,
}

impl StageMonitor {
    /// Record a successfully processed packet and the time spent on it.
    pub fn record_processed(&self, busy: Duration) {
        self.processed.fetch_add(1, Ordering::Relaxed);
        self.busy_nanos.fetch_add(busy.as_nanos() as u64, Ordering::Relaxed);
    }

    /// Record a packet whose processing failed.
    pub fn record_error(&self) {
        self.errors.fetch_add(1, Ordering::Relaxed);
    }

    /// Record an idle poll (worker woke up to an empty queue).
    pub fn record_idle_poll(&self) {
        self.idle_polls.fetch_add(1, Ordering::Relaxed);
    }

    /// Record time a worker spent blocked on (simulated or real) I/O. Stage
    /// logic calls this around its I/O so the autotuner can size the pool by
    /// I/O frequency, as §5.1(1) prescribes.
    pub fn record_io_blocked(&self, blocked: Duration) {
        self.io_blocked_nanos.fetch_add(blocked.as_nanos() as u64, Ordering::Relaxed);
    }

    /// Record a packet requeued because it is waiting on a condition (paper
    /// §4.1.1 case iii — e.g. the lock-manager stage parking a transaction
    /// behind a conflicting lock). High retry counts flag contention to the
    /// monitor without any stage-specific plumbing.
    pub fn record_retry(&self) {
        self.retries.fetch_add(1, Ordering::Relaxed);
    }

    /// Packets processed so far.
    pub fn processed(&self) -> u64 {
        self.processed.load(Ordering::Relaxed)
    }

    /// Errors so far.
    pub fn errors(&self) -> u64 {
        self.errors.load(Ordering::Relaxed)
    }

    /// Total busy time in nanoseconds.
    pub fn busy_nanos(&self) -> u64 {
        self.busy_nanos.load(Ordering::Relaxed)
    }

    /// Total I/O-blocked time in nanoseconds.
    pub fn io_blocked_nanos(&self) -> u64 {
        self.io_blocked_nanos.load(Ordering::Relaxed)
    }

    /// Condition-wait requeues so far.
    pub fn retries(&self) -> u64 {
        self.retries.load(Ordering::Relaxed)
    }

    /// Record one completed queue visit that served `served` packets (the
    /// cohort of §4.2's cohort scheduling). No-visit wakeups are idle
    /// polls, not empty cohorts.
    pub fn record_cohort(&self, served: usize) {
        self.cohorts.fetch_add(1, Ordering::Relaxed);
        self.max_cohort.fetch_max(served, Ordering::Relaxed);
    }

    /// Record a T-gated visit that hit its service cutoff and returned the
    /// unserved remainder of its cohort to the queue.
    pub fn record_cutoff_preempt(&self) {
        self.cutoff_preempts.fetch_add(1, Ordering::Relaxed);
    }

    /// Queue visits that served at least one packet.
    pub fn cohorts(&self) -> u64 {
        self.cohorts.load(Ordering::Relaxed)
    }

    /// Largest cohort served by any single visit.
    pub fn max_cohort(&self) -> usize {
        self.max_cohort.load(Ordering::Relaxed)
    }

    /// T-gated visits cut off before serving their whole cohort.
    pub fn cutoff_preempts(&self) -> u64 {
        self.cutoff_preempts.load(Ordering::Relaxed)
    }
}

/// Immutable snapshot of one stage's state, as reported by the runtime.
///
/// This is the schema consumed by the autotuner, the bench tables and the
/// wire protocol's `STATS` command (PROTOCOL.md §6); the field-by-field
/// interpretation — including how `idle_polls` and `retries` read as
/// over-provisioning and contention signals — is documented in
/// EXPERIMENTS.md ("Stage-stats schema").
#[derive(Debug, Clone, serde::Serialize)]
pub struct StageStats {
    /// Stage name.
    pub name: String,
    /// Stage id.
    pub stage_id: usize,
    /// Packets processed successfully.
    pub processed: u64,
    /// Packets whose processing returned an error.
    pub errors: u64,
    /// Cumulative busy time, nanoseconds.
    pub busy_nanos: u64,
    /// Cumulative simulated/real I/O blocked time, nanoseconds.
    pub io_blocked_nanos: u64,
    /// Idle polls (wakeups with an empty queue).
    pub idle_polls: u64,
    /// Packets requeued while waiting on a condition (lock conflicts, full
    /// output buffers).
    pub retries: u64,
    /// Queue visits that served at least one packet (cohort scheduling,
    /// §4.2). `processed + errors` over `cohorts` is the mean cohort size.
    pub cohorts: u64,
    /// Largest cohort any single visit served.
    pub max_cohort: usize,
    /// T-gated visits that hit their service cutoff and returned the
    /// unserved remainder of the cohort to the queue.
    pub cutoff_preempts: u64,
    /// Current cohort bound (the run-time batch knob, §4.4 knob (b)).
    pub batch_limit: usize,
    /// Workers currently allowed to dequeue.
    pub target_workers: usize,
    /// Workers currently alive (spawned).
    pub spawned_workers: usize,
    /// Queue counters.
    pub queue: QueueStats,
}

impl StageStats {
    /// Fraction of busy time spent blocked on I/O (0 when never busy).
    pub fn io_fraction(&self) -> f64 {
        let total = self.busy_nanos;
        if total == 0 {
            0.0
        } else {
            self.io_blocked_nanos as f64 / total as f64
        }
    }

    /// Mean packets served per queue visit (0 when no visit completed).
    /// The batching-for-locality win of §4.2 scales with this number.
    pub fn mean_cohort(&self) -> f64 {
        if self.cohorts == 0 {
            0.0
        } else {
            (self.processed + self.errors) as f64 / self.cohorts as f64
        }
    }
}

pub(crate) fn snapshot(
    name: &str,
    stage_id: usize,
    monitor: &StageMonitor,
    queue: QueueStats,
    batch_limit: usize,
    target_workers: usize,
    spawned_workers: usize,
) -> StageStats {
    StageStats {
        name: name.to_string(),
        stage_id,
        processed: monitor.processed(),
        errors: monitor.errors(),
        busy_nanos: monitor.busy_nanos(),
        io_blocked_nanos: monitor.io_blocked_nanos(),
        idle_polls: monitor.idle_polls.load(Ordering::Relaxed),
        retries: monitor.retries(),
        cohorts: monitor.cohorts(),
        max_cohort: monitor.max_cohort(),
        cutoff_preempts: monitor.cutoff_preempts(),
        batch_limit,
        target_workers,
        spawned_workers,
        queue,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn io_fraction_is_guarded_against_zero_busy() {
        let m = StageMonitor::default();
        let s = snapshot("s", 0, &m, crate::queue::StageQueue::<u8>::new(1).stats(), 1, 1, 1);
        assert_eq!(s.io_fraction(), 0.0);
        assert_eq!(s.mean_cohort(), 0.0, "no visits yet");
    }

    #[test]
    fn counters_accumulate() {
        let m = StageMonitor::default();
        m.record_processed(Duration::from_nanos(500));
        m.record_processed(Duration::from_nanos(700));
        m.record_error();
        m.record_io_blocked(Duration::from_nanos(300));
        m.record_retry();
        m.record_retry();
        assert_eq!(m.processed(), 2);
        assert_eq!(m.errors(), 1);
        assert_eq!(m.busy_nanos(), 1200);
        assert_eq!(m.io_blocked_nanos(), 300);
        assert_eq!(m.retries(), 2);
    }

    #[test]
    fn cohort_counters_roll_up() {
        let m = StageMonitor::default();
        m.record_processed(Duration::from_nanos(100));
        m.record_processed(Duration::from_nanos(100));
        m.record_processed(Duration::from_nanos(100));
        m.record_cohort(2);
        m.record_cohort(1);
        m.record_cutoff_preempt();
        assert_eq!(m.cohorts(), 2);
        assert_eq!(m.max_cohort(), 2);
        assert_eq!(m.cutoff_preempts(), 1);
        let s = snapshot("s", 0, &m, crate::queue::StageQueue::<u8>::new(1).stats(), 4, 1, 1);
        assert_eq!(s.batch_limit, 4);
        assert_eq!(s.mean_cohort(), 1.5);
    }
}
