//! Bounded packet queues with back-pressure.
//!
//! Every stage owns one `StageQueue`. `enqueue` blocks while the queue is at
//! capacity — this is the paper's back-pressure flow control (§4.1.1):
//! "whenever enqueue causes the next stage's queue to overflow we apply
//! back-pressure flow control by suspending the enqueue operation (and
//! subsequently freeze the query's execution thread in that stage). The rest
//! of the queries that do not output to the blocked stage will continue to
//! run."

use crate::error::EnqueueError;
use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Duration;

/// Counters exposed by a queue (all monotonically increasing except depth).
#[derive(Debug, Default)]
pub struct QueueCounters {
    enqueued: AtomicU64,
    dequeued: AtomicU64,
    blocked_enqueues: AtomicU64,
    max_depth: AtomicUsize,
}

/// Snapshot of [`QueueCounters`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize)]
pub struct QueueStats {
    /// Packets accepted so far.
    pub enqueued: u64,
    /// Packets removed so far.
    pub dequeued: u64,
    /// Enqueue calls that had to wait for space (back-pressure events).
    pub blocked_enqueues: u64,
    /// High-water mark of the queue depth.
    pub max_depth: usize,
    /// Current depth.
    pub depth: usize,
}

struct Inner<P> {
    items: VecDeque<P>,
    closed: bool,
}

/// A bounded MPMC queue of packets.
pub struct StageQueue<P> {
    inner: Mutex<Inner<P>>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
    counters: QueueCounters,
}

/// Result of [`StageQueue::dequeue_timeout`].
#[derive(Debug, PartialEq, Eq)]
pub enum Dequeued<P> {
    /// A packet was obtained.
    Packet(P),
    /// The wait timed out; the queue is still open.
    TimedOut,
    /// The queue is closed and drained.
    Closed,
}

/// Result of [`StageQueue::dequeue_batch`]: one gated queue visit.
#[derive(Debug, PartialEq, Eq)]
pub enum DequeuedCohort<P> {
    /// The packets present when the visit started (at least one, at most
    /// the requested bound), in FIFO order.
    Cohort(Vec<P>),
    /// The wait timed out; the queue is still open.
    TimedOut,
    /// The queue is closed and drained.
    Closed,
}

/// Wake up to `n` waiters on `cv` — one per item or slot made available.
/// `notify_all` would stampede every waiter over `n` resources and put
/// the rest straight back to sleep.
fn notify_n(cv: &Condvar, n: usize) {
    for _ in 0..n {
        if !cv.notify_one() {
            break;
        }
    }
}

impl<P> StageQueue<P> {
    /// Create a queue holding at most `capacity` packets (min 1).
    pub fn new(capacity: usize) -> Self {
        Self {
            inner: Mutex::new(Inner { items: VecDeque::new(), closed: false }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity: capacity.max(1),
            counters: QueueCounters::default(),
        }
    }

    /// Maximum number of packets the queue holds.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of queued packets.
    pub fn len(&self) -> usize {
        self.inner.lock().items.len()
    }

    /// True when no packets are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Add a packet, blocking while the queue is full (back-pressure).
    ///
    /// Returns the packet inside `EnqueueError::Closed` if the queue was (or
    /// becomes) closed while waiting.
    pub fn enqueue(&self, packet: P) -> Result<(), EnqueueError<P>> {
        let mut inner = self.inner.lock();
        if inner.items.len() >= self.capacity && !inner.closed {
            self.counters.blocked_enqueues.fetch_add(1, Ordering::Relaxed);
            while inner.items.len() >= self.capacity && !inner.closed {
                self.not_full.wait(&mut inner);
            }
        }
        if inner.closed {
            return Err(EnqueueError::Closed(packet));
        }
        inner.items.push_back(packet);
        self.note_depth(inner.items.len());
        self.counters.enqueued.fetch_add(1, Ordering::Relaxed);
        drop(inner);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Add a packet without blocking; fails with `Full` when at capacity.
    pub fn try_enqueue(&self, packet: P) -> Result<(), EnqueueError<P>> {
        let mut inner = self.inner.lock();
        if inner.closed {
            return Err(EnqueueError::Closed(packet));
        }
        if inner.items.len() >= self.capacity {
            return Err(EnqueueError::Full(packet));
        }
        inner.items.push_back(packet);
        self.note_depth(inner.items.len());
        self.counters.enqueued.fetch_add(1, Ordering::Relaxed);
        drop(inner);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Add a whole batch, blocking while the queue is full (back-pressure,
    /// admitting incrementally as space frees). Used by the runtime to
    /// flush a visit's buffered forwards with one lock acquisition instead
    /// of one per packet (cohort scheduling, §4.2).
    ///
    /// If the queue is (or becomes) closed, the not-yet-admitted packets
    /// are dropped and their count returned as the error.
    pub fn enqueue_batch(&self, packets: Vec<P>) -> Result<(), usize> {
        if packets.is_empty() {
            return Ok(());
        }
        let mut iter = packets.into_iter().peekable();
        let mut inner = self.inner.lock();
        loop {
            if inner.closed {
                return Err(iter.count());
            }
            let mut pushed = 0usize;
            while inner.items.len() < self.capacity && iter.peek().is_some() {
                inner.items.push_back(iter.next().expect("peeked"));
                pushed += 1;
            }
            if pushed > 0 {
                self.note_depth(inner.items.len());
                self.counters.enqueued.fetch_add(pushed as u64, Ordering::Relaxed);
            }
            if iter.peek().is_none() {
                drop(inner);
                notify_n(&self.not_empty, pushed);
                return Ok(());
            }
            // Full mid-batch: wake consumers for what went in, then wait
            // for space (back-pressure on the flushing worker).
            self.counters.blocked_enqueues.fetch_add(1, Ordering::Relaxed);
            drop(inner);
            notify_n(&self.not_empty, pushed);
            inner = self.inner.lock();
            while inner.items.len() >= self.capacity && !inner.closed {
                self.not_full.wait(&mut inner);
            }
        }
    }

    /// Append a batch to the *back* of this stage's own queue, exempt from
    /// the capacity check and the closed flag (like
    /// [`enqueue_front`](Self::enqueue_front), the packets were already
    /// admitted once — this is how a visit's buffered self-requeues
    /// rejoin the queue without deadlocking the stage against itself).
    pub fn requeue_back_batch(&self, packets: Vec<P>) {
        if packets.is_empty() {
            return;
        }
        let n = packets.len();
        let mut inner = self.inner.lock();
        for p in packets {
            inner.items.push_back(p);
        }
        self.note_depth(inner.items.len());
        self.counters.enqueued.fetch_add(n as u64, Ordering::Relaxed);
        drop(inner);
        notify_n(&self.not_empty, n);
    }

    /// Push to the *front* of the queue: used when a stage must requeue a
    /// packet it cannot finish (paper §4.1.1 case iii) without losing its
    /// position entirely.
    pub fn enqueue_front(&self, packet: P) -> Result<(), EnqueueError<P>> {
        let mut inner = self.inner.lock();
        if inner.closed {
            return Err(EnqueueError::Closed(packet));
        }
        // Requeues are exempt from the capacity check: the packet was already
        // admitted once, and blocking here could deadlock a stage against
        // itself.
        inner.items.push_front(packet);
        self.note_depth(inner.items.len());
        self.counters.enqueued.fetch_add(1, Ordering::Relaxed);
        drop(inner);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Remove a packet, blocking while the queue is empty.
    ///
    /// Returns `None` once the queue is closed *and* drained.
    pub fn dequeue(&self) -> Option<P> {
        let mut inner = self.inner.lock();
        loop {
            if let Some(p) = inner.items.pop_front() {
                self.counters.dequeued.fetch_add(1, Ordering::Relaxed);
                drop(inner);
                self.not_full.notify_one();
                return Some(p);
            }
            if inner.closed {
                return None;
            }
            self.not_empty.wait(&mut inner);
        }
    }

    /// Remove a packet, waiting at most `timeout`.
    pub fn dequeue_timeout(&self, timeout: Duration) -> Dequeued<P> {
        let mut inner = self.inner.lock();
        loop {
            if let Some(p) = inner.items.pop_front() {
                self.counters.dequeued.fetch_add(1, Ordering::Relaxed);
                drop(inner);
                self.not_full.notify_one();
                return Dequeued::Packet(p);
            }
            if inner.closed {
                return Dequeued::Closed;
            }
            if self.not_empty.wait_for(&mut inner, timeout).timed_out() {
                return Dequeued::TimedOut;
            }
        }
    }

    /// Remove up to `max` packets in one queue visit, waiting at most
    /// `timeout` for the first one.
    ///
    /// This is the *gated* dequeue of cohort scheduling (paper §4.2): the
    /// cohort is exactly the packets already queued when the grab happens
    /// (bounded by `max`), taken under a single lock acquisition, in FIFO
    /// order. Packets arriving after the grab wait for the next visit.
    pub fn dequeue_batch(&self, max: usize, timeout: Duration) -> DequeuedCohort<P> {
        let max = max.max(1);
        let mut inner = self.inner.lock();
        loop {
            if !inner.items.is_empty() {
                let n = inner.items.len().min(max);
                let cohort: Vec<P> = inner.items.drain(..n).collect();
                self.counters.dequeued.fetch_add(n as u64, Ordering::Relaxed);
                drop(inner);
                // A batch grab frees n slots: wake exactly n blocked
                // producers (notify_all would stampede every waiter over
                // the n slots and put the rest straight back to sleep).
                notify_n(&self.not_full, n);
                return DequeuedCohort::Cohort(cohort);
            }
            if inner.closed {
                return DequeuedCohort::Closed;
            }
            if self.not_empty.wait_for(&mut inner, timeout).timed_out() {
                return DequeuedCohort::TimedOut;
            }
        }
    }

    /// Non-blocking [`dequeue_batch`](Self::dequeue_batch): up to `max`
    /// packets already queued, or an empty vector. Used by exhaustive
    /// (non-gated) visits to refill mid-visit without re-parking.
    pub fn try_dequeue_batch(&self, max: usize) -> Vec<P> {
        let max = max.max(1);
        let mut inner = self.inner.lock();
        let n = inner.items.len().min(max);
        if n == 0 {
            return Vec::new();
        }
        let cohort: Vec<P> = inner.items.drain(..n).collect();
        self.counters.dequeued.fetch_add(n as u64, Ordering::Relaxed);
        drop(inner);
        notify_n(&self.not_full, n);
        cohort
    }

    /// Return the unserved remainder of a cohort to the *head* of the
    /// queue, preserving its internal order (a T-gated visit cutoff; paper
    /// §4.2). Like [`enqueue_front`](Self::enqueue_front) this is exempt
    /// from the capacity check and from the closed flag: the packets were
    /// already admitted once, and dropping them on shutdown would lose
    /// work that [`close`](Self::close)'s drain contract promises to
    /// finish.
    pub fn requeue_front_batch(&self, packets: Vec<P>) {
        if packets.is_empty() {
            return;
        }
        let mut inner = self.inner.lock();
        let n = packets.len();
        for p in packets.into_iter().rev() {
            inner.items.push_front(p);
        }
        self.note_depth(inner.items.len());
        self.counters.enqueued.fetch_add(n as u64, Ordering::Relaxed);
        drop(inner);
        notify_n(&self.not_empty, n);
    }

    /// Remove a packet without blocking.
    pub fn try_dequeue(&self) -> Option<P> {
        let mut inner = self.inner.lock();
        let p = inner.items.pop_front();
        if p.is_some() {
            self.counters.dequeued.fetch_add(1, Ordering::Relaxed);
            drop(inner);
            self.not_full.notify_one();
        }
        p
    }

    /// Close the queue: pending packets can still be dequeued, new enqueues
    /// fail, blocked producers and consumers wake up.
    pub fn close(&self) {
        let mut inner = self.inner.lock();
        inner.closed = true;
        drop(inner);
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// True once [`close`](Self::close) has been called.
    pub fn is_closed(&self) -> bool {
        self.inner.lock().closed
    }

    /// Snapshot the queue counters.
    pub fn stats(&self) -> QueueStats {
        QueueStats {
            enqueued: self.counters.enqueued.load(Ordering::Relaxed),
            dequeued: self.counters.dequeued.load(Ordering::Relaxed),
            blocked_enqueues: self.counters.blocked_enqueues.load(Ordering::Relaxed),
            max_depth: self.counters.max_depth.load(Ordering::Relaxed),
            depth: self.len(),
        }
    }

    fn note_depth(&self, depth: usize) {
        self.counters.max_depth.fetch_max(depth, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn fifo_order() {
        let q = StageQueue::new(8);
        for i in 0..5 {
            q.enqueue(i).unwrap();
        }
        for i in 0..5 {
            assert_eq!(q.dequeue(), Some(i));
        }
    }

    #[test]
    fn try_enqueue_full() {
        let q = StageQueue::new(2);
        q.try_enqueue(1).unwrap();
        q.try_enqueue(2).unwrap();
        match q.try_enqueue(3) {
            Err(EnqueueError::Full(3)) => {}
            other => panic!("expected Full, got {other:?}"),
        }
    }

    #[test]
    fn close_drains_then_none() {
        let q = StageQueue::new(4);
        q.enqueue("a").unwrap();
        q.close();
        assert!(q.enqueue("b").is_err());
        assert_eq!(q.dequeue(), Some("a"));
        assert_eq!(q.dequeue(), None);
    }

    #[test]
    fn backpressure_blocks_until_space() {
        let q = Arc::new(StageQueue::new(1));
        q.enqueue(0u32).unwrap();
        let q2 = Arc::clone(&q);
        let producer = thread::spawn(move || q2.enqueue(1).is_ok());
        // Give the producer time to block, then free a slot.
        thread::sleep(Duration::from_millis(30));
        assert_eq!(q.dequeue(), Some(0));
        assert!(producer.join().unwrap());
        assert_eq!(q.dequeue(), Some(1));
        assert!(q.stats().blocked_enqueues >= 1);
    }

    #[test]
    fn dequeue_timeout_times_out() {
        let q: StageQueue<u8> = StageQueue::new(1);
        assert_eq!(q.dequeue_timeout(Duration::from_millis(10)), Dequeued::TimedOut);
        q.close();
        assert_eq!(q.dequeue_timeout(Duration::from_millis(10)), Dequeued::Closed);
    }

    #[test]
    fn enqueue_front_bypasses_fifo() {
        let q = StageQueue::new(4);
        q.enqueue(1).unwrap();
        q.enqueue(2).unwrap();
        q.enqueue_front(0).unwrap();
        assert_eq!(q.dequeue(), Some(0));
        assert_eq!(q.dequeue(), Some(1));
    }

    #[test]
    fn stats_track_depth_high_water() {
        let q = StageQueue::new(16);
        for i in 0..7 {
            q.enqueue(i).unwrap();
        }
        q.dequeue();
        let s = q.stats();
        assert_eq!(s.enqueued, 7);
        assert_eq!(s.dequeued, 1);
        assert_eq!(s.max_depth, 7);
        assert_eq!(s.depth, 6);
    }

    #[test]
    fn dequeue_batch_is_gated_and_fifo() {
        let q = StageQueue::new(16);
        for i in 0..6 {
            q.enqueue(i).unwrap();
        }
        // The visit takes only what is present, bounded by max, in order.
        match q.dequeue_batch(4, Duration::from_millis(10)) {
            DequeuedCohort::Cohort(c) => assert_eq!(c, vec![0, 1, 2, 3]),
            other => panic!("expected cohort, got {other:?}"),
        }
        // Packets enqueued after the grab belong to the next visit.
        q.enqueue(6).unwrap();
        match q.dequeue_batch(8, Duration::from_millis(10)) {
            DequeuedCohort::Cohort(c) => assert_eq!(c, vec![4, 5, 6]),
            other => panic!("expected cohort, got {other:?}"),
        }
        assert_eq!(q.stats().dequeued, 7);
    }

    #[test]
    fn dequeue_batch_times_out_then_closes() {
        let q: StageQueue<u8> = StageQueue::new(4);
        assert_eq!(q.dequeue_batch(4, Duration::from_millis(5)), DequeuedCohort::TimedOut);
        q.enqueue(1).unwrap();
        q.close();
        // Closed queues still drain pending cohorts first.
        assert_eq!(q.dequeue_batch(4, Duration::from_millis(5)), DequeuedCohort::Cohort(vec![1]));
        assert_eq!(q.dequeue_batch(4, Duration::from_millis(5)), DequeuedCohort::Closed);
    }

    #[test]
    fn try_dequeue_batch_refills_without_blocking() {
        let q = StageQueue::new(8);
        assert!(q.try_dequeue_batch(4).is_empty());
        for i in 0..3 {
            q.enqueue(i).unwrap();
        }
        assert_eq!(q.try_dequeue_batch(2), vec![0, 1]);
        assert_eq!(q.try_dequeue_batch(2), vec![2]);
    }

    #[test]
    fn requeue_front_batch_preserves_order_and_position() {
        let q = StageQueue::new(8);
        for i in 0..5 {
            q.enqueue(i).unwrap();
        }
        let DequeuedCohort::Cohort(mut cohort) = q.dequeue_batch(4, Duration::from_millis(5))
        else {
            panic!("expected cohort");
        };
        // Serve the first packet; a cutoff sends the rest back to the head.
        assert_eq!(cohort.remove(0), 0);
        q.requeue_front_batch(cohort);
        // Global FIFO order is intact: 1, 2, 3 lead 4.
        assert_eq!(q.dequeue(), Some(1));
        assert_eq!(q.dequeue(), Some(2));
        assert_eq!(q.dequeue(), Some(3));
        assert_eq!(q.dequeue(), Some(4));
    }

    #[test]
    fn requeue_front_batch_is_capacity_and_close_exempt() {
        let q = StageQueue::new(1);
        q.enqueue(10).unwrap();
        let DequeuedCohort::Cohort(cohort) = q.dequeue_batch(1, Duration::from_millis(5)) else {
            panic!("expected cohort");
        };
        q.enqueue(11).unwrap(); // queue full again
        q.close();
        q.requeue_front_batch(cohort); // must not block or drop
        assert_eq!(q.dequeue(), Some(10));
        assert_eq!(q.dequeue(), Some(11));
        assert_eq!(q.dequeue(), None);
    }

    #[test]
    fn mpmc_under_contention_delivers_everything() {
        let q = Arc::new(StageQueue::new(4));
        let total = 1000u64;
        let mut producers = vec![];
        for t in 0..4 {
            let q = Arc::clone(&q);
            producers.push(thread::spawn(move || {
                for i in 0..(total / 4) {
                    q.enqueue(t * total + i).unwrap();
                }
            }));
        }
        let mut consumers = vec![];
        for _ in 0..3 {
            let q = Arc::clone(&q);
            consumers.push(thread::spawn(move || {
                let mut n = 0u64;
                while q.dequeue().is_some() {
                    n += 1;
                }
                n
            }));
        }
        for p in producers {
            p.join().unwrap();
        }
        q.close();
        let got: u64 = consumers.into_iter().map(|c| c.join().unwrap()).sum();
        assert_eq!(got, total);
    }
}
