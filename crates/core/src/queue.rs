//! Bounded packet queues with back-pressure.
//!
//! Every stage owns one `StageQueue`. `enqueue` blocks while the queue is at
//! capacity — this is the paper's back-pressure flow control (§4.1.1):
//! "whenever enqueue causes the next stage's queue to overflow we apply
//! back-pressure flow control by suspending the enqueue operation (and
//! subsequently freeze the query's execution thread in that stage). The rest
//! of the queries that do not output to the blocked stage will continue to
//! run."

use crate::error::EnqueueError;
use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Duration;

/// Counters exposed by a queue (all monotonically increasing except depth).
#[derive(Debug, Default)]
pub struct QueueCounters {
    enqueued: AtomicU64,
    dequeued: AtomicU64,
    blocked_enqueues: AtomicU64,
    max_depth: AtomicUsize,
}

/// Snapshot of [`QueueCounters`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize)]
pub struct QueueStats {
    /// Packets accepted so far.
    pub enqueued: u64,
    /// Packets removed so far.
    pub dequeued: u64,
    /// Enqueue calls that had to wait for space (back-pressure events).
    pub blocked_enqueues: u64,
    /// High-water mark of the queue depth.
    pub max_depth: usize,
    /// Current depth.
    pub depth: usize,
}

struct Inner<P> {
    items: VecDeque<P>,
    closed: bool,
}

/// A bounded MPMC queue of packets.
pub struct StageQueue<P> {
    inner: Mutex<Inner<P>>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
    counters: QueueCounters,
}

/// Result of [`StageQueue::dequeue_timeout`].
#[derive(Debug, PartialEq, Eq)]
pub enum Dequeued<P> {
    /// A packet was obtained.
    Packet(P),
    /// The wait timed out; the queue is still open.
    TimedOut,
    /// The queue is closed and drained.
    Closed,
}

impl<P> StageQueue<P> {
    /// Create a queue holding at most `capacity` packets (min 1).
    pub fn new(capacity: usize) -> Self {
        Self {
            inner: Mutex::new(Inner { items: VecDeque::new(), closed: false }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity: capacity.max(1),
            counters: QueueCounters::default(),
        }
    }

    /// Maximum number of packets the queue holds.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of queued packets.
    pub fn len(&self) -> usize {
        self.inner.lock().items.len()
    }

    /// True when no packets are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Add a packet, blocking while the queue is full (back-pressure).
    ///
    /// Returns the packet inside `EnqueueError::Closed` if the queue was (or
    /// becomes) closed while waiting.
    pub fn enqueue(&self, packet: P) -> Result<(), EnqueueError<P>> {
        let mut inner = self.inner.lock();
        if inner.items.len() >= self.capacity && !inner.closed {
            self.counters.blocked_enqueues.fetch_add(1, Ordering::Relaxed);
            while inner.items.len() >= self.capacity && !inner.closed {
                self.not_full.wait(&mut inner);
            }
        }
        if inner.closed {
            return Err(EnqueueError::Closed(packet));
        }
        inner.items.push_back(packet);
        self.note_depth(inner.items.len());
        self.counters.enqueued.fetch_add(1, Ordering::Relaxed);
        drop(inner);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Add a packet without blocking; fails with `Full` when at capacity.
    pub fn try_enqueue(&self, packet: P) -> Result<(), EnqueueError<P>> {
        let mut inner = self.inner.lock();
        if inner.closed {
            return Err(EnqueueError::Closed(packet));
        }
        if inner.items.len() >= self.capacity {
            return Err(EnqueueError::Full(packet));
        }
        inner.items.push_back(packet);
        self.note_depth(inner.items.len());
        self.counters.enqueued.fetch_add(1, Ordering::Relaxed);
        drop(inner);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Push to the *front* of the queue: used when a stage must requeue a
    /// packet it cannot finish (paper §4.1.1 case iii) without losing its
    /// position entirely.
    pub fn enqueue_front(&self, packet: P) -> Result<(), EnqueueError<P>> {
        let mut inner = self.inner.lock();
        if inner.closed {
            return Err(EnqueueError::Closed(packet));
        }
        // Requeues are exempt from the capacity check: the packet was already
        // admitted once, and blocking here could deadlock a stage against
        // itself.
        inner.items.push_front(packet);
        self.note_depth(inner.items.len());
        self.counters.enqueued.fetch_add(1, Ordering::Relaxed);
        drop(inner);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Remove a packet, blocking while the queue is empty.
    ///
    /// Returns `None` once the queue is closed *and* drained.
    pub fn dequeue(&self) -> Option<P> {
        let mut inner = self.inner.lock();
        loop {
            if let Some(p) = inner.items.pop_front() {
                self.counters.dequeued.fetch_add(1, Ordering::Relaxed);
                drop(inner);
                self.not_full.notify_one();
                return Some(p);
            }
            if inner.closed {
                return None;
            }
            self.not_empty.wait(&mut inner);
        }
    }

    /// Remove a packet, waiting at most `timeout`.
    pub fn dequeue_timeout(&self, timeout: Duration) -> Dequeued<P> {
        let mut inner = self.inner.lock();
        loop {
            if let Some(p) = inner.items.pop_front() {
                self.counters.dequeued.fetch_add(1, Ordering::Relaxed);
                drop(inner);
                self.not_full.notify_one();
                return Dequeued::Packet(p);
            }
            if inner.closed {
                return Dequeued::Closed;
            }
            if self.not_empty.wait_for(&mut inner, timeout).timed_out() {
                return Dequeued::TimedOut;
            }
        }
    }

    /// Remove a packet without blocking.
    pub fn try_dequeue(&self) -> Option<P> {
        let mut inner = self.inner.lock();
        let p = inner.items.pop_front();
        if p.is_some() {
            self.counters.dequeued.fetch_add(1, Ordering::Relaxed);
            drop(inner);
            self.not_full.notify_one();
        }
        p
    }

    /// Close the queue: pending packets can still be dequeued, new enqueues
    /// fail, blocked producers and consumers wake up.
    pub fn close(&self) {
        let mut inner = self.inner.lock();
        inner.closed = true;
        drop(inner);
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// True once [`close`](Self::close) has been called.
    pub fn is_closed(&self) -> bool {
        self.inner.lock().closed
    }

    /// Snapshot the queue counters.
    pub fn stats(&self) -> QueueStats {
        QueueStats {
            enqueued: self.counters.enqueued.load(Ordering::Relaxed),
            dequeued: self.counters.dequeued.load(Ordering::Relaxed),
            blocked_enqueues: self.counters.blocked_enqueues.load(Ordering::Relaxed),
            max_depth: self.counters.max_depth.load(Ordering::Relaxed),
            depth: self.len(),
        }
    }

    fn note_depth(&self, depth: usize) {
        self.counters.max_depth.fetch_max(depth, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn fifo_order() {
        let q = StageQueue::new(8);
        for i in 0..5 {
            q.enqueue(i).unwrap();
        }
        for i in 0..5 {
            assert_eq!(q.dequeue(), Some(i));
        }
    }

    #[test]
    fn try_enqueue_full() {
        let q = StageQueue::new(2);
        q.try_enqueue(1).unwrap();
        q.try_enqueue(2).unwrap();
        match q.try_enqueue(3) {
            Err(EnqueueError::Full(3)) => {}
            other => panic!("expected Full, got {other:?}"),
        }
    }

    #[test]
    fn close_drains_then_none() {
        let q = StageQueue::new(4);
        q.enqueue("a").unwrap();
        q.close();
        assert!(q.enqueue("b").is_err());
        assert_eq!(q.dequeue(), Some("a"));
        assert_eq!(q.dequeue(), None);
    }

    #[test]
    fn backpressure_blocks_until_space() {
        let q = Arc::new(StageQueue::new(1));
        q.enqueue(0u32).unwrap();
        let q2 = Arc::clone(&q);
        let producer = thread::spawn(move || q2.enqueue(1).is_ok());
        // Give the producer time to block, then free a slot.
        thread::sleep(Duration::from_millis(30));
        assert_eq!(q.dequeue(), Some(0));
        assert!(producer.join().unwrap());
        assert_eq!(q.dequeue(), Some(1));
        assert!(q.stats().blocked_enqueues >= 1);
    }

    #[test]
    fn dequeue_timeout_times_out() {
        let q: StageQueue<u8> = StageQueue::new(1);
        assert_eq!(q.dequeue_timeout(Duration::from_millis(10)), Dequeued::TimedOut);
        q.close();
        assert_eq!(q.dequeue_timeout(Duration::from_millis(10)), Dequeued::Closed);
    }

    #[test]
    fn enqueue_front_bypasses_fifo() {
        let q = StageQueue::new(4);
        q.enqueue(1).unwrap();
        q.enqueue(2).unwrap();
        q.enqueue_front(0).unwrap();
        assert_eq!(q.dequeue(), Some(0));
        assert_eq!(q.dequeue(), Some(1));
    }

    #[test]
    fn stats_track_depth_high_water() {
        let q = StageQueue::new(16);
        for i in 0..7 {
            q.enqueue(i).unwrap();
        }
        q.dequeue();
        let s = q.stats();
        assert_eq!(s.enqueued, 7);
        assert_eq!(s.dequeued, 1);
        assert_eq!(s.max_depth, 7);
        assert_eq!(s.depth, 6);
    }

    #[test]
    fn mpmc_under_contention_delivers_everything() {
        let q = Arc::new(StageQueue::new(4));
        let total = 1000u64;
        let mut producers = vec![];
        for t in 0..4 {
            let q = Arc::clone(&q);
            producers.push(thread::spawn(move || {
                for i in 0..(total / 4) {
                    q.enqueue(t * total + i).unwrap();
                }
            }));
        }
        let mut consumers = vec![];
        for _ in 0..3 {
            let q = Arc::clone(&q);
            consumers.push(thread::spawn(move || {
                let mut n = 0u64;
                while q.dequeue().is_some() {
                    n += 1;
                }
                n
            }));
        }
        for p in producers {
            p.join().unwrap();
        }
        q.close();
        let got: u64 = consumers.into_iter().map(|c| c.join().unwrap()).sum();
        assert_eq!(got, total);
    }
}
