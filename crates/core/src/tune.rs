//! Self-tuning of stage parameters (paper §4.4).
//!
//! The paper proposes a mechanism that "will continuously monitor and
//! automatically tune" four parameters; this module implements knob (a) —
//! the number of threads at each stage — and knob (b) — the cohort bound
//! served per queue visit ([`StagedRuntime::set_batch`]) — as feedback
//! loops over the per-stage monitors: stages whose workers spend most of
//! their time blocked on I/O or whose queues grow get more workers and
//! larger cohorts (deep queues are where batching amortizes best); idle
//! stages shrink both. Knob (c) — the exchange page size — is tuned
//! through an optional [`PageKnob`] handle supplied by the owner of the
//! exchange layer ([`AutoTuner::spawn_with_page`]): standing backlogs ask
//! for larger pages (fewer, fatter hand-offs), sustained idleness shrinks
//! them back. Knob (d) — policy choice — remains configuration
//! (`staged-sim`) explored by the ablation benches.

use crate::runtime::StagedRuntime;
use crate::stage::BatchPolicy;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Tuning parameters.
#[derive(Debug, Clone)]
pub struct TuneConfig {
    /// Lower bound on workers per stage.
    pub min_workers: usize,
    /// Upper bound on workers per stage.
    pub max_workers: usize,
    /// Add a worker when queue depth per active worker exceeds this.
    pub grow_depth_per_worker: f64,
    /// Add a worker when the stage's I/O-blocked fraction exceeds this
    /// (workers are mostly waiting, more of them can overlap I/O — §5.1(1)).
    pub grow_io_fraction: f64,
    /// Remove a worker when the queue has stayed empty for a full interval.
    pub shrink_when_idle: bool,
    /// Also steer the cohort bound (knob (b)): double it while the queue
    /// is backing up, halve it back while the stage sits idle. Stages
    /// built with [`BatchPolicy::Single`] are left alone.
    pub tune_batch: bool,
    /// Lower bound the batch knob may shrink to.
    pub min_batch: usize,
    /// Upper bound the batch knob may grow to.
    pub max_batch: usize,
    /// Also steer the exchange page size (knob (c)) when a [`PageKnob`]
    /// was attached: double it while any stage's queue is backing up,
    /// halve it back while the whole pipeline sits idle.
    pub tune_page: bool,
    /// Lower bound the page knob may shrink to.
    pub min_page: usize,
    /// Upper bound the page knob may grow to.
    pub max_page: usize,
    /// How often the tuner wakes up.
    pub interval: Duration,
}

impl Default for TuneConfig {
    fn default() -> Self {
        Self {
            min_workers: 1,
            max_workers: 16,
            grow_depth_per_worker: 4.0,
            grow_io_fraction: 0.5,
            shrink_when_idle: true,
            tune_batch: true,
            min_batch: 1,
            max_batch: 64,
            tune_page: true,
            min_page: 16,
            max_page: 4096,
            interval: Duration::from_millis(50),
        }
    }
}

/// Handle to an exchange layer's live page size — §4.4 knob (c). The
/// runtime does not own the exchange buffers (the execution engine does),
/// so the tuner steers the knob through this getter/setter pair; engines
/// build one from their shared page-size cell (see
/// `StagedEngine::page_knob` in `staged-engine`).
#[derive(Clone)]
pub struct PageKnob {
    /// Read the current tuples-per-page value.
    pub get: Arc<dyn Fn() -> usize + Send + Sync>,
    /// Install a new tuples-per-page value.
    pub set: Arc<dyn Fn(usize) + Send + Sync>,
}

/// A decision the tuner took, for observability and tests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TuneDecision {
    /// Stage name (`"exchange"` for the engine-wide page knob).
    pub stage: String,
    /// Which knob moved: `"workers"` (§4.4 knob (a)), `"batch"`
    /// (knob (b), the cohort bound) or `"page"` (knob (c), the exchange
    /// page size).
    pub knob: &'static str,
    /// Knob value before.
    pub from: usize,
    /// Knob value after.
    pub to: usize,
    /// Why.
    pub reason: &'static str,
}

/// Background autotuner for a [`StagedRuntime`].
pub struct AutoTuner {
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
    decisions: Arc<Mutex<Vec<TuneDecision>>>,
}

impl AutoTuner {
    /// Start tuning `runtime` in a background thread.
    pub fn spawn<P: Send + 'static>(runtime: StagedRuntime<P>, cfg: TuneConfig) -> Self {
        Self::spawn_with_page(runtime, cfg, None)
    }

    /// Start tuning `runtime`, additionally steering an exchange layer's
    /// page size (knob (c)) through `page` when one is supplied.
    pub fn spawn_with_page<P: Send + 'static>(
        runtime: StagedRuntime<P>,
        cfg: TuneConfig,
        page: Option<PageKnob>,
    ) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let decisions = Arc::new(Mutex::new(Vec::new()));
        let stop2 = Arc::clone(&stop);
        let dec2 = Arc::clone(&decisions);
        let handle = std::thread::Builder::new()
            .name("stage-autotuner".into())
            .spawn(move || {
                let mut last_io_nanos: Vec<u64> = vec![0; runtime.num_stages()];
                let mut last_busy_nanos: Vec<u64> = vec![0; runtime.num_stages()];
                while !stop2.load(Ordering::Relaxed) {
                    std::thread::sleep(cfg.interval);
                    let mut max_depth_per_worker = 0.0f64;
                    let mut total_dbusy = 0u64;
                    let mut total_depth = 0usize;
                    for stats in runtime.stats() {
                        let id = stats.stage_id;
                        let workers = stats.target_workers;
                        let dio = stats.io_blocked_nanos.saturating_sub(last_io_nanos[id]);
                        let dbusy = stats.busy_nanos.saturating_sub(last_busy_nanos[id]);
                        last_io_nanos[id] = stats.io_blocked_nanos;
                        last_busy_nanos[id] = stats.busy_nanos;
                        let io_frac = if dbusy == 0 { 0.0 } else { dio as f64 / dbusy as f64 };
                        let depth_per_worker = stats.queue.depth as f64 / workers.max(1) as f64;
                        max_depth_per_worker = max_depth_per_worker.max(depth_per_worker);
                        total_dbusy += dbusy;
                        total_depth += stats.queue.depth;
                        let mut to = workers;
                        let mut reason = "";
                        if workers < cfg.max_workers
                            && (depth_per_worker > cfg.grow_depth_per_worker
                                || (io_frac > cfg.grow_io_fraction && stats.queue.depth > 0))
                        {
                            to = workers + 1;
                            reason = if io_frac > cfg.grow_io_fraction {
                                "io-bound: add worker to overlap I/O"
                            } else {
                                "queue growing: add worker"
                            };
                        } else if cfg.shrink_when_idle
                            && workers > cfg.min_workers
                            && stats.queue.depth == 0
                            && dbusy == 0
                        {
                            to = workers - 1;
                            reason = "idle: remove worker";
                        }
                        if to != workers {
                            runtime.set_workers(id, to);
                            dec2.lock().push(TuneDecision {
                                stage: stats.name.clone(),
                                knob: "workers",
                                from: workers,
                                to,
                                reason,
                            });
                        }
                        // Knob (b): the cohort bound. Deep queues are
                        // where batching amortizes best, so grow it with
                        // the backlog and decay it when the stage idles.
                        if cfg.tune_batch && runtime.batch_policy(id) != BatchPolicy::Single {
                            let batch = stats.batch_limit;
                            let mut to_batch = batch;
                            let mut batch_reason = "";
                            if depth_per_worker > cfg.grow_depth_per_worker && batch < cfg.max_batch
                            {
                                to_batch = (batch * 2).min(cfg.max_batch);
                                batch_reason = "queue backing up: widen cohorts";
                            } else if stats.queue.depth == 0 && dbusy == 0 && batch > cfg.min_batch
                            {
                                to_batch = (batch / 2).max(cfg.min_batch);
                                batch_reason = "idle: narrow cohorts";
                            }
                            if to_batch != batch {
                                runtime.set_batch(id, to_batch);
                                dec2.lock().push(TuneDecision {
                                    stage: stats.name.clone(),
                                    knob: "batch",
                                    from: batch,
                                    to: to_batch,
                                    reason: batch_reason,
                                });
                            }
                        }
                    }
                    // Knob (c): the exchange page size, engine-wide. A
                    // backlogged pipeline wants fewer, fatter hand-offs;
                    // a fully idle one decays back so short queries keep
                    // their low latency.
                    if let Some(knob) = page.as_ref().filter(|_| cfg.tune_page) {
                        let cur = (knob.get)();
                        let mut to = cur;
                        let mut reason = "";
                        if max_depth_per_worker > cfg.grow_depth_per_worker && cur < cfg.max_page {
                            to = (cur * 2).min(cfg.max_page);
                            reason = "queues backing up: larger exchange pages";
                        } else if total_depth == 0 && total_dbusy == 0 && cur > cfg.min_page {
                            to = (cur / 2).max(cfg.min_page);
                            reason = "idle: smaller exchange pages";
                        }
                        if to != cur {
                            (knob.set)(to);
                            dec2.lock().push(TuneDecision {
                                stage: "exchange".into(),
                                knob: "page",
                                from: cur,
                                to,
                                reason,
                            });
                        }
                    }
                }
            })
            .expect("failed to spawn autotuner");
        Self { stop, handle: Some(handle), decisions }
    }

    /// Decisions taken so far.
    pub fn decisions(&self) -> Vec<TuneDecision> {
        self.decisions.lock().clone()
    }

    /// Stop the tuner and wait for it.
    pub fn stop(mut self) -> Vec<TuneDecision> {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
        let d = self.decisions.lock().clone();
        d
    }
}

impl Drop for AutoTuner {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stage::{StageCtx, StageSpec};
    use std::time::Instant;

    #[test]
    fn tuner_grows_io_bound_stage() {
        let mut b = StagedRuntime::<u32>::builder();
        let s = b.add_stage(
            StageSpec::new(
                "io-stage",
                |_p: u32, ctx: &StageCtx<'_, u32>| -> crate::stage::StageResult {
                    // Simulated I/O: block and tell the monitor about it.
                    let t = Instant::now();
                    std::thread::sleep(Duration::from_millis(5));
                    ctx.record_io_blocked(t.elapsed());
                    Ok(())
                },
            )
            .with_queue_capacity(256),
        );
        let rt = b.build();
        let tuner = AutoTuner::spawn(
            rt.clone(),
            TuneConfig {
                max_workers: 8,
                grow_io_fraction: 0.3,
                interval: Duration::from_millis(20),
                ..TuneConfig::default()
            },
        );
        for i in 0..200 {
            rt.enqueue(s, i).unwrap();
        }
        // Let the tuner observe the backlog + I/O fraction.
        let deadline = Instant::now() + Duration::from_secs(5);
        while rt.workers(s) < 2 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        assert!(rt.workers(s) >= 2, "tuner should have added workers");
        let decisions = tuner.stop();
        assert!(!decisions.is_empty());
        rt.shutdown();
    }

    #[test]
    fn tuner_widens_cohorts_for_backlogged_stage() {
        // Knob (b): a stage with a standing backlog gets a wider cohort
        // bound, and the decision log says which knob moved.
        let mut b = StagedRuntime::<u32>::builder();
        let s = b.add_stage(
            StageSpec::new(
                "backlogged",
                |_p: u32, _ctx: &StageCtx<'_, u32>| -> crate::stage::StageResult {
                    std::thread::sleep(Duration::from_millis(2));
                    Ok(())
                },
            )
            .with_max_cohort(2)
            .with_queue_capacity(512),
        );
        let rt = b.build();
        let tuner = AutoTuner::spawn(
            rt.clone(),
            TuneConfig {
                max_workers: 1, // isolate the batch knob
                min_workers: 1,
                max_batch: 32,
                interval: Duration::from_millis(20),
                ..TuneConfig::default()
            },
        );
        for i in 0..400 {
            rt.enqueue(s, i).unwrap();
        }
        let deadline = Instant::now() + Duration::from_secs(5);
        while rt.batch(s) <= 2 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        assert!(rt.batch(s) > 2, "tuner should have widened the cohort bound");
        let decisions = tuner.stop();
        assert!(
            decisions.iter().any(|d| d.knob == "batch" && d.to > d.from),
            "expected a widen-cohorts decision, got {decisions:?}"
        );
        rt.shutdown();
    }

    #[test]
    fn tuner_grows_exchange_pages_for_backlogged_pipeline() {
        // Knob (c): a standing backlog behind any stage pushes the page
        // knob up, and the decision log names the "page" knob. The knob is
        // a plain cell here standing in for an engine's PageSize handle.
        use std::sync::atomic::AtomicUsize;
        let mut b = StagedRuntime::<u32>::builder();
        let s = b.add_stage(
            StageSpec::new(
                "backlogged",
                |_p: u32, _ctx: &StageCtx<'_, u32>| -> crate::stage::StageResult {
                    std::thread::sleep(Duration::from_millis(2));
                    Ok(())
                },
            )
            .with_queue_capacity(512),
        );
        let rt = b.build();
        let cell = Arc::new(AtomicUsize::new(64));
        let (g, st) = (Arc::clone(&cell), Arc::clone(&cell));
        let knob = PageKnob {
            get: Arc::new(move || g.load(Ordering::Relaxed)),
            set: Arc::new(move |n| st.store(n, Ordering::Relaxed)),
        };
        let tuner = AutoTuner::spawn_with_page(
            rt.clone(),
            TuneConfig {
                max_workers: 1,
                min_workers: 1,
                tune_batch: false, // isolate the page knob
                max_page: 1024,
                interval: Duration::from_millis(20),
                ..TuneConfig::default()
            },
            Some(knob),
        );
        for i in 0..400 {
            rt.enqueue(s, i).unwrap();
        }
        let deadline = Instant::now() + Duration::from_secs(5);
        while cell.load(Ordering::Relaxed) <= 64 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        assert!(cell.load(Ordering::Relaxed) > 64, "tuner should have grown the page size");
        let decisions = tuner.stop();
        assert!(
            decisions.iter().any(|d| d.knob == "page" && d.stage == "exchange" && d.to > d.from),
            "expected a larger-pages decision, got {decisions:?}"
        );
        rt.shutdown();
    }
}
