//! Error types for the staging runtime.

use std::fmt;

/// Error returned by queue/enqueue operations.
#[derive(Debug)]
pub enum EnqueueError<P> {
    /// The queue has been closed; the packet is handed back to the caller.
    Closed(P),
    /// The queue is full (only returned by `try_enqueue`; blocking `enqueue`
    /// waits instead — that wait *is* the paper's back-pressure flow control).
    Full(P),
}

impl<P> EnqueueError<P> {
    /// Recover the packet that could not be enqueued.
    pub fn into_packet(self) -> P {
        match self {
            EnqueueError::Closed(p) | EnqueueError::Full(p) => p,
        }
    }

    /// True if the error indicates a closed queue.
    pub fn is_closed(&self) -> bool {
        matches!(self, EnqueueError::Closed(_))
    }
}

impl<P> fmt::Display for EnqueueError<P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EnqueueError::Closed(_) => write!(f, "stage queue is closed"),
            EnqueueError::Full(_) => write!(f, "stage queue is full"),
        }
    }
}

impl<P: fmt::Debug> std::error::Error for EnqueueError<P> {}

/// Error produced by a stage's `process` implementation.
///
/// A failing packet is dropped and counted in the stage monitor; the stage
/// itself keeps running (fault isolation is one of the software-engineering
/// benefits claimed in paper §5.2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageError {
    /// Human-readable reason, recorded by the monitor.
    pub reason: String,
}

impl StageError {
    /// Create a stage error with the given reason.
    pub fn new(reason: impl Into<String>) -> Self {
        Self { reason: reason.into() }
    }
}

impl fmt::Display for StageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "stage error: {}", self.reason)
    }
}

impl std::error::Error for StageError {}
