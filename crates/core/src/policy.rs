//! Scheduling policies for the staged-server scheduling trade-off (§4.2).
//!
//! The paper evaluates five policies on the production-line model of
//! Figure 4 and reports their mean response times in Figure 5:
//!
//! * **PS** (processor sharing) — the prevailing policy in thread-based
//!   servers: the CPU round-robins over all active queries with a fixed
//!   quantum, "switching from query to query in a random way with respect to
//!   the query's current execution module", paying the module load time on
//!   almost every switch.
//! * **FCFS** — one query at a time, start to finish; pays every module's
//!   load time once per query, but never interleaves.
//! * **non-gated** — the CPU visits modules cyclically and serves each
//!   module's queue *exhaustively* (until empty) before moving on.
//! * **D-gated** — gated service: only the packets present when the CPU
//!   arrives at the module are served in this visit; later arrivals wait for
//!   the next cycle.
//! * **T-gated(k)** — gated service with a per-packet service *cutoff* of
//!   `k ×` the module's mean demand; packets exceeding the cutoff are
//!   preempted and requeued, a shortest-job-first effect that protects short
//!   queries inside a batch.
//!
//! The exact definitions of the gated variants come from the unpublished
//! technical report \[HA02\]; see DESIGN.md §4 for how we reconstructed them
//! from the paper's own description of the policy search space.

use serde::Serialize;

/// A CPU scheduling policy for a staged (or thread-based) server.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub enum Policy {
    /// Quantum-based round-robin over queries (thread-based baseline).
    ProcessorSharing {
        /// Time slice per dispatch, in seconds.
        quantum: f64,
    },
    /// Run each query start-to-finish in arrival order.
    Fcfs,
    /// Cyclic module visits with exhaustive service.
    NonGated,
    /// Cyclic module visits with gated service.
    DGated,
    /// Cyclic module visits, gated, with a per-packet service cutoff of
    /// `cutoff_factor ×` the module's mean demand.
    TGated {
        /// Multiple of the module's mean demand a packet may consume per
        /// visit before being preempted and requeued.
        cutoff_factor: f64,
    },
}

/// How a staged policy forms and serves a batch during one module visit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BatchDiscipline {
    /// Serve until the queue is empty (non-gated).
    Exhaustive,
    /// Serve exactly the packets present at the start of the visit.
    Gated,
    /// Gated, but each packet gets at most `cutoff` seconds of service per
    /// visit; leftovers are requeued at the back.
    GatedCutoff {
        /// Absolute per-packet cutoff in seconds (already scaled by the
        /// module's mean demand).
        cutoff_factor: f64,
    },
}

impl Policy {
    /// Short display name matching the labels in the paper's Figure 5.
    pub fn name(&self) -> &'static str {
        match self {
            Policy::ProcessorSharing { .. } => "PS",
            Policy::Fcfs => "FCFS",
            Policy::NonGated => "non-gated",
            Policy::DGated => "D-gated",
            Policy::TGated { .. } => "T-gated",
        }
    }

    /// True for the module-centric (staged) policies.
    pub fn is_staged(&self) -> bool {
        matches!(self, Policy::NonGated | Policy::DGated | Policy::TGated { .. })
    }

    /// The batch discipline of a staged policy, `None` for PS/FCFS.
    pub fn discipline(&self) -> Option<BatchDiscipline> {
        match *self {
            Policy::NonGated => Some(BatchDiscipline::Exhaustive),
            Policy::DGated => Some(BatchDiscipline::Gated),
            Policy::TGated { cutoff_factor } => {
                Some(BatchDiscipline::GatedCutoff { cutoff_factor })
            }
            _ => None,
        }
    }

    /// The five policies evaluated in the paper's Figure 5, with the paper's
    /// parameters (PS quantum 10 ms, T-gated cutoff factor 2).
    pub fn figure5_set() -> Vec<Policy> {
        vec![
            Policy::TGated { cutoff_factor: 2.0 },
            Policy::DGated,
            Policy::NonGated,
            Policy::Fcfs,
            Policy::ProcessorSharing { quantum: 0.010 },
        ]
    }

    /// Label including parameters, e.g. `T-gated(2)`.
    pub fn label(&self) -> String {
        match self {
            Policy::TGated { cutoff_factor } => format!("T-gated({})", cutoff_factor),
            Policy::ProcessorSharing { quantum } => {
                format!("PS(q={}ms)", (quantum * 1000.0).round() as i64)
            }
            p => p.name().to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn staged_classification() {
        assert!(!Policy::Fcfs.is_staged());
        assert!(!Policy::ProcessorSharing { quantum: 0.01 }.is_staged());
        assert!(Policy::NonGated.is_staged());
        assert!(Policy::DGated.is_staged());
        assert!(Policy::TGated { cutoff_factor: 2.0 }.is_staged());
    }

    #[test]
    fn disciplines_match_policies() {
        assert_eq!(Policy::NonGated.discipline(), Some(BatchDiscipline::Exhaustive));
        assert_eq!(Policy::DGated.discipline(), Some(BatchDiscipline::Gated));
        assert_eq!(
            Policy::TGated { cutoff_factor: 2.0 }.discipline(),
            Some(BatchDiscipline::GatedCutoff { cutoff_factor: 2.0 })
        );
        assert_eq!(Policy::Fcfs.discipline(), None);
    }

    #[test]
    fn figure5_set_has_five_policies_with_paper_labels() {
        let set = Policy::figure5_set();
        assert_eq!(set.len(), 5);
        let labels: Vec<String> = set.iter().map(|p| p.label()).collect();
        assert!(labels.contains(&"T-gated(2)".to_string()));
        assert!(labels.contains(&"D-gated".to_string()));
        assert!(labels.contains(&"non-gated".to_string()));
        assert!(labels.contains(&"FCFS".to_string()));
        assert!(labels.iter().any(|l| l.starts_with("PS")));
    }
}
