//! The OS-threaded staged runtime.
//!
//! Each stage gets a bounded queue and a pool of worker threads that
//! "continuously call dequeue on the stage's queue" (§4.1.1). On a
//! multiprocessor this is the natural mapping of §5.3 — stages run in
//! parallel and the OS spreads their workers over the CPUs. Deterministic
//! single-CPU scheduling experiments use [`crate::coop`] instead.
//!
//! Workers serve the queue in **cohorts** (paper §4.2's cohort
//! scheduling): one queue visit grabs a batch of packets under a single
//! lock acquisition and processes them back to back, amortizing the
//! stage's "load time" — instruction/data cache warm-up, queue
//! synchronization, monitoring — over the whole visit. The per-stage
//! [`BatchPolicy`] picks gated, exhaustive or cutoff semantics, and the
//! cohort bound is tunable at run time ([`StagedRuntime::set_batch`],
//! self-tuning knob (b) of §4.4). DESIGN.md §11 maps these semantics onto
//! the five scheduling policies of [`crate::policy`].
//!
//! Worker pools are resizable at run time (`set_workers`), which is the
//! mechanism behind self-tuning knob (a) of §4.4: "the number of threads at
//! each stage".

use crate::error::EnqueueError;
use crate::monitor::{snapshot, StageMonitor, StageStats};
use crate::queue::{DequeuedCohort, StageQueue};
use crate::stage::{BatchPolicy, StageCtx, StageId, StageLogic, StageSpec};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Shortest wait on an empty queue before running the idle hook. An idle
/// worker parks on the queue's condvar (it is woken instantly by the next
/// enqueue); this timeout only paces the idle *hook* and the stats
/// counter, and doubles per consecutive idle wakeup up to
/// [`IDLE_POLL_MAX`] so a quiet stage stops burning wakeups.
const IDLE_POLL: Duration = Duration::from_millis(20);
/// Longest idle-hook interval the exponential backoff reaches.
const IDLE_POLL_MAX: Duration = Duration::from_millis(640);
/// How long a paused (rank ≥ target) worker sleeps between checks.
const PAUSED_POLL: Duration = Duration::from_millis(1);

pub(crate) struct StageInner<P: Send + 'static> {
    pub(crate) name: String,
    pub(crate) queue: StageQueue<P>,
    logic: Arc<dyn StageLogic<P>>,
    pub(crate) monitor: StageMonitor,
    batch: BatchPolicy,
    batch_limit: AtomicUsize,
    target_workers: AtomicUsize,
    spawned_workers: AtomicUsize,
    max_workers: usize,
}

impl<P: Send + 'static> StageInner<P> {
    /// The cohort bound a visit actually obeys: [`BatchPolicy::Single`]
    /// stages ignore the knob and always serve one packet per visit.
    fn effective_batch_limit(&self) -> usize {
        match self.batch {
            BatchPolicy::Single => 1,
            _ => self.batch_limit.load(Ordering::Relaxed),
        }
    }
}

/// Shared state between the runtime handle and its workers.
pub struct RuntimeShared<P: Send + 'static> {
    stages: Vec<StageInner<P>>,
    shutting_down: AtomicBool,
}

impl<P: Send + 'static> RuntimeShared<P> {
    pub(crate) fn stage(&self, id: StageId) -> &StageInner<P> {
        &self.stages[id]
    }

    pub(crate) fn stage_id(&self, name: &str) -> Option<StageId> {
        self.stages.iter().position(|s| s.name == name)
    }

    pub(crate) fn enqueue(&self, dest: StageId, packet: P) -> Result<(), EnqueueError<P>> {
        self.stages[dest].queue.enqueue(packet)
    }

    pub(crate) fn try_enqueue(&self, dest: StageId, packet: P) -> Result<(), EnqueueError<P>> {
        self.stages[dest].queue.try_enqueue(packet)
    }
}

/// Builder for [`StagedRuntime`].
pub struct RuntimeBuilder<P: Send + 'static> {
    specs: Vec<StageSpec<P>>,
    max_workers: usize,
}

impl<P: Send + 'static> Default for RuntimeBuilder<P> {
    fn default() -> Self {
        Self { specs: Vec::new(), max_workers: 256 }
    }
}

impl<P: Send + 'static> RuntimeBuilder<P> {
    /// Add a stage; returns its [`StageId`] (ids are assigned in call order).
    pub fn add_stage(&mut self, spec: StageSpec<P>) -> StageId {
        assert!(
            self.specs.iter().all(|s| s.name != spec.name),
            "duplicate stage name {:?}",
            spec.name
        );
        self.specs.push(spec);
        self.specs.len() - 1
    }

    /// Upper bound on workers any stage may be resized to.
    pub fn max_workers_per_stage(mut self, max: usize) -> Self {
        self.max_workers = max.max(1);
        self
    }

    /// Construct the runtime and spawn the initial worker pools.
    pub fn build(self) -> StagedRuntime<P> {
        let stages: Vec<StageInner<P>> = self
            .specs
            .into_iter()
            .map(|spec| StageInner {
                name: spec.name,
                queue: StageQueue::new(spec.queue_capacity),
                logic: spec.logic,
                monitor: StageMonitor::default(),
                batch: spec.batch,
                batch_limit: AtomicUsize::new(spec.max_cohort.max(1)),
                target_workers: AtomicUsize::new(spec.workers),
                spawned_workers: AtomicUsize::new(0),
                max_workers: self.max_workers,
            })
            .collect();
        let shared = Arc::new(RuntimeShared { stages, shutting_down: AtomicBool::new(false) });
        let runtime = StagedRuntime { shared, handles: Arc::new(Mutex::new(Vec::new())) };
        for id in 0..runtime.shared.stages.len() {
            let target = runtime.shared.stages[id].target_workers.load(Ordering::Relaxed);
            for _ in 0..target {
                runtime.spawn_worker(id);
            }
        }
        runtime
    }
}

/// A running staged server: a set of stages plus their worker threads.
///
/// Cloning yields another handle to the same runtime.
pub struct StagedRuntime<P: Send + 'static> {
    shared: Arc<RuntimeShared<P>>,
    handles: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl<P: Send + 'static> Clone for StagedRuntime<P> {
    fn clone(&self) -> Self {
        Self { shared: Arc::clone(&self.shared), handles: Arc::clone(&self.handles) }
    }
}

impl<P: Send + 'static> StagedRuntime<P> {
    /// Start building a runtime.
    pub fn builder() -> RuntimeBuilder<P> {
        RuntimeBuilder::default()
    }

    /// Number of stages.
    pub fn num_stages(&self) -> usize {
        self.shared.stages.len()
    }

    /// Resolve a stage name to its id.
    pub fn stage_id(&self, name: &str) -> Option<StageId> {
        self.shared.stage_id(name)
    }

    /// Name of a stage.
    pub fn stage_name(&self, id: StageId) -> &str {
        &self.shared.stages[id].name
    }

    /// Inject a packet into a stage from outside the pipeline (blocking under
    /// back-pressure). This is how clients submit work.
    pub fn enqueue(&self, dest: StageId, packet: P) -> Result<(), EnqueueError<P>> {
        self.shared.enqueue(dest, packet)
    }

    /// Non-blocking injection; `Full` means the server is overloaded and the
    /// caller should shed or retry (paper §5.2 overload behaviour).
    pub fn try_enqueue(&self, dest: StageId, packet: P) -> Result<(), EnqueueError<P>> {
        self.shared.try_enqueue(dest, packet)
    }

    /// Change the number of active workers of a stage (self-tuning knob a).
    ///
    /// Shrinking pauses surplus workers (they stop dequeueing); growing
    /// resumes paused workers and spawns new threads up to the configured
    /// maximum.
    pub fn set_workers(&self, stage: StageId, workers: usize) {
        let inner = &self.shared.stages[stage];
        let workers = workers.clamp(1, inner.max_workers);
        inner.target_workers.store(workers, Ordering::SeqCst);
        while inner.spawned_workers.load(Ordering::SeqCst) < workers {
            self.spawn_worker(stage);
        }
    }

    /// Current target worker count of a stage.
    pub fn workers(&self, stage: StageId) -> usize {
        self.shared.stages[stage].target_workers.load(Ordering::Relaxed)
    }

    /// Change a stage's cohort bound at run time (self-tuning knob (b) of
    /// §4.4). Takes effect on the stage's next queue visit; a
    /// [`BatchPolicy::Single`] stage ignores the bound and keeps
    /// one-at-a-time service.
    pub fn set_batch(&self, stage: StageId, max_cohort: usize) {
        self.shared.stages[stage].batch_limit.store(max_cohort.max(1), Ordering::SeqCst);
    }

    /// Current effective cohort bound of a stage (always 1 for
    /// [`BatchPolicy::Single`] stages, which ignore the knob).
    pub fn batch(&self, stage: StageId) -> usize {
        self.shared.stages[stage].effective_batch_limit()
    }

    /// The cohort policy a stage was built with.
    pub fn batch_policy(&self, stage: StageId) -> BatchPolicy {
        self.shared.stages[stage].batch
    }

    /// Snapshot statistics for every stage.
    pub fn stats(&self) -> Vec<StageStats> {
        self.shared
            .stages
            .iter()
            .enumerate()
            .map(|(id, s)| {
                snapshot(
                    &s.name,
                    id,
                    &s.monitor,
                    s.queue.stats(),
                    s.effective_batch_limit(),
                    s.target_workers.load(Ordering::Relaxed),
                    s.spawned_workers.load(Ordering::Relaxed),
                )
            })
            .collect()
    }

    /// Total queued packets across all stages.
    pub fn total_queued(&self) -> usize {
        self.shared.stages.iter().map(|s| s.queue.len()).sum()
    }

    /// Drain and stop the runtime. Stages are drained and closed in
    /// registration order (for servers this is pipeline order), so packets
    /// in flight — including producers blocked on a downstream queue under
    /// back-pressure — complete before their stage closes.
    pub fn shutdown(&self) {
        self.shared.shutting_down.store(true, Ordering::SeqCst);
        for s in &self.shared.stages {
            // Wait until nothing is queued and no worker is mid-packet; the
            // double check closes the dequeue→active-counter window.
            loop {
                let quiet = |stage: &StageInner<P>| {
                    stage.queue.is_empty()
                        && stage.monitor.active_workers.load(Ordering::SeqCst) == 0
                };
                if quiet(s) {
                    std::thread::yield_now();
                    if quiet(s) {
                        break;
                    }
                }
                std::thread::sleep(Duration::from_millis(1));
            }
            s.queue.close();
        }
        let handles: Vec<_> = self.handles.lock().drain(..).collect();
        for h in handles {
            let _ = h.join();
        }
    }

    fn spawn_worker(&self, stage: StageId) {
        let inner = &self.shared.stages[stage];
        if self.shared.shutting_down.load(Ordering::SeqCst) {
            return;
        }
        let rank = inner.spawned_workers.fetch_add(1, Ordering::SeqCst);
        let shared = Arc::clone(&self.shared);
        let name = format!("stage-{}-{rank}", inner.name);
        let handle = std::thread::Builder::new()
            .name(name)
            .spawn(move || worker_loop(shared, stage, rank))
            .expect("failed to spawn stage worker");
        self.handles.lock().push(handle);
    }
}

/// Buffered forwards are flushed once the visit has this many pending, so
/// a long visit still overlaps with its downstream stages on an SMP.
const FLUSH_THRESHOLD: usize = 8;

fn worker_loop<P: Send + 'static>(shared: Arc<RuntimeShared<P>>, stage: StageId, rank: usize) {
    let ctx = StageCtx {
        shared: &shared,
        stage_id: stage,
        outbox: Some(std::cell::RefCell::new(Vec::new())),
    };
    let mut idle_wait = IDLE_POLL;
    loop {
        let inner = shared.stage(stage);
        // Paused workers (rank beyond the current target) spin gently without
        // dequeueing; this keeps resizing race-free and cheap.
        if rank >= inner.target_workers.load(Ordering::SeqCst) {
            if inner.queue.is_closed() && inner.queue.is_empty() {
                return;
            }
            std::thread::sleep(PAUSED_POLL);
            continue;
        }
        let limit = inner.effective_batch_limit();
        match inner.queue.dequeue_batch(limit, idle_wait) {
            DequeuedCohort::Cohort(cohort) => {
                idle_wait = IDLE_POLL;
                serve_visit(inner, &ctx, cohort, limit);
            }
            DequeuedCohort::TimedOut => {
                // The worker was parked on the condvar the whole time (an
                // enqueue wakes it instantly); the timeout only paces the
                // idle hook, so back off exponentially while quiet.
                inner.monitor.record_idle_poll();
                inner.logic.on_idle(&ctx);
                flush_outbox(&shared, stage, &ctx);
                idle_wait = (idle_wait * 2).min(IDLE_POLL_MAX);
            }
            DequeuedCohort::Closed => {
                flush_outbox(&shared, stage, &ctx);
                return;
            }
        }
    }
}

/// Deliver a visit's buffered forwards: consecutive same-destination runs
/// become one batched enqueue (a single downstream lock acquisition and a
/// bounded wake-up), self-requeues rejoin this stage's queue capacity-
/// exempt. Packets bound for a closed queue (shutdown) are dropped and
/// counted as this stage's errors — the same fate a direct send's error
/// return used to record.
fn flush_outbox<P: Send + 'static>(
    shared: &Arc<RuntimeShared<P>>,
    stage: StageId,
    ctx: &StageCtx<'_, P>,
) {
    let Some(cell) = &ctx.outbox else { return };
    if cell.borrow().is_empty() {
        return;
    }
    // Take the buffer before flushing: enqueue_batch may block under
    // back-pressure and nothing may hold the borrow across that.
    let items: Vec<(StageId, P)> = cell.borrow_mut().drain(..).collect();
    let mut iter = items.into_iter().peekable();
    while let Some((dest, pkt)) = iter.next() {
        let mut run = vec![pkt];
        while iter.peek().is_some_and(|(d, _)| *d == dest) {
            run.push(iter.next().expect("peeked").1);
        }
        if dest == stage {
            shared.stage(stage).queue.requeue_back_batch(run);
        } else if let Err(dropped) = shared.stage(dest).queue.enqueue_batch(run) {
            for _ in 0..dropped {
                shared.stage(stage).monitor.record_error();
            }
        }
    }
}

/// Serve one queue visit: a cohort of packets processed back to back
/// (paper §4.2 — the batching that amortizes the stage's load time).
///
/// Exhaustive stages refill mid-visit until the queue is momentarily
/// empty; T-gated stages stop once the visit exceeds `cutoff_factor ×`
/// the stage's observed mean demand per served packet and hand the
/// unserved remainder back to the head of the queue (cutoff preemption).
/// The first packet of a visit is always served, so a visit makes
/// progress even when one packet alone overruns the budget.
fn serve_visit<P: Send + 'static>(
    inner: &StageInner<P>,
    ctx: &StageCtx<'_, P>,
    cohort: Vec<P>,
    limit: usize,
) {
    inner.monitor.active_workers.fetch_add(1, Ordering::Relaxed);
    // T-gated budget, in nanoseconds per served packet. Until the stage
    // has a demand estimate (nothing processed yet) the cutoff is moot.
    let budget_per_packet = match inner.batch {
        BatchPolicy::TGated { cutoff_factor } => {
            let processed = inner.monitor.processed();
            (processed > 0).then(|| {
                cutoff_factor.max(0.0) * inner.monitor.busy_nanos() as f64 / processed as f64
            })
        }
        _ => None,
    };
    // Timestamps are chained packet to packet: one clock read per packet
    // closes packet i and opens packet i+1, halving the per-packet timer
    // overhead of the old one-at-a-time loop. `spent_nanos` accumulates
    // only recorded service time, so flush stalls (back-pressure waits on
    // a full downstream queue) count toward neither the demand estimate
    // nor the T-gated visit budget.
    let mut last = Instant::now();
    let mut spent_nanos: u64 = 0;
    let mut served: usize = 0;
    let mut pending: std::collections::VecDeque<P> = cohort.into();
    'visit: loop {
        while let Some(p) = pending.pop_front() {
            if served > 0 {
                if let Some(bpp) = budget_per_packet {
                    if spent_nanos as f64 > bpp * served as f64 {
                        // Visit over budget: the rest of the cohort keeps
                        // its queue position for the next visit.
                        pending.push_front(p);
                        inner.queue.requeue_front_batch(pending.into_iter().collect());
                        inner.monitor.record_cutoff_preempt();
                        break 'visit;
                    }
                }
            }
            match inner.logic.process(p, ctx) {
                Ok(()) => {
                    let now = Instant::now();
                    let busy = now.duration_since(last);
                    inner.monitor.record_processed(busy);
                    spent_nanos += busy.as_nanos() as u64;
                    last = now;
                }
                Err(_) => {
                    let now = Instant::now();
                    spent_nanos += now.duration_since(last).as_nanos() as u64;
                    inner.monitor.record_error();
                    last = now;
                }
            }
            served += 1;
            // Keep downstream stages fed during long visits. The flush can
            // block under back-pressure, so the timestamp chain restarts
            // after it — queue-wait must not read as service demand.
            if ctx.outbox.as_ref().is_some_and(|o| o.borrow().len() >= FLUSH_THRESHOLD) {
                flush_outbox(ctx.shared, ctx.stage_id, ctx);
                last = Instant::now();
            }
        }
        // Non-gated service: keep draining until the queue is momentarily
        // empty. Gated variants end the visit with the gated snapshot.
        if matches!(inner.batch, BatchPolicy::Exhaustive) {
            let refill = inner.queue.try_dequeue_batch(limit);
            if refill.is_empty() {
                break;
            }
            pending = refill.into();
        } else {
            break;
        }
    }
    // Flush buffered forwards before the worker stops counting as active:
    // shutdown's quiesce check must see these packets in their queues.
    flush_outbox(ctx.shared, ctx.stage_id, ctx);
    if served > 0 {
        inner.monitor.record_cohort(served);
    }
    inner.monitor.active_workers.fetch_sub(1, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stage::StageResult;
    use std::sync::atomic::AtomicU64;
    use std::sync::mpsc;

    fn ok_stage<P: Send + 'static>(
        f: impl Fn(P, &StageCtx<'_, P>) + Send + Sync + 'static,
    ) -> impl StageLogic<P> {
        move |p: P, ctx: &StageCtx<'_, P>| -> StageResult {
            f(p, ctx);
            Ok(())
        }
    }

    #[test]
    fn two_stage_pipeline_forwards_packets() {
        let (tx, rx) = mpsc::channel::<u64>();
        let mut b = StagedRuntime::<u64>::builder();
        let first = b.add_stage(StageSpec::new(
            "double",
            |p: u64, ctx: &StageCtx<'_, u64>| -> StageResult {
                let sink = ctx.stage_id_of("sink").unwrap();
                ctx.send(sink, p * 2).map_err(|_| crate::StageError::new("send"))?;
                Ok(())
            },
        ));
        let tx2 = Mutex::new(tx);
        b.add_stage(StageSpec::new(
            "sink",
            ok_stage(move |p: u64, _ctx: &StageCtx<'_, u64>| {
                tx2.lock().send(p).unwrap();
            }),
        ));
        let rt = b.build();
        for i in 0..10 {
            rt.enqueue(first, i).unwrap();
        }
        let mut got: Vec<u64> =
            (0..10).map(|_| rx.recv_timeout(Duration::from_secs(5)).unwrap()).collect();
        got.sort_unstable();
        assert_eq!(got, (0..10).map(|i| i * 2).collect::<Vec<_>>());
        rt.shutdown();
        let stats = rt.stats();
        assert_eq!(stats[0].processed, 10);
        assert_eq!(stats[1].processed, 10);
    }

    #[test]
    fn errors_are_counted_not_fatal() {
        let mut b = StagedRuntime::<u32>::builder();
        let s = b.add_stage(StageSpec::new(
            "flaky",
            |p: u32, _ctx: &StageCtx<'_, u32>| -> StageResult {
                if p.is_multiple_of(2) {
                    Err(crate::StageError::new("even packets fail"))
                } else {
                    Ok(())
                }
            },
        ));
        let rt = b.build();
        for i in 0..8 {
            rt.enqueue(s, i).unwrap();
        }
        rt.shutdown();
        let st = &rt.stats()[0];
        assert_eq!(st.errors, 4);
        assert_eq!(st.processed, 4);
    }

    #[test]
    fn resize_workers_up_and_down() {
        let counter = Arc::new(AtomicU64::new(0));
        let c = Arc::clone(&counter);
        let mut b = StagedRuntime::<()>::builder();
        let s = b.add_stage(
            StageSpec::new(
                "busy",
                ok_stage(move |_: (), _ctx: &StageCtx<'_, ()>| {
                    c.fetch_add(1, Ordering::Relaxed);
                    std::thread::sleep(Duration::from_millis(1));
                }),
            )
            .with_workers(1)
            .with_queue_capacity(512),
        );
        let rt = b.build();
        rt.set_workers(s, 4);
        assert_eq!(rt.workers(s), 4);
        for _ in 0..64 {
            rt.enqueue(s, ()).unwrap();
        }
        rt.set_workers(s, 2);
        assert_eq!(rt.workers(s), 2);
        rt.shutdown();
        assert_eq!(counter.load(Ordering::Relaxed), 64);
    }

    #[test]
    fn shutdown_drains_pending_packets() {
        let (tx, rx) = mpsc::channel::<u32>();
        let tx = Mutex::new(tx);
        let mut b = StagedRuntime::<u32>::builder();
        let s = b.add_stage(
            StageSpec::new(
                "slow",
                ok_stage(move |p: u32, _: &StageCtx<'_, u32>| {
                    std::thread::sleep(Duration::from_millis(2));
                    tx.lock().send(p).unwrap();
                }),
            )
            .with_queue_capacity(128),
        );
        let rt = b.build();
        for i in 0..20 {
            rt.enqueue(s, i).unwrap();
        }
        rt.shutdown();
        let got: Vec<u32> = rx.try_iter().collect();
        assert_eq!(got.len(), 20, "all packets processed before shutdown returns");
    }

    #[test]
    fn idle_polls_surface_in_stats_snapshots() {
        // A worker that wakes to an empty queue must be visible in the
        // monitor: `idle_polls` is how the autotuner (and the STATS wire
        // command) see over-provisioned stages.
        let mut b = StagedRuntime::<u8>::builder();
        let s = b.add_stage(StageSpec::new("sleepy", ok_stage(|_: u8, _: &StageCtx<'_, u8>| {})));
        let rt = b.build();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while rt.stats()[s].idle_polls == 0 {
            assert!(std::time::Instant::now() < deadline, "no idle poll recorded");
            std::thread::sleep(Duration::from_millis(5));
        }
        rt.enqueue(s, 1).unwrap();
        rt.shutdown();
        let st = &rt.stats()[s];
        assert!(st.idle_polls >= 1);
        assert_eq!(st.processed, 1);
    }

    /// Helper for the cohort tests: a stage whose workers block on `hold`
    /// while it is `true`, so the test can pile up a backlog and then
    /// release one visit over all of it.
    fn held_stage(hold: Arc<AtomicBool>, tx: mpsc::Sender<u32>) -> impl StageLogic<u32> {
        let tx = Mutex::new(tx);
        move |p: u32, _: &StageCtx<'_, u32>| -> StageResult {
            while hold.load(Ordering::SeqCst) {
                std::thread::sleep(Duration::from_micros(200));
            }
            tx.lock().send(p).unwrap();
            Ok(())
        }
    }

    #[test]
    fn gated_cohorts_batch_and_preserve_fifo() {
        let hold = Arc::new(AtomicBool::new(true));
        let (tx, rx) = mpsc::channel::<u32>();
        let mut b = StagedRuntime::<u32>::builder();
        let s = b.add_stage(
            StageSpec::new("batchy", held_stage(Arc::clone(&hold), tx))
                .with_batch(BatchPolicy::DGated)
                .with_max_cohort(32)
                .with_queue_capacity(64),
        );
        let rt = b.build();
        // The first enqueue wakes the worker (visit of 1, parked on hold);
        // the rest pile up for the second visit.
        for i in 0..16 {
            rt.enqueue(s, i).unwrap();
        }
        std::thread::sleep(Duration::from_millis(30));
        hold.store(false, Ordering::SeqCst);
        let got: Vec<u32> =
            (0..16).map(|_| rx.recv_timeout(Duration::from_secs(5)).unwrap()).collect();
        assert_eq!(got, (0..16).collect::<Vec<_>>(), "FIFO across cohorts");
        rt.shutdown();
        let st = &rt.stats()[s];
        assert_eq!(st.processed, 16);
        assert!(st.max_cohort > 1, "backlog should have been served as a cohort");
        assert!(
            st.cohorts < st.processed,
            "batched visits: {} cohorts for {} packets",
            st.cohorts,
            st.processed
        );
        assert_eq!(st.batch_limit, 32);
    }

    #[test]
    fn exhaustive_visit_refills_until_empty() {
        let hold = Arc::new(AtomicBool::new(true));
        let (tx, rx) = mpsc::channel::<u32>();
        let mut b = StagedRuntime::<u32>::builder();
        let s = b.add_stage(
            StageSpec::new("nongated", held_stage(Arc::clone(&hold), tx))
                .with_batch(BatchPolicy::Exhaustive)
                .with_max_cohort(2) // refill grab size, not a visit bound
                .with_queue_capacity(64),
        );
        let rt = b.build();
        for i in 0..9 {
            rt.enqueue(s, i).unwrap();
        }
        std::thread::sleep(Duration::from_millis(30));
        hold.store(false, Ordering::SeqCst);
        let got: Vec<u32> =
            (0..9).map(|_| rx.recv_timeout(Duration::from_secs(5)).unwrap()).collect();
        assert_eq!(got, (0..9).collect::<Vec<_>>());
        rt.shutdown();
        let st = &rt.stats()[s];
        // One visit (or very few): the first grab refilled through the
        // whole backlog without returning to the condvar.
        assert!(
            st.cohorts <= 2,
            "exhaustive service should drain in one visit, got {}",
            st.cohorts
        );
    }

    #[test]
    fn tgated_cutoff_requeues_remainder_without_loss() {
        let (tx, rx) = mpsc::channel::<u32>();
        let tx = Mutex::new(tx);
        let hold = Arc::new(AtomicBool::new(false));
        let h2 = Arc::clone(&hold);
        let mut b = StagedRuntime::<u32>::builder();
        let s = b.add_stage(
            StageSpec::new("cutoff", move |p: u32, _: &StageCtx<'_, u32>| -> StageResult {
                while h2.load(Ordering::SeqCst) {
                    std::thread::sleep(Duration::from_micros(200));
                }
                // Uniform, non-trivial service demand so the mean is
                // meaningful and a tight cutoff trips mid-cohort.
                std::thread::sleep(Duration::from_millis(2));
                tx.lock().send(p).unwrap();
                Ok(())
            })
            .with_batch(BatchPolicy::TGated { cutoff_factor: 0.5 })
            .with_max_cohort(32)
            .with_queue_capacity(64),
        );
        let rt = b.build();
        // Prime the demand estimate (the first visit has no mean yet).
        rt.enqueue(s, 100).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_secs(5)).unwrap(), 100);
        // Build a backlog, then release it through cutoff-limited visits.
        hold.store(true, Ordering::SeqCst);
        for i in 0..8 {
            rt.enqueue(s, i).unwrap();
        }
        std::thread::sleep(Duration::from_millis(30));
        hold.store(false, Ordering::SeqCst);
        let got: Vec<u32> =
            (0..8).map(|_| rx.recv_timeout(Duration::from_secs(5)).unwrap()).collect();
        assert_eq!(got, (0..8).collect::<Vec<_>>(), "cutoff must not lose or reorder packets");
        rt.shutdown();
        let st = &rt.stats()[s];
        assert_eq!(st.processed, 9);
        assert!(
            st.cutoff_preempts >= 1,
            "a 0.5× cutoff over 2ms packets must preempt at least once"
        );
    }

    #[test]
    fn shutdown_drains_partial_cohort_in_flight() {
        // The whole backlog fits one cohort, so the instant shutdown is
        // called the queue is empty but the worker holds every packet in
        // hand: shutdown must wait for the visit, not close under it.
        let (tx, rx) = mpsc::channel::<u32>();
        let tx = Mutex::new(tx);
        let mut b = StagedRuntime::<u32>::builder();
        let s = b.add_stage(
            StageSpec::new("slowcohort", move |p: u32, _: &StageCtx<'_, u32>| -> StageResult {
                std::thread::sleep(Duration::from_millis(3));
                tx.lock().send(p).unwrap();
                Ok(())
            })
            .with_batch(BatchPolicy::DGated)
            .with_max_cohort(16)
            .with_queue_capacity(64),
        );
        let rt = b.build();
        for i in 0..10 {
            rt.enqueue(s, i).unwrap();
        }
        rt.shutdown();
        let got: Vec<u32> = rx.try_iter().collect();
        assert_eq!(got.len(), 10, "shutdown must drain the in-flight cohort");
    }

    #[test]
    fn set_batch_bounds_the_next_visit() {
        let hold = Arc::new(AtomicBool::new(true));
        let (tx, rx) = mpsc::channel::<u32>();
        let mut b = StagedRuntime::<u32>::builder();
        let s = b.add_stage(
            StageSpec::new("knobbed", held_stage(Arc::clone(&hold), tx))
                .with_batch(BatchPolicy::DGated)
                .with_max_cohort(32)
                .with_queue_capacity(64),
        );
        let rt = b.build();
        rt.set_batch(s, 4);
        assert_eq!(rt.batch(s), 4);
        // The parked worker may still hold the limit it read before
        // set_batch (the knob binds at the *next* visit), so let the first
        // visit take exactly one packet before building the backlog.
        rt.enqueue(s, 0).unwrap();
        std::thread::sleep(Duration::from_millis(30));
        for i in 1..13 {
            rt.enqueue(s, i).unwrap();
        }
        hold.store(false, Ordering::SeqCst);
        for i in 0..13 {
            assert_eq!(rx.recv_timeout(Duration::from_secs(5)).unwrap(), i);
        }
        rt.shutdown();
        let st = &rt.stats()[s];
        assert!(st.max_cohort <= 4, "visits must respect the run-time bound");
        assert_eq!(st.batch_limit, 4);
    }

    #[test]
    fn idle_workers_back_off_exponentially() {
        // Regression for the fixed 20 ms poll: an idle stage used to burn
        // ~50 idle polls per second forever. With exponential backoff the
        // poll interval doubles to a cap, so 1.5 s of quiet costs a
        // handful of polls, while a late enqueue is still served promptly
        // (workers park on the queue condvar; the timeout only paces the
        // idle hook).
        let mut b = StagedRuntime::<u8>::builder();
        let s = b.add_stage(StageSpec::new("quiet", ok_stage(|_: u8, _: &StageCtx<'_, u8>| {})));
        let rt = b.build();
        std::thread::sleep(Duration::from_millis(1500));
        let idle = rt.stats()[s].idle_polls;
        assert!(idle >= 1, "the idle hook must still run");
        assert!(
            idle <= 12,
            "idle polls must back off: got {idle} in 1.5s (fixed 20ms polling would give ~75)"
        );
        // A packet after a long quiet spell is picked up immediately.
        let start = Instant::now();
        rt.enqueue(s, 1).unwrap();
        let deadline = Instant::now() + Duration::from_secs(2);
        while rt.stats()[s].processed == 0 {
            assert!(Instant::now() < deadline, "packet not served after idle backoff");
            std::thread::sleep(Duration::from_millis(1));
        }
        assert!(
            start.elapsed() < Duration::from_millis(250),
            "condvar wakeup must not wait out the backed-off poll interval"
        );
        rt.shutdown();
    }

    #[test]
    fn requeue_back_retries_later() {
        // A packet that isn't ready the first time goes to the back of the
        // queue and is processed on a later dequeue (paper case iii).
        let (tx, rx) = mpsc::channel::<u32>();
        let tx = Mutex::new(tx);
        let attempts = Arc::new(AtomicU64::new(0));
        let at = Arc::clone(&attempts);
        let mut b = StagedRuntime::<u32>::builder();
        let s = b.add_stage(StageSpec::new(
            "retry",
            move |p: u32, ctx: &StageCtx<'_, u32>| -> StageResult {
                if at.fetch_add(1, Ordering::SeqCst) == 0 {
                    ctx.requeue_back(p).map_err(|_| crate::StageError::new("requeue"))?;
                } else {
                    tx.lock().send(p).unwrap();
                }
                Ok(())
            },
        ));
        let rt = b.build();
        rt.enqueue(s, 99).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_secs(5)).unwrap(), 99);
        rt.shutdown();
        assert!(attempts.load(Ordering::SeqCst) >= 2);
    }
}
