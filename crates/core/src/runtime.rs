//! The OS-threaded staged runtime.
//!
//! Each stage gets a bounded queue and a pool of worker threads that
//! "continuously call dequeue on the stage's queue" (§4.1.1). On a
//! multiprocessor this is the natural mapping of §5.3 — stages run in
//! parallel and the OS spreads their workers over the CPUs. Deterministic
//! single-CPU scheduling experiments use [`crate::coop`] instead.
//!
//! Worker pools are resizable at run time (`set_workers`), which is the
//! mechanism behind self-tuning knob (a) of §4.4: "the number of threads at
//! each stage".

use crate::error::EnqueueError;
use crate::monitor::{snapshot, StageMonitor, StageStats};
use crate::queue::{Dequeued, StageQueue};
use crate::stage::{StageCtx, StageId, StageLogic, StageSpec};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How long a worker waits on an empty queue before running the idle hook.
const IDLE_POLL: Duration = Duration::from_millis(20);
/// How long a paused (rank ≥ target) worker sleeps between checks.
const PAUSED_POLL: Duration = Duration::from_millis(1);

pub(crate) struct StageInner<P: Send + 'static> {
    pub(crate) name: String,
    pub(crate) queue: StageQueue<P>,
    logic: Arc<dyn StageLogic<P>>,
    pub(crate) monitor: StageMonitor,
    target_workers: AtomicUsize,
    spawned_workers: AtomicUsize,
    max_workers: usize,
}

/// Shared state between the runtime handle and its workers.
pub struct RuntimeShared<P: Send + 'static> {
    stages: Vec<StageInner<P>>,
    shutting_down: AtomicBool,
}

impl<P: Send + 'static> RuntimeShared<P> {
    pub(crate) fn stage(&self, id: StageId) -> &StageInner<P> {
        &self.stages[id]
    }

    pub(crate) fn stage_id(&self, name: &str) -> Option<StageId> {
        self.stages.iter().position(|s| s.name == name)
    }

    pub(crate) fn enqueue(&self, dest: StageId, packet: P) -> Result<(), EnqueueError<P>> {
        self.stages[dest].queue.enqueue(packet)
    }

    pub(crate) fn try_enqueue(&self, dest: StageId, packet: P) -> Result<(), EnqueueError<P>> {
        self.stages[dest].queue.try_enqueue(packet)
    }
}

/// Builder for [`StagedRuntime`].
pub struct RuntimeBuilder<P: Send + 'static> {
    specs: Vec<StageSpec<P>>,
    max_workers: usize,
}

impl<P: Send + 'static> Default for RuntimeBuilder<P> {
    fn default() -> Self {
        Self { specs: Vec::new(), max_workers: 256 }
    }
}

impl<P: Send + 'static> RuntimeBuilder<P> {
    /// Add a stage; returns its [`StageId`] (ids are assigned in call order).
    pub fn add_stage(&mut self, spec: StageSpec<P>) -> StageId {
        assert!(
            self.specs.iter().all(|s| s.name != spec.name),
            "duplicate stage name {:?}",
            spec.name
        );
        self.specs.push(spec);
        self.specs.len() - 1
    }

    /// Upper bound on workers any stage may be resized to.
    pub fn max_workers_per_stage(mut self, max: usize) -> Self {
        self.max_workers = max.max(1);
        self
    }

    /// Construct the runtime and spawn the initial worker pools.
    pub fn build(self) -> StagedRuntime<P> {
        let stages: Vec<StageInner<P>> = self
            .specs
            .into_iter()
            .map(|spec| StageInner {
                name: spec.name,
                queue: StageQueue::new(spec.queue_capacity),
                logic: spec.logic,
                monitor: StageMonitor::default(),
                target_workers: AtomicUsize::new(spec.workers),
                spawned_workers: AtomicUsize::new(0),
                max_workers: self.max_workers,
            })
            .collect();
        let shared = Arc::new(RuntimeShared { stages, shutting_down: AtomicBool::new(false) });
        let runtime = StagedRuntime { shared, handles: Arc::new(Mutex::new(Vec::new())) };
        for id in 0..runtime.shared.stages.len() {
            let target = runtime.shared.stages[id].target_workers.load(Ordering::Relaxed);
            for _ in 0..target {
                runtime.spawn_worker(id);
            }
        }
        runtime
    }
}

/// A running staged server: a set of stages plus their worker threads.
///
/// Cloning yields another handle to the same runtime.
pub struct StagedRuntime<P: Send + 'static> {
    shared: Arc<RuntimeShared<P>>,
    handles: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl<P: Send + 'static> Clone for StagedRuntime<P> {
    fn clone(&self) -> Self {
        Self { shared: Arc::clone(&self.shared), handles: Arc::clone(&self.handles) }
    }
}

impl<P: Send + 'static> StagedRuntime<P> {
    /// Start building a runtime.
    pub fn builder() -> RuntimeBuilder<P> {
        RuntimeBuilder::default()
    }

    /// Number of stages.
    pub fn num_stages(&self) -> usize {
        self.shared.stages.len()
    }

    /// Resolve a stage name to its id.
    pub fn stage_id(&self, name: &str) -> Option<StageId> {
        self.shared.stage_id(name)
    }

    /// Name of a stage.
    pub fn stage_name(&self, id: StageId) -> &str {
        &self.shared.stages[id].name
    }

    /// Inject a packet into a stage from outside the pipeline (blocking under
    /// back-pressure). This is how clients submit work.
    pub fn enqueue(&self, dest: StageId, packet: P) -> Result<(), EnqueueError<P>> {
        self.shared.enqueue(dest, packet)
    }

    /// Non-blocking injection; `Full` means the server is overloaded and the
    /// caller should shed or retry (paper §5.2 overload behaviour).
    pub fn try_enqueue(&self, dest: StageId, packet: P) -> Result<(), EnqueueError<P>> {
        self.shared.try_enqueue(dest, packet)
    }

    /// Change the number of active workers of a stage (self-tuning knob a).
    ///
    /// Shrinking pauses surplus workers (they stop dequeueing); growing
    /// resumes paused workers and spawns new threads up to the configured
    /// maximum.
    pub fn set_workers(&self, stage: StageId, workers: usize) {
        let inner = &self.shared.stages[stage];
        let workers = workers.clamp(1, inner.max_workers);
        inner.target_workers.store(workers, Ordering::SeqCst);
        while inner.spawned_workers.load(Ordering::SeqCst) < workers {
            self.spawn_worker(stage);
        }
    }

    /// Current target worker count of a stage.
    pub fn workers(&self, stage: StageId) -> usize {
        self.shared.stages[stage].target_workers.load(Ordering::Relaxed)
    }

    /// Snapshot statistics for every stage.
    pub fn stats(&self) -> Vec<StageStats> {
        self.shared
            .stages
            .iter()
            .enumerate()
            .map(|(id, s)| {
                snapshot(
                    &s.name,
                    id,
                    &s.monitor,
                    s.queue.stats(),
                    s.target_workers.load(Ordering::Relaxed),
                    s.spawned_workers.load(Ordering::Relaxed),
                )
            })
            .collect()
    }

    /// Total queued packets across all stages.
    pub fn total_queued(&self) -> usize {
        self.shared.stages.iter().map(|s| s.queue.len()).sum()
    }

    /// Drain and stop the runtime. Stages are drained and closed in
    /// registration order (for servers this is pipeline order), so packets
    /// in flight — including producers blocked on a downstream queue under
    /// back-pressure — complete before their stage closes.
    pub fn shutdown(&self) {
        self.shared.shutting_down.store(true, Ordering::SeqCst);
        for s in &self.shared.stages {
            // Wait until nothing is queued and no worker is mid-packet; the
            // double check closes the dequeue→active-counter window.
            loop {
                let quiet = |stage: &StageInner<P>| {
                    stage.queue.is_empty()
                        && stage.monitor.active_workers.load(Ordering::SeqCst) == 0
                };
                if quiet(s) {
                    std::thread::yield_now();
                    if quiet(s) {
                        break;
                    }
                }
                std::thread::sleep(Duration::from_millis(1));
            }
            s.queue.close();
        }
        let handles: Vec<_> = self.handles.lock().drain(..).collect();
        for h in handles {
            let _ = h.join();
        }
    }

    fn spawn_worker(&self, stage: StageId) {
        let inner = &self.shared.stages[stage];
        if self.shared.shutting_down.load(Ordering::SeqCst) {
            return;
        }
        let rank = inner.spawned_workers.fetch_add(1, Ordering::SeqCst);
        let shared = Arc::clone(&self.shared);
        let name = format!("stage-{}-{rank}", inner.name);
        let handle = std::thread::Builder::new()
            .name(name)
            .spawn(move || worker_loop(shared, stage, rank))
            .expect("failed to spawn stage worker");
        self.handles.lock().push(handle);
    }
}

fn worker_loop<P: Send + 'static>(shared: Arc<RuntimeShared<P>>, stage: StageId, rank: usize) {
    let ctx = StageCtx { shared: &shared, stage_id: stage };
    loop {
        let inner = shared.stage(stage);
        // Paused workers (rank beyond the current target) spin gently without
        // dequeueing; this keeps resizing race-free and cheap.
        if rank >= inner.target_workers.load(Ordering::SeqCst) {
            if inner.queue.is_closed() && inner.queue.is_empty() {
                return;
            }
            std::thread::sleep(PAUSED_POLL);
            continue;
        }
        match inner.queue.dequeue_timeout(IDLE_POLL) {
            Dequeued::Packet(p) => {
                inner.monitor.active_workers.fetch_add(1, Ordering::Relaxed);
                let start = Instant::now();
                match inner.logic.process(p, &ctx) {
                    Ok(()) => inner.monitor.record_processed(start.elapsed()),
                    Err(_) => inner.monitor.record_error(),
                }
                inner.monitor.active_workers.fetch_sub(1, Ordering::Relaxed);
            }
            Dequeued::TimedOut => {
                inner.monitor.record_idle_poll();
                inner.logic.on_idle(&ctx);
            }
            Dequeued::Closed => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stage::StageResult;
    use std::sync::atomic::AtomicU64;
    use std::sync::mpsc;

    fn ok_stage<P: Send + 'static>(
        f: impl Fn(P, &StageCtx<'_, P>) + Send + Sync + 'static,
    ) -> impl StageLogic<P> {
        move |p: P, ctx: &StageCtx<'_, P>| -> StageResult {
            f(p, ctx);
            Ok(())
        }
    }

    #[test]
    fn two_stage_pipeline_forwards_packets() {
        let (tx, rx) = mpsc::channel::<u64>();
        let mut b = StagedRuntime::<u64>::builder();
        let first = b.add_stage(StageSpec::new(
            "double",
            |p: u64, ctx: &StageCtx<'_, u64>| -> StageResult {
                let sink = ctx.stage_id_of("sink").unwrap();
                ctx.send(sink, p * 2).map_err(|_| crate::StageError::new("send"))?;
                Ok(())
            },
        ));
        let tx2 = Mutex::new(tx);
        b.add_stage(StageSpec::new(
            "sink",
            ok_stage(move |p: u64, _ctx: &StageCtx<'_, u64>| {
                tx2.lock().send(p).unwrap();
            }),
        ));
        let rt = b.build();
        for i in 0..10 {
            rt.enqueue(first, i).unwrap();
        }
        let mut got: Vec<u64> =
            (0..10).map(|_| rx.recv_timeout(Duration::from_secs(5)).unwrap()).collect();
        got.sort_unstable();
        assert_eq!(got, (0..10).map(|i| i * 2).collect::<Vec<_>>());
        rt.shutdown();
        let stats = rt.stats();
        assert_eq!(stats[0].processed, 10);
        assert_eq!(stats[1].processed, 10);
    }

    #[test]
    fn errors_are_counted_not_fatal() {
        let mut b = StagedRuntime::<u32>::builder();
        let s = b.add_stage(StageSpec::new(
            "flaky",
            |p: u32, _ctx: &StageCtx<'_, u32>| -> StageResult {
                if p.is_multiple_of(2) {
                    Err(crate::StageError::new("even packets fail"))
                } else {
                    Ok(())
                }
            },
        ));
        let rt = b.build();
        for i in 0..8 {
            rt.enqueue(s, i).unwrap();
        }
        rt.shutdown();
        let st = &rt.stats()[0];
        assert_eq!(st.errors, 4);
        assert_eq!(st.processed, 4);
    }

    #[test]
    fn resize_workers_up_and_down() {
        let counter = Arc::new(AtomicU64::new(0));
        let c = Arc::clone(&counter);
        let mut b = StagedRuntime::<()>::builder();
        let s = b.add_stage(
            StageSpec::new(
                "busy",
                ok_stage(move |_: (), _ctx: &StageCtx<'_, ()>| {
                    c.fetch_add(1, Ordering::Relaxed);
                    std::thread::sleep(Duration::from_millis(1));
                }),
            )
            .with_workers(1)
            .with_queue_capacity(512),
        );
        let rt = b.build();
        rt.set_workers(s, 4);
        assert_eq!(rt.workers(s), 4);
        for _ in 0..64 {
            rt.enqueue(s, ()).unwrap();
        }
        rt.set_workers(s, 2);
        assert_eq!(rt.workers(s), 2);
        rt.shutdown();
        assert_eq!(counter.load(Ordering::Relaxed), 64);
    }

    #[test]
    fn shutdown_drains_pending_packets() {
        let (tx, rx) = mpsc::channel::<u32>();
        let tx = Mutex::new(tx);
        let mut b = StagedRuntime::<u32>::builder();
        let s = b.add_stage(
            StageSpec::new(
                "slow",
                ok_stage(move |p: u32, _: &StageCtx<'_, u32>| {
                    std::thread::sleep(Duration::from_millis(2));
                    tx.lock().send(p).unwrap();
                }),
            )
            .with_queue_capacity(128),
        );
        let rt = b.build();
        for i in 0..20 {
            rt.enqueue(s, i).unwrap();
        }
        rt.shutdown();
        let got: Vec<u32> = rx.try_iter().collect();
        assert_eq!(got.len(), 20, "all packets processed before shutdown returns");
    }

    #[test]
    fn idle_polls_surface_in_stats_snapshots() {
        // A worker that wakes to an empty queue must be visible in the
        // monitor: `idle_polls` is how the autotuner (and the STATS wire
        // command) see over-provisioned stages.
        let mut b = StagedRuntime::<u8>::builder();
        let s = b.add_stage(StageSpec::new("sleepy", ok_stage(|_: u8, _: &StageCtx<'_, u8>| {})));
        let rt = b.build();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while rt.stats()[s].idle_polls == 0 {
            assert!(std::time::Instant::now() < deadline, "no idle poll recorded");
            std::thread::sleep(Duration::from_millis(5));
        }
        rt.enqueue(s, 1).unwrap();
        rt.shutdown();
        let st = &rt.stats()[s];
        assert!(st.idle_polls >= 1);
        assert_eq!(st.processed, 1);
    }

    #[test]
    fn requeue_back_retries_later() {
        // A packet that isn't ready the first time goes to the back of the
        // queue and is processed on a later dequeue (paper case iii).
        let (tx, rx) = mpsc::channel::<u32>();
        let tx = Mutex::new(tx);
        let attempts = Arc::new(AtomicU64::new(0));
        let at = Arc::clone(&attempts);
        let mut b = StagedRuntime::<u32>::builder();
        let s = b.add_stage(StageSpec::new(
            "retry",
            move |p: u32, ctx: &StageCtx<'_, u32>| -> StageResult {
                if at.fetch_add(1, Ordering::SeqCst) == 0 {
                    ctx.requeue_back(p).map_err(|_| crate::StageError::new("requeue"))?;
                } else {
                    tx.lock().send(p).unwrap();
                }
                Ok(())
            },
        ));
        let rt = b.build();
        rt.enqueue(s, 99).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_secs(5)).unwrap(), 99);
        rt.shutdown();
        assert!(attempts.load(Ordering::SeqCst) >= 2);
    }
}
