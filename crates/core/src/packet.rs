//! Packets: the unit of work exchanged between stages.
//!
//! The paper (§4.1, Figure 3) sketches
//! `class packet { clientInfo, queryInfo, routeInfo }`: a packet represents
//! the work the server must perform for a specific query at a given stage and
//! carries the query's state and private data — its *backpack*. In a
//! shared-memory system the backpack holds (pointers to) state kept in a
//! single copy, which is exactly what a Rust owned value gives us.

use crate::stage::StageId;

/// Identifier of a client query; the "first-class citizen" of the design.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct QueryId(pub u64);

impl std::fmt::Display for QueryId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "q{}", self.0)
    }
}

/// Per-client connection information carried by every packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ClientInfo {
    /// Connection identifier assigned by the connect stage.
    pub client_id: u64,
    /// Scheduling priority (higher runs first where a stage honours it).
    pub priority: u8,
}

/// The route a packet follows through the pipeline.
///
/// Queries "enter stages according to their needs" (§4.1): a precompiled
/// query routes itself from connect directly to execute, a DDL statement
/// bypasses the optimizer, and so on. `RouteInfo` is that self-routing
/// capability: an explicit list of hops plus a cursor.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RouteInfo {
    hops: Vec<StageId>,
    next: usize,
}

impl RouteInfo {
    /// A route visiting the given stages in order.
    pub fn through(hops: Vec<StageId>) -> Self {
        Self { hops, next: 0 }
    }

    /// Advance to the next hop, returning it, or `None` at the end of the
    /// route.
    pub fn advance(&mut self) -> Option<StageId> {
        let hop = self.hops.get(self.next).copied();
        if hop.is_some() {
            self.next += 1;
        }
        hop
    }

    /// Peek at the next hop without consuming it.
    pub fn peek(&self) -> Option<StageId> {
        self.hops.get(self.next).copied()
    }

    /// Remaining number of hops (including the next one).
    pub fn remaining(&self) -> usize {
        self.hops.len() - self.next
    }

    /// Insert an extra hop right after the current position (used when a
    /// stage decides the query needs additional processing, e.g. re-routing
    /// an important transaction through a sophisticated recovery module,
    /// paper §5.2).
    pub fn detour(&mut self, stage: StageId) {
        self.hops.insert(self.next, stage);
    }
}

/// A packet: query id + client info + route + the query's backpack.
///
/// `B` is the backpack type chosen by the embedding application (the DBMS
/// uses an enum covering parse/optimize/execute state).
#[derive(Debug)]
pub struct Packet<B> {
    /// The query this work belongs to.
    pub query: QueryId,
    /// Client/connection info.
    pub client: ClientInfo,
    /// Self-routing information.
    pub route: RouteInfo,
    /// The query's state and private data.
    pub backpack: B,
}

impl<B> Packet<B> {
    /// Build a packet for `query` carrying `backpack` along `route`.
    pub fn new(query: QueryId, client: ClientInfo, route: RouteInfo, backpack: B) -> Self {
        Self { query, client, route, backpack }
    }

    /// Replace the backpack, keeping identity and route (used when a stage
    /// transforms the query's state wholesale, e.g. parse → AST).
    pub fn with_backpack<C>(self, backpack: C) -> Packet<C> {
        Packet { query: self.query, client: self.client, route: self.route, backpack }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn route_advances_in_order() {
        let mut r = RouteInfo::through(vec![2, 5, 7]);
        assert_eq!(r.remaining(), 3);
        assert_eq!(r.advance(), Some(2));
        assert_eq!(r.peek(), Some(5));
        assert_eq!(r.advance(), Some(5));
        assert_eq!(r.advance(), Some(7));
        assert_eq!(r.advance(), None);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn route_detour_inserts_before_next_hop() {
        let mut r = RouteInfo::through(vec![1, 3]);
        assert_eq!(r.advance(), Some(1));
        r.detour(9);
        assert_eq!(r.advance(), Some(9));
        assert_eq!(r.advance(), Some(3));
        assert_eq!(r.advance(), None);
    }

    #[test]
    fn packet_backpack_swap_preserves_identity() {
        let p = Packet::new(QueryId(7), ClientInfo::default(), RouteInfo::default(), "sql");
        let p2 = p.with_backpack(42u32);
        assert_eq!(p2.query, QueryId(7));
        assert_eq!(p2.backpack, 42);
    }

    #[test]
    fn empty_route_has_no_hops() {
        let mut r = RouteInfo::default();
        assert_eq!(r.peek(), None);
        assert_eq!(r.advance(), None);
    }
}
