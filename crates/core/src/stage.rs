//! The stage abstraction: "an independent server with its own queue, thread
//! support, and resource management that communicates and interacts with the
//! other stages through a well-defined interface" (paper §4.1).

use crate::error::{EnqueueError, StageError};
use crate::runtime::RuntimeShared;
use std::sync::Arc;

/// Index of a stage inside a runtime. Stable for the runtime's lifetime.
pub type StageId = usize;

/// Outcome of processing one packet; mirrors the three cases of §4.1.1.
///
/// The stage code returns by either (i) destroying the packet, (ii)
/// forwarding it to another stage, or (iii) enqueueing it back into the same
/// stage's queue. Cases (ii) and (iii) are performed through [`StageCtx`];
/// the return value only signals success for monitoring purposes.
pub type StageResult = Result<(), StageError>;

/// The stage-specific server code, "contained within dequeue" (§4.1.1).
///
/// Implementations must be `Send + Sync` because a stage runs a pool of
/// worker threads over shared logic; per-query state belongs in the packet's
/// backpack, per-stage state behind interior mutability inside the logic —
/// this is precisely the paper's "each stage exclusively owns data structures
/// and sources".
pub trait StageLogic<P: Send + 'static>: Send + Sync + 'static {
    /// Process one packet. Forward work with [`StageCtx::send`], requeue with
    /// [`StageCtx::requeue`], or drop the packet to destroy it.
    fn process(&self, packet: P, ctx: &StageCtx<'_, P>) -> StageResult;

    /// Called when a worker finds the queue empty (after a poll timeout).
    /// Stages use this for housekeeping (flushing buffers, tuning).
    fn on_idle(&self, _ctx: &StageCtx<'_, P>) {}
}

/// Blanket impl so plain closures can act as stages in tests and examples.
impl<P, F> StageLogic<P> for F
where
    P: Send + 'static,
    F: Fn(P, &StageCtx<'_, P>) -> StageResult + Send + Sync + 'static,
{
    fn process(&self, packet: P, ctx: &StageCtx<'_, P>) -> StageResult {
        self(packet, ctx)
    }
}

/// Static description of a stage, handed to the runtime builder.
pub struct StageSpec<P: Send + 'static> {
    /// Stage name (unique within a runtime).
    pub name: String,
    /// The stage's server code.
    pub logic: Arc<dyn StageLogic<P>>,
    /// Capacity of the incoming packet queue.
    pub queue_capacity: usize,
    /// Initial number of worker threads.
    pub workers: usize,
}

impl<P: Send + 'static> StageSpec<P> {
    /// A spec with the given name and logic, queue capacity 64, 1 worker.
    pub fn new(name: impl Into<String>, logic: impl StageLogic<P>) -> Self {
        Self { name: name.into(), logic: Arc::new(logic), queue_capacity: 64, workers: 1 }
    }

    /// Set the queue capacity.
    pub fn with_queue_capacity(mut self, cap: usize) -> Self {
        self.queue_capacity = cap;
        self
    }

    /// Set the initial worker count.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }
}

/// Handle a stage uses to interact with the rest of the pipeline while
/// processing a packet.
pub struct StageCtx<'a, P: Send + 'static> {
    pub(crate) shared: &'a Arc<RuntimeShared<P>>,
    /// The stage this context belongs to.
    pub stage_id: StageId,
}

impl<'a, P: Send + 'static> StageCtx<'a, P> {
    /// Forward a packet to another stage, blocking under back-pressure.
    pub fn send(&self, dest: StageId, packet: P) -> Result<(), EnqueueError<P>> {
        self.shared.enqueue(dest, packet)
    }

    /// Forward without blocking (overload paths use this to shed load).
    pub fn try_send(&self, dest: StageId, packet: P) -> Result<(), EnqueueError<P>> {
        self.shared.try_enqueue(dest, packet)
    }

    /// Put a packet back into this stage's own queue (paper case iii: "there
    /// is more work but the client needs to wait on some condition").
    pub fn requeue(&self, packet: P) -> Result<(), EnqueueError<P>> {
        self.shared.stage(self.stage_id).queue.enqueue_front(packet)
    }

    /// Put a packet at the back of this stage's own queue (round-robin style
    /// yield used by the staged execution engine when an output buffer is
    /// full or input is empty, §4.3).
    pub fn requeue_back(&self, packet: P) -> Result<(), EnqueueError<P>> {
        self.shared.enqueue(self.stage_id, packet)
    }

    /// Look up a stage id by name.
    pub fn stage_id_of(&self, name: &str) -> Option<StageId> {
        self.shared.stage_id(name)
    }

    /// Depth of some stage's queue (used by routing decisions and tuning).
    pub fn queue_depth(&self, stage: StageId) -> usize {
        self.shared.stage(stage).queue.len()
    }

    /// Report time this worker spent blocked on I/O while processing the
    /// current packet. Feeds the per-stage monitor so the autotuner can size
    /// the pool by I/O frequency (§5.1(1)).
    pub fn record_io_blocked(&self, blocked: std::time::Duration) {
        self.shared.stage(self.stage_id).monitor.record_io_blocked(blocked);
    }

    /// Report that the current packet was requeued to wait on a condition
    /// (case iii of §4.1.1). The lock-manager stage calls this on every
    /// conflict-requeue, so `StageStats::retries` exposes lock contention.
    pub fn record_retry(&self) {
        self.shared.stage(self.stage_id).monitor.record_retry();
    }
}
