//! The stage abstraction: "an independent server with its own queue, thread
//! support, and resource management that communicates and interacts with the
//! other stages through a well-defined interface" (paper §4.1).

use crate::error::{EnqueueError, StageError};
use crate::policy::{BatchDiscipline, Policy};
use crate::runtime::RuntimeShared;
use std::cell::RefCell;
use std::sync::Arc;

/// Index of a stage inside a runtime. Stable for the runtime's lifetime.
pub type StageId = usize;

/// How a production stage's workers form *cohorts* — the batches of packets
/// served during one queue visit (paper §4.2: cohort scheduling amortizes
/// the module "load time" over a whole visit).
///
/// This is the OS-threaded runtime's rendering of the gated-service
/// vocabulary of [`crate::policy`]: the three staged policies map onto the
/// three batched variants, while the two thread-centric policies (PS, FCFS)
/// have no module-affine batch to speak of and map onto [`Single`]
/// (see [`BatchPolicy::from`]). DESIGN.md §11 documents where the
/// production semantics intentionally diverge from the simulator's.
///
/// [`Single`]: BatchPolicy::Single
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BatchPolicy {
    /// One packet per visit — the pre-cohort semantics. Kept by stages
    /// whose correctness or fairness depends on not holding packets
    /// outside the queue (the server's `net` admission stage, whose queue
    /// bound *is* the admission limit, and the `lock` stage, whose
    /// conflict-retry sleep would stall cohort-mates).
    Single,
    /// Non-gated (exhaustive) service: the visit keeps refilling from the
    /// queue, a cohort-bound packets at a time, until it finds the queue
    /// momentarily empty.
    Exhaustive,
    /// Gated service: the visit serves only the packets already queued
    /// when it starts (up to the cohort bound); later arrivals wait for
    /// the next visit.
    DGated,
    /// Gated service with a visit *cutoff* of `cutoff_factor ×` the
    /// stage's mean per-packet demand, pro-rated over the packets served
    /// so far. A worker cannot preempt OS-threaded stage code mid-packet,
    /// so — unlike the simulator's T-gated(k), which requeues the long
    /// packet itself — the overrunning packet completes and the *unserved
    /// remainder* of the cohort is returned to the head of the queue,
    /// recording a cutoff preemption.
    TGated {
        /// Multiple of the stage's observed mean demand each served
        /// packet contributes to the visit budget.
        cutoff_factor: f64,
    },
}

impl From<Policy> for BatchPolicy {
    /// Map the §4.2 scheduling vocabulary onto production cohort
    /// semantics. The staged policies carry their discipline over; PS and
    /// FCFS describe thread-centric servers with no per-module batching,
    /// so they degrade to one-at-a-time service.
    fn from(p: Policy) -> Self {
        match p.discipline() {
            Some(BatchDiscipline::Exhaustive) => BatchPolicy::Exhaustive,
            Some(BatchDiscipline::Gated) => BatchPolicy::DGated,
            Some(BatchDiscipline::GatedCutoff { cutoff_factor }) => {
                BatchPolicy::TGated { cutoff_factor }
            }
            None => BatchPolicy::Single,
        }
    }
}

/// Outcome of processing one packet; mirrors the three cases of §4.1.1.
///
/// The stage code returns by either (i) destroying the packet, (ii)
/// forwarding it to another stage, or (iii) enqueueing it back into the same
/// stage's queue. Cases (ii) and (iii) are performed through [`StageCtx`];
/// the return value only signals success for monitoring purposes.
pub type StageResult = Result<(), StageError>;

/// The stage-specific server code, "contained within dequeue" (§4.1.1).
///
/// Implementations must be `Send + Sync` because a stage runs a pool of
/// worker threads over shared logic; per-query state belongs in the packet's
/// backpack, per-stage state behind interior mutability inside the logic —
/// this is precisely the paper's "each stage exclusively owns data structures
/// and sources".
pub trait StageLogic<P: Send + 'static>: Send + Sync + 'static {
    /// Process one packet. Forward work with [`StageCtx::send`], requeue with
    /// [`StageCtx::requeue`], or drop the packet to destroy it.
    fn process(&self, packet: P, ctx: &StageCtx<'_, P>) -> StageResult;

    /// Called when a worker finds the queue empty (after a poll timeout).
    /// Stages use this for housekeeping (flushing buffers, tuning).
    fn on_idle(&self, _ctx: &StageCtx<'_, P>) {}
}

/// Blanket impl so plain closures can act as stages in tests and examples.
impl<P, F> StageLogic<P> for F
where
    P: Send + 'static,
    F: Fn(P, &StageCtx<'_, P>) -> StageResult + Send + Sync + 'static,
{
    fn process(&self, packet: P, ctx: &StageCtx<'_, P>) -> StageResult {
        self(packet, ctx)
    }
}

/// Static description of a stage, handed to the runtime builder.
pub struct StageSpec<P: Send + 'static> {
    /// Stage name (unique within a runtime).
    pub name: String,
    /// The stage's server code.
    pub logic: Arc<dyn StageLogic<P>>,
    /// Capacity of the incoming packet queue.
    pub queue_capacity: usize,
    /// Initial number of worker threads.
    pub workers: usize,
    /// How workers form cohorts during a queue visit.
    pub batch: BatchPolicy,
    /// Upper bound on the packets a visit may take per queue grab (the
    /// run-time-tunable batch knob, §4.4 knob (b); see
    /// [`crate::runtime::StagedRuntime::set_batch`]).
    pub max_cohort: usize,
}

impl<P: Send + 'static> StageSpec<P> {
    /// A spec with the given name and logic, queue capacity 64, 1 worker,
    /// gated cohorts of at most [`DEFAULT_MAX_COHORT`] packets.
    pub fn new(name: impl Into<String>, logic: impl StageLogic<P>) -> Self {
        Self {
            name: name.into(),
            logic: Arc::new(logic),
            queue_capacity: 64,
            workers: 1,
            batch: BatchPolicy::DGated,
            max_cohort: DEFAULT_MAX_COHORT,
        }
    }

    /// Set the queue capacity.
    pub fn with_queue_capacity(mut self, cap: usize) -> Self {
        self.queue_capacity = cap;
        self
    }

    /// Set the initial worker count.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Set the cohort policy.
    pub fn with_batch(mut self, batch: BatchPolicy) -> Self {
        self.batch = batch;
        self
    }

    /// Set the initial cohort bound (min 1).
    pub fn with_max_cohort(mut self, max: usize) -> Self {
        self.max_cohort = max.max(1);
        self
    }
}

/// Default cohort bound for new stages.
pub const DEFAULT_MAX_COHORT: usize = 16;

/// Handle a stage uses to interact with the rest of the pipeline while
/// processing a packet.
pub struct StageCtx<'a, P: Send + 'static> {
    pub(crate) shared: &'a Arc<RuntimeShared<P>>,
    /// The stage this context belongs to.
    pub stage_id: StageId,
    /// Visit-scoped forward buffer (cohort scheduling, §4.2). When the
    /// runtime serves a queue visit it collects the visit's outgoing
    /// packets here and flushes them per destination in batches — one
    /// downstream lock acquisition and a bounded wake-up per flush,
    /// instead of one per packet. `None` in contexts with no visit (tests
    /// building a bare ctx).
    pub(crate) outbox: Option<RefCell<Vec<(StageId, P)>>>,
}

impl<'a, P: Send + 'static> StageCtx<'a, P> {
    /// Forward a packet to another stage.
    ///
    /// During a runtime visit the forward is *buffered*: it is delivered
    /// (in order, blocking under back-pressure) when the worker flushes —
    /// at the latest at visit end — so the call itself always succeeds
    /// and a pipeline-closed failure is accounted as a stage error at
    /// flush time instead of here.
    pub fn send(&self, dest: StageId, packet: P) -> Result<(), EnqueueError<P>> {
        if let Some(out) = &self.outbox {
            out.borrow_mut().push((dest, packet));
            return Ok(());
        }
        self.shared.enqueue(dest, packet)
    }

    /// Forward without blocking (overload paths use this to shed load).
    pub fn try_send(&self, dest: StageId, packet: P) -> Result<(), EnqueueError<P>> {
        self.shared.try_enqueue(dest, packet)
    }

    /// Put a packet back into this stage's own queue (paper case iii: "there
    /// is more work but the client needs to wait on some condition").
    pub fn requeue(&self, packet: P) -> Result<(), EnqueueError<P>> {
        self.shared.stage(self.stage_id).queue.enqueue_front(packet)
    }

    /// Put a packet at the back of this stage's own queue (round-robin style
    /// yield used by the staged execution engine when an output buffer is
    /// full or input is empty, §4.3). Buffered like [`send`](Self::send)
    /// during a visit; the flush appends self-requeues capacity-exempt, so
    /// a yielding cohort can never deadlock its own stage.
    pub fn requeue_back(&self, packet: P) -> Result<(), EnqueueError<P>> {
        if let Some(out) = &self.outbox {
            out.borrow_mut().push((self.stage_id, packet));
            return Ok(());
        }
        self.shared.enqueue(self.stage_id, packet)
    }

    /// Look up a stage id by name.
    pub fn stage_id_of(&self, name: &str) -> Option<StageId> {
        self.shared.stage_id(name)
    }

    /// Depth of some stage's queue (used by routing decisions and tuning).
    pub fn queue_depth(&self, stage: StageId) -> usize {
        self.shared.stage(stage).queue.len()
    }

    /// Report time this worker spent blocked on I/O while processing the
    /// current packet. Feeds the per-stage monitor so the autotuner can size
    /// the pool by I/O frequency (§5.1(1)).
    pub fn record_io_blocked(&self, blocked: std::time::Duration) {
        self.shared.stage(self.stage_id).monitor.record_io_blocked(blocked);
    }

    /// Report that the current packet was requeued to wait on a condition
    /// (case iii of §4.1.1). The lock-manager stage calls this on every
    /// conflict-requeue, so `StageStats::retries` exposes lock contention.
    pub fn record_retry(&self) {
        self.shared.stage(self.stage_id).monitor.record_retry();
    }
}
