//! Deterministic, virtual-time, single-CPU cooperative executor.
//!
//! This is the "simulated execution environment that is also analytically
//! tractable" of paper §4.2 (Figure 4): a production-line staged server where
//! every query passes through `N` modules in order. Module `i` has a *load
//! time* `l_i` — the time to fetch its common data structures and code into
//! the cache — and each query has a per-module *demand* `m_i`. The executor
//! charges `l_i` whenever the CPU starts working on module `i` while its
//! cache holds a different module's working set, and charges nothing when
//! consecutive work hits the cached module: that difference is the entire
//! locality argument of the paper, reduced to two numbers.
//!
//! The executor runs any [`Policy`]: query-centric PS/FCFS baselines and the
//! module-centric non-gated / D-gated / T-gated staged disciplines. It is
//! used by `staged-sim` to regenerate Figures 1 and 5 and the scheduling
//! ablations.

use crate::policy::{BatchDiscipline, Policy};
use std::collections::VecDeque;

const EPS: f64 = 1e-12;

/// A query to execute: per-stage CPU demands, in seconds.
#[derive(Debug, Clone)]
pub struct Job {
    /// Caller-assigned identifier (reported back in completions).
    pub id: u64,
    /// Arrival time (seconds; jobs may be submitted in any order).
    pub arrival: f64,
    /// CPU demand at each stage, `demands.len() == num_stages`.
    pub demands: Vec<f64>,
}

/// What a timeline segment represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize)]
pub enum SegKind {
    /// Loading a module's common working set into the cache (`l_i`).
    Load,
    /// Useful work on a query.
    Work,
    /// Context-switch overhead.
    Switch,
}

/// One contiguous span of CPU time (for Figure-1 style timelines).
#[derive(Debug, Clone, Copy, serde::Serialize)]
pub struct Segment {
    /// Start time (seconds).
    pub start: f64,
    /// End time (seconds).
    pub end: f64,
    /// Stage the CPU was in.
    pub stage: usize,
    /// Query being served (`None` for pure overhead spans).
    pub job: Option<u64>,
    /// Segment kind.
    pub kind: SegKind,
}

/// A finished query.
#[derive(Debug, Clone, Copy)]
pub struct Completion {
    /// Job id.
    pub id: u64,
    /// Arrival time.
    pub arrival: f64,
    /// Completion time.
    pub finish: f64,
}

impl Completion {
    /// Response time (sojourn time) of the query.
    pub fn response(&self) -> f64 {
        self.finish - self.arrival
    }
}

/// Result of a simulation run.
#[derive(Debug, Clone, Default)]
pub struct CoopReport {
    /// All completed queries, in completion order.
    pub completions: Vec<Completion>,
    /// CPU timeline (only populated when requested; capped).
    pub timeline: Vec<Segment>,
    /// Time of the last event.
    pub makespan: f64,
    /// Total CPU time spent loading module working sets.
    pub total_load_time: f64,
    /// Total CPU time spent on useful work.
    pub total_work_time: f64,
    /// Total CPU time spent context switching.
    pub total_switch_time: f64,
}

impl CoopReport {
    /// Mean response time over completions after `warmup` (by arrival time).
    pub fn mean_response_after(&self, warmup: f64) -> f64 {
        let (sum, n) = self
            .completions
            .iter()
            .filter(|c| c.arrival >= warmup)
            .fold((0.0, 0u64), |(s, n), c| (s + c.response(), n + 1));
        if n == 0 {
            f64::NAN
        } else {
            sum / n as f64
        }
    }

    /// Mean response time over all completions.
    pub fn mean_response(&self) -> f64 {
        self.mean_response_after(0.0)
    }

    /// The `q`-quantile (0..=1) of response times after `warmup`.
    pub fn quantile_response(&self, q: f64, warmup: f64) -> f64 {
        let mut r: Vec<f64> =
            self.completions.iter().filter(|c| c.arrival >= warmup).map(|c| c.response()).collect();
        if r.is_empty() {
            return f64::NAN;
        }
        r.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let idx = ((r.len() - 1) as f64 * q.clamp(0.0, 1.0)).round() as usize;
        r[idx]
    }

    /// Completed queries per second of makespan.
    pub fn throughput(&self) -> f64 {
        if self.makespan <= 0.0 {
            0.0
        } else {
            self.completions.len() as f64 / self.makespan
        }
    }

    /// Fraction of busy CPU time that was overhead (load + switch).
    pub fn overhead_fraction(&self) -> f64 {
        let busy = self.total_load_time + self.total_work_time + self.total_switch_time;
        if busy <= 0.0 {
            0.0
        } else {
            (self.total_load_time + self.total_switch_time) / busy
        }
    }
}

/// Configuration of the executor.
#[derive(Debug, Clone)]
pub struct CoopConfig {
    /// Module load times `l_i`, one per stage.
    pub loads: Vec<f64>,
    /// Mean per-stage demand (used to scale the T-gated cutoff). May be left
    /// empty, in which case it is computed from the submitted jobs.
    pub mean_demands: Vec<f64>,
    /// Scheduling policy.
    pub policy: Policy,
    /// Context-switch cost charged per dispatch (PS), per query (FCFS), or
    /// per served packet (staged policies).
    pub ctx_switch: f64,
    /// Record the CPU timeline (Figure-1 style).
    pub record_timeline: bool,
    /// Maximum number of timeline segments to keep.
    pub timeline_cap: usize,
}

impl CoopConfig {
    /// A config for `stages` identical modules under `policy`, with load
    /// time `load` each and no context-switch cost.
    pub fn uniform(stages: usize, load: f64, policy: Policy) -> Self {
        Self {
            loads: vec![load; stages],
            mean_demands: Vec::new(),
            policy,
            ctx_switch: 0.0,
            record_timeline: false,
            timeline_cap: 100_000,
        }
    }

    /// Enable timeline recording.
    pub fn with_timeline(mut self) -> Self {
        self.record_timeline = true;
        self
    }
}

/// The virtual-time cooperative executor.
pub struct CoopExecutor {
    cfg: CoopConfig,
}

struct Live {
    id: u64,
    arrival: f64,
    demands: Vec<f64>,
    stage: usize,
    remaining: f64,
}

struct Sim {
    clock: f64,
    cache: Option<usize>,
    report: CoopReport,
    record: bool,
    cap: usize,
    ctx_switch: f64,
}

impl Sim {
    fn seg(&mut self, len: f64, stage: usize, job: Option<u64>, kind: SegKind) {
        if len <= EPS {
            return;
        }
        match kind {
            SegKind::Load => self.report.total_load_time += len,
            SegKind::Work => self.report.total_work_time += len,
            SegKind::Switch => self.report.total_switch_time += len,
        }
        if self.record && self.report.timeline.len() < self.cap {
            self.report.timeline.push(Segment {
                start: self.clock,
                end: self.clock + len,
                stage,
                job,
                kind,
            });
        }
        self.clock += len;
    }

    /// Charge the module load for `stage` if the cache holds something else.
    fn touch_module(&mut self, stage: usize, load: f64, job: Option<u64>) {
        if self.cache != Some(stage) {
            self.seg(load, stage, job, SegKind::Load);
            self.cache = Some(stage);
        }
    }

    fn switch_cost(&mut self, stage: usize, job: Option<u64>) {
        if self.ctx_switch > 0.0 {
            self.seg(self.ctx_switch, stage, job, SegKind::Switch);
        }
    }

    fn complete(&mut self, j: &Live) {
        self.report.completions.push(Completion {
            id: j.id,
            arrival: j.arrival,
            finish: self.clock,
        });
    }
}

impl CoopExecutor {
    /// Create an executor; panics if `loads` is empty.
    pub fn new(cfg: CoopConfig) -> Self {
        assert!(!cfg.loads.is_empty(), "need at least one stage");
        Self { cfg }
    }

    /// Number of stages.
    pub fn num_stages(&self) -> usize {
        self.cfg.loads.len()
    }

    /// Run the submitted jobs to completion and report.
    pub fn run(&self, mut jobs: Vec<Job>) -> CoopReport {
        let n = self.num_stages();
        for j in &jobs {
            assert_eq!(j.demands.len(), n, "job {} demand arity != stages", j.id);
        }
        jobs.sort_by(|a, b| a.arrival.partial_cmp(&b.arrival).unwrap());
        let mean_demands = if self.cfg.mean_demands.len() == n {
            self.cfg.mean_demands.clone()
        } else {
            compute_means(&jobs, n)
        };
        let mut sim = Sim {
            clock: 0.0,
            cache: None,
            report: CoopReport::default(),
            record: self.cfg.record_timeline,
            cap: self.cfg.timeline_cap,
            ctx_switch: self.cfg.ctx_switch,
        };
        match self.cfg.policy {
            Policy::ProcessorSharing { quantum } => self.run_ps(&mut sim, jobs, quantum),
            Policy::Fcfs => self.run_fcfs(&mut sim, jobs),
            _ => {
                let disc = self.cfg.policy.discipline().expect("staged policy");
                self.run_staged(&mut sim, jobs, disc, &mean_demands)
            }
        }
        sim.report.makespan = sim.clock;
        sim.report
    }

    fn run_ps(&self, sim: &mut Sim, jobs: Vec<Job>, quantum: f64) {
        assert!(quantum > 0.0, "PS quantum must be positive");
        let n = self.num_stages();
        let mut arrivals = Arrivals::new(jobs);
        let mut ready: VecDeque<Live> = VecDeque::new();
        loop {
            arrivals.admit(sim.clock, &mut ready);
            let Some(mut j) = ready.pop_front() else {
                match arrivals.next_time() {
                    Some(t) => {
                        sim.clock = t;
                        continue;
                    }
                    None => break,
                }
            };
            sim.switch_cost(j.stage, Some(j.id));
            let mut slice = quantum;
            let mut done = false;
            while slice > EPS {
                let s = j.stage;
                sim.touch_module(s, self.cfg.loads[s], Some(j.id));
                let run = slice.min(j.remaining);
                sim.seg(run, s, Some(j.id), SegKind::Work);
                j.remaining -= run;
                slice -= run;
                if j.remaining <= EPS {
                    j.stage += 1;
                    if j.stage == n {
                        sim.complete(&j);
                        done = true;
                        break;
                    }
                    j.remaining = j.demands[j.stage];
                }
            }
            arrivals.admit(sim.clock, &mut ready);
            if !done {
                ready.push_back(j);
            }
        }
    }

    fn run_fcfs(&self, sim: &mut Sim, jobs: Vec<Job>) {
        let n = self.num_stages();
        let mut arrivals = Arrivals::new(jobs);
        let mut fifo: VecDeque<Live> = VecDeque::new();
        loop {
            arrivals.admit(sim.clock, &mut fifo);
            let Some(mut j) = fifo.pop_front() else {
                match arrivals.next_time() {
                    Some(t) => {
                        sim.clock = t;
                        continue;
                    }
                    None => break,
                }
            };
            sim.switch_cost(j.stage, Some(j.id));
            while j.stage < n {
                let s = j.stage;
                sim.touch_module(s, self.cfg.loads[s], Some(j.id));
                sim.seg(j.remaining, s, Some(j.id), SegKind::Work);
                j.stage += 1;
                if j.stage < n {
                    j.remaining = j.demands[j.stage];
                }
            }
            sim.complete(&j);
        }
    }

    fn run_staged(
        &self,
        sim: &mut Sim,
        jobs: Vec<Job>,
        disc: BatchDiscipline,
        mean_demands: &[f64],
    ) {
        let n = self.num_stages();
        let mut arrivals = Arrivals::new(jobs);
        let mut queues: Vec<VecDeque<Live>> = (0..n).map(|_| VecDeque::new()).collect();
        let mut cursor = 0usize;
        loop {
            arrivals.admit(sim.clock, &mut queues[0]);
            let visit = (0..n).map(|k| (cursor + k) % n).find(|&i| !queues[i].is_empty());
            let Some(s) = visit else {
                match arrivals.next_time() {
                    Some(t) => {
                        sim.clock = t;
                        continue;
                    }
                    None => break,
                }
            };
            sim.touch_module(s, self.cfg.loads[s], None);
            match disc {
                BatchDiscipline::Exhaustive => {
                    while let Some(j) = queues[s].pop_front() {
                        self.serve_full(sim, j, s, &mut queues);
                        arrivals.admit(sim.clock, &mut queues[0]);
                    }
                }
                BatchDiscipline::Gated => {
                    let gate = queues[s].len();
                    for _ in 0..gate {
                        let j = queues[s].pop_front().expect("gated batch underflow");
                        self.serve_full(sim, j, s, &mut queues);
                    }
                    arrivals.admit(sim.clock, &mut queues[0]);
                }
                BatchDiscipline::GatedCutoff { cutoff_factor } => {
                    let cutoff = (cutoff_factor * mean_demands[s]).max(EPS);
                    let gate = queues[s].len();
                    for _ in 0..gate {
                        let mut j = queues[s].pop_front().expect("gated batch underflow");
                        if j.remaining <= cutoff + EPS {
                            self.serve_full(sim, j, s, &mut queues);
                        } else {
                            sim.switch_cost(s, Some(j.id));
                            sim.seg(cutoff, s, Some(j.id), SegKind::Work);
                            j.remaining -= cutoff;
                            queues[s].push_back(j);
                        }
                    }
                    arrivals.admit(sim.clock, &mut queues[0]);
                }
            }
            cursor = (s + 1) % n;
        }
    }

    /// Serve a packet's full remaining demand at stage `s`, then advance it.
    fn serve_full(&self, sim: &mut Sim, mut j: Live, s: usize, queues: &mut [VecDeque<Live>]) {
        sim.switch_cost(s, Some(j.id));
        sim.seg(j.remaining, s, Some(j.id), SegKind::Work);
        j.stage += 1;
        if j.stage == queues.len() {
            sim.complete(&j);
        } else {
            j.remaining = j.demands[j.stage];
            queues[j.stage].push_back(j);
        }
    }
}

struct Arrivals {
    jobs: std::vec::IntoIter<Job>,
    peeked: Option<Job>,
}

impl Arrivals {
    fn new(jobs: Vec<Job>) -> Self {
        Self { jobs: jobs.into_iter(), peeked: None }
    }

    fn next_time(&mut self) -> Option<f64> {
        if self.peeked.is_none() {
            self.peeked = self.jobs.next();
        }
        self.peeked.as_ref().map(|j| j.arrival)
    }

    fn admit(&mut self, now: f64, into: &mut VecDeque<Live>) {
        loop {
            if self.peeked.is_none() {
                self.peeked = self.jobs.next();
            }
            match &self.peeked {
                Some(j) if j.arrival <= now + EPS => {
                    let j = self.peeked.take().unwrap();
                    let remaining = j.demands[0];
                    into.push_back(Live {
                        id: j.id,
                        arrival: j.arrival,
                        demands: j.demands,
                        stage: 0,
                        remaining,
                    });
                }
                _ => return,
            }
        }
    }
}

fn compute_means(jobs: &[Job], n: usize) -> Vec<f64> {
    let mut means = vec![0.0; n];
    if jobs.is_empty() {
        return means;
    }
    for j in jobs {
        for (m, d) in means.iter_mut().zip(&j.demands) {
            *m += d;
        }
    }
    for m in &mut means {
        *m /= jobs.len() as f64;
    }
    means
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(id: u64, arrival: f64, demands: &[f64]) -> Job {
        Job { id, arrival, demands: demands.to_vec() }
    }

    fn approx(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-9, "expected {b}, got {a}");
    }

    #[test]
    fn fcfs_single_job_pays_all_loads() {
        let cfg = CoopConfig::uniform(3, 0.5, Policy::Fcfs);
        let r = CoopExecutor::new(cfg).run(vec![job(1, 0.0, &[1.0, 1.0, 1.0])]);
        // 3 loads of 0.5 + 3 units of work.
        approx(r.completions[0].finish, 4.5);
        approx(r.total_load_time, 1.5);
        approx(r.total_work_time, 3.0);
    }

    #[test]
    fn staged_batch_pays_load_once() {
        // Two queries arriving together: non-gated serves both per module, so
        // each module load is paid once, not twice.
        let cfg = CoopConfig::uniform(2, 1.0, Policy::NonGated);
        let r =
            CoopExecutor::new(cfg).run(vec![job(1, 0.0, &[1.0, 1.0]), job(2, 0.0, &[1.0, 1.0])]);
        approx(r.total_load_time, 2.0); // one load per module
        approx(r.total_work_time, 4.0);
        approx(r.makespan, 6.0);
        // Under FCFS the same jobs pay every load twice.
        let cfg = CoopConfig::uniform(2, 1.0, Policy::Fcfs);
        let r =
            CoopExecutor::new(cfg).run(vec![job(1, 0.0, &[1.0, 1.0]), job(2, 0.0, &[1.0, 1.0])]);
        approx(r.total_load_time, 4.0);
        approx(r.makespan, 8.0);
    }

    #[test]
    fn work_is_conserved_across_policies() {
        let jobs: Vec<Job> = (0..20).map(|i| job(i, i as f64 * 0.1, &[0.05, 0.1, 0.02])).collect();
        for p in Policy::figure5_set() {
            let cfg = CoopConfig {
                loads: vec![0.01; 3],
                mean_demands: Vec::new(),
                policy: p,
                ctx_switch: 0.0,
                record_timeline: false,
                timeline_cap: 0,
            };
            let r = CoopExecutor::new(cfg).run(jobs.clone());
            assert_eq!(r.completions.len(), 20, "{}", p.label());
            approx(r.total_work_time, 20.0 * 0.17);
        }
    }

    #[test]
    fn gated_excludes_late_arrivals_exhaustive_includes_them() {
        // Stage demands chosen so that a second query arrives while the first
        // batch is in service at module 0.
        let jobs = vec![job(1, 0.0, &[1.0, 1.0]), job(2, 0.5, &[1.0, 1.0])];
        let gated =
            CoopExecutor::new(CoopConfig::uniform(2, 0.0, Policy::DGated)).run(jobs.clone());
        let exhaustive =
            CoopExecutor::new(CoopConfig::uniform(2, 0.0, Policy::NonGated)).run(jobs.clone());
        // Exhaustive serves job 2 at module 0 right after job 1 (it arrived
        // during job 1's service), so job 1 finishes later than under gating.
        let finish =
            |r: &CoopReport, id: u64| r.completions.iter().find(|c| c.id == id).unwrap().finish;
        assert!(finish(&gated, 1) < finish(&exhaustive, 1));
        assert_eq!(gated.completions.len(), 2);
        assert_eq!(exhaustive.completions.len(), 2);
    }

    #[test]
    fn tgated_cutoff_preempts_long_jobs() {
        // One long and one short query in the same gate. With cutoff factor 1
        // (mean demand), the long query is preempted, the short one completes
        // in the first pass.
        let jobs = vec![job(1, 0.0, &[10.0]), job(2, 0.0, &[1.0])];
        let cfg = CoopConfig {
            loads: vec![0.0],
            mean_demands: vec![1.0],
            policy: Policy::TGated { cutoff_factor: 1.0 },
            ctx_switch: 0.0,
            record_timeline: false,
            timeline_cap: 0,
        };
        let r = CoopExecutor::new(cfg).run(jobs);
        let short = r.completions.iter().find(|c| c.id == 2).unwrap();
        let long = r.completions.iter().find(|c| c.id == 1).unwrap();
        assert!(short.finish < long.finish);
        approx(short.finish, 2.0); // 1s cutoff slice of job 1, then job 2
        approx(long.finish, 11.0);
    }

    #[test]
    fn ps_reloads_on_module_interleave() {
        // Two jobs at different modules interleaved by PS with a small
        // quantum: every dispatch reloads, so overhead dwarfs FCFS's.
        let jobs = vec![job(1, 0.0, &[1.0, 0.0]), job(2, 0.0, &[1.0, 0.0])];
        let ps = CoopExecutor::new(CoopConfig {
            loads: vec![0.1, 0.0],
            mean_demands: Vec::new(),
            policy: Policy::ProcessorSharing { quantum: 0.25 },
            ctx_switch: 0.0,
            record_timeline: false,
            timeline_cap: 0,
        })
        .run(jobs.clone());
        // Both jobs are at module 0; alternating between them does NOT change
        // the module, so the load is paid once: PS only hurts when queries sit
        // in different modules.
        approx(ps.total_load_time, 0.1);
        // Misaligned demands push the two jobs into *different* modules, and
        // every PS dispatch then reloads the cache.
        let jobs2 = vec![job(1, 0.0, &[0.3, 1.0]), job(2, 0.001, &[1.0, 0.3])];
        let ps2 = CoopExecutor::new(CoopConfig {
            loads: vec![0.1, 0.1],
            mean_demands: Vec::new(),
            policy: Policy::ProcessorSharing { quantum: 0.25 },
            ctx_switch: 0.0,
            record_timeline: false,
            timeline_cap: 0,
        })
        .run(jobs2);
        // Once job 1 crosses into module 1 while job 2 is still in module 0,
        // dispatches alternate modules and reload repeatedly.
        assert!(ps2.total_load_time > 0.5, "got {}", ps2.total_load_time);
    }

    #[test]
    fn timeline_records_load_then_work() {
        let cfg = CoopConfig::uniform(1, 0.5, Policy::Fcfs).with_timeline();
        let r = CoopExecutor::new(cfg).run(vec![job(1, 0.0, &[1.0])]);
        assert_eq!(r.timeline.len(), 2);
        assert_eq!(r.timeline[0].kind, SegKind::Load);
        assert_eq!(r.timeline[1].kind, SegKind::Work);
        approx(r.timeline[1].end, 1.5);
    }

    #[test]
    fn idle_period_jumps_to_next_arrival() {
        let cfg = CoopConfig::uniform(1, 0.0, Policy::Fcfs);
        let r = CoopExecutor::new(cfg).run(vec![job(1, 0.0, &[0.5]), job(2, 10.0, &[0.5])]);
        approx(r.completions[1].finish, 10.5);
        approx(r.completions[1].response(), 0.5);
    }

    #[test]
    fn quantile_and_mean_statistics() {
        let cfg = CoopConfig::uniform(1, 0.0, Policy::Fcfs);
        let jobs: Vec<Job> = (0..100).map(|i| job(i, 0.0, &[0.01])).collect();
        let r = CoopExecutor::new(cfg).run(jobs);
        assert_eq!(r.completions.len(), 100);
        // Jobs queue behind each other: responses 0.01, 0.02, ... 1.00.
        approx(r.mean_response(), 0.505);
        approx(r.quantile_response(1.0, 0.0), 1.0);
        assert!(r.quantile_response(0.5, 0.0) > 0.4);
    }
}
